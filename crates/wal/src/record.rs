//! Log record types.
//!
//! A [`LogOp`] is the physical, redoable description of one data
//! operation; a [`LogRecord`] wraps operations with the transaction
//! control records (`Begin`/`Commit`/`Abort`/`AbortEnd`), CLRs, fuzzy
//! marks and consistency-checker records that the transformation
//! framework consumes.

use morph_common::{Key, Lsn, TableId, TxnId, Value};

/// Phase of a migration job's state machine (the orchestrator layer).
///
/// Persisted in [`LogRecord::MigrationState`] entries so a crashed
/// orchestrator can find the last durable state of every job. The
/// ordering mirrors the paper's pipeline: prepare → fuzzy copy → log
/// propagation → synchronization → cutover, with `Aborted` as the
/// terminal failure state.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum MigrationPhase {
    /// Spec accepted and registered; nothing executed yet.
    Planned,
    /// Preparation: target tables being created (§3.1).
    Preparing,
    /// Initial fuzzy population running (§3.2).
    Copying,
    /// Log propagation loop running (§3.3).
    Propagating,
    /// Synchronization step running (§3.4).
    Syncing,
    /// Stage complete: targets published, sources retired.
    CutOver,
    /// Job aborted; transformed tables dropped, locks released.
    Aborted,
}

impl MigrationPhase {
    /// Stable wire tag (WAL codec byte).
    pub fn as_u8(self) -> u8 {
        match self {
            MigrationPhase::Planned => 0,
            MigrationPhase::Preparing => 1,
            MigrationPhase::Copying => 2,
            MigrationPhase::Propagating => 3,
            MigrationPhase::Syncing => 4,
            MigrationPhase::CutOver => 5,
            MigrationPhase::Aborted => 6,
        }
    }

    /// Inverse of [`MigrationPhase::as_u8`]; `None` on unknown tags
    /// (the codec maps that to `CorruptLog`).
    pub fn from_u8(tag: u8) -> Option<MigrationPhase> {
        Some(match tag {
            0 => MigrationPhase::Planned,
            1 => MigrationPhase::Preparing,
            2 => MigrationPhase::Copying,
            3 => MigrationPhase::Propagating,
            4 => MigrationPhase::Syncing,
            5 => MigrationPhase::CutOver,
            6 => MigrationPhase::Aborted,
            _ => return None,
        })
    }

    /// Human-readable name (progress output, traces).
    pub fn name(self) -> &'static str {
        match self {
            MigrationPhase::Planned => "planned",
            MigrationPhase::Preparing => "preparing",
            MigrationPhase::Copying => "copying",
            MigrationPhase::Propagating => "propagating",
            MigrationPhase::Syncing => "syncing",
            MigrationPhase::CutOver => "cutover",
            MigrationPhase::Aborted => "aborted",
        }
    }
}

/// A physical data operation, carrying enough for both redo (new
/// image) and undo (old image).
///
/// Updates store *only the changed columns* — the paper leans on this
/// in §4.2: "Update log records are less informative since they
/// typically contain the primary key and updated attribute values
/// only", which is why FOJ propagation rules 5–7 must reconstruct
/// missing attribute values from the transformed table itself.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogOp {
    /// A full row was inserted.
    Insert {
        /// Target table.
        table: TableId,
        /// Complete row image.
        row: Vec<Value>,
    },
    /// A row was deleted. `old` is the full pre-image (needed to undo).
    Delete {
        /// Target table.
        table: TableId,
        /// Primary key of the deleted row.
        key: Key,
        /// Full pre-image of the deleted row.
        old: Vec<Value>,
    },
    /// Some columns of a row changed. `old`/`new` list `(column
    /// position, value)` pairs for exactly the changed columns.
    Update {
        /// Target table.
        table: TableId,
        /// Primary key of the updated row (pre-update key).
        key: Key,
        /// Changed columns, pre-update values.
        old: Vec<(usize, Value)>,
        /// Changed columns, post-update values.
        new: Vec<(usize, Value)>,
    },
}

impl LogOp {
    /// The table this operation touches.
    pub fn table(&self) -> TableId {
        match self {
            LogOp::Insert { table, .. }
            | LogOp::Delete { table, .. }
            | LogOp::Update { table, .. } => *table,
        }
    }

    /// The logical inverse of this operation, used to build CLRs during
    /// rollback. Inverting an update swaps old and new column lists.
    #[must_use]
    pub fn inverse(&self) -> LogOp {
        match self {
            LogOp::Insert { table, row } => LogOp::Delete {
                table: *table,
                // The key is recomputed by the engine, which knows the
                // schema; here we only need the structural inverse. The
                // engine always builds CLRs via its own schema-aware
                // path, so this variant stores an empty key that the
                // engine replaces.
                key: Key(vec![]),
                old: row.clone(),
            },
            LogOp::Delete { table, old, .. } => LogOp::Insert {
                table: *table,
                row: old.clone(),
            },
            LogOp::Update {
                table,
                key,
                old,
                new,
            } => LogOp::Update {
                table: *table,
                key: key.clone(),
                old: new.clone(),
                new: old.clone(),
            },
        }
    }
}

/// One record of the write-ahead log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogRecord {
    /// Transaction began.
    Begin { txn: TxnId },
    /// Transaction committed. The log propagator releases the
    /// transaction's mirrored locks on transformed tables when it
    /// processes this record (§4.3).
    Commit { txn: TxnId },
    /// Transaction rollback *started*. CLRs for the transaction follow.
    Abort { txn: TxnId },
    /// Transaction rollback *finished* — the "transaction aborted log
    /// record" of §3.4: the propagator releases the transaction's locks
    /// in the transformed tables when it encounters this.
    AbortEnd { txn: TxnId },
    /// A forward data operation executed under `txn`.
    Op { txn: TxnId, op: LogOp },
    /// Compensating Log Record: during rollback, `undone_lsn` was
    /// undone by physically executing `op` (the inverse operation).
    /// Redoing a CLR re-executes the compensation, which is what makes
    /// fuzzy-copy repair purely forward (§2.2).
    Clr {
        txn: TxnId,
        /// LSN of the forward record this CLR compensates.
        undone_lsn: Lsn,
        /// The physical compensation that was executed.
        op: LogOp,
    },
    /// Fuzzy mark (§3.2): bounds a fuzzy read or a log-propagation
    /// iteration. Carries the transactions active at the time and the
    /// LSN from which propagation must (re)start — the first log record
    /// of the oldest of those transactions, or this mark itself if none
    /// are active.
    FuzzyMark {
        /// Transactions active on the source tables at mark time.
        active: Vec<TxnId>,
        /// Where log propagation must start reading.
        start_lsn: Lsn,
    },
    /// Consistency checker (§5.3): CC started examining the S-record
    /// with the given split-key.
    CcBegin { split_key: Key },
    /// Consistency checker: the T-rows contributing to `split_key`
    /// agreed, and their common image is `image`. The propagator
    /// upgrades the S-record's flag to Consistent iff nothing touched
    /// it between `CcBegin` and this record.
    CcOk { split_key: Key, image: Vec<Value> },
    /// Checkpoint: active transactions and their last LSNs (used by
    /// restart recovery to bound the redo pass).
    Checkpoint { active: Vec<(TxnId, Lsn)> },
    /// Orchestrator state transition: migration job `job` reached
    /// `phase` while executing pipeline stage `stage`. `spec` is the
    /// job's declarative text form (`ALTER TABLE …`), logged on every
    /// transition so the latest record alone is enough to resume.
    ///
    /// Deliberately transparent to data redo: `op()` returns `None`
    /// and recovery's analysis pass skips it, exactly like fuzzy
    /// marks. Transformations themselves are not redo-logged (§3.5);
    /// an interrupted job restarts from preparation, and this record
    /// only tells the restarted orchestrator *which* jobs to restart
    /// (or, for `Aborted`, to leave dead).
    MigrationState {
        /// Orchestrator-assigned job id (unique per log lifetime).
        job: u64,
        /// Zero-based pipeline stage index within the job.
        stage: u32,
        /// The phase just entered.
        phase: MigrationPhase,
        /// The job's declarative spec text (re-parsed at resume).
        spec: String,
    },
}

impl LogRecord {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecord::Begin { txn }
            | LogRecord::Commit { txn }
            | LogRecord::Abort { txn }
            | LogRecord::AbortEnd { txn }
            | LogRecord::Op { txn, .. }
            | LogRecord::Clr { txn, .. } => Some(*txn),
            _ => None,
        }
    }

    /// The data operation inside, if this is an `Op` or `Clr` record.
    /// CLRs are deliberately transparent here: the propagator redoes
    /// them exactly like forward operations.
    pub fn op(&self) -> Option<&LogOp> {
        match self {
            LogRecord::Op { op, .. } | LogRecord::Clr { op, .. } => Some(op),
            _ => None,
        }
    }

    /// Whether this record ends its transaction (commit or rollback
    /// complete). Lock mirrors are released at these records.
    pub fn ends_txn(&self) -> bool {
        matches!(self, LogRecord::Commit { .. } | LogRecord::AbortEnd { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_update() -> LogOp {
        LogOp::Update {
            table: TableId(3),
            key: Key::single(7),
            old: vec![(1, Value::str("a"))],
            new: vec![(1, Value::str("b"))],
        }
    }

    #[test]
    fn inverse_of_update_swaps_images() {
        let inv = sample_update().inverse();
        match inv {
            LogOp::Update { old, new, .. } => {
                assert_eq!(old, vec![(1, Value::str("b"))]);
                assert_eq!(new, vec![(1, Value::str("a"))]);
            }
            other => panic!("expected update, got {other:?}"),
        }
    }

    #[test]
    fn inverse_roundtrip_for_update() {
        let op = sample_update();
        assert_eq!(op.inverse().inverse(), op);
    }

    #[test]
    fn inverse_of_delete_is_insert() {
        let op = LogOp::Delete {
            table: TableId(1),
            key: Key::single(1),
            old: vec![Value::Int(1), Value::str("x")],
        };
        match op.inverse() {
            LogOp::Insert { table, row } => {
                assert_eq!(table, TableId(1));
                assert_eq!(row, vec![Value::Int(1), Value::str("x")]);
            }
            other => panic!("expected insert, got {other:?}"),
        }
    }

    #[test]
    fn record_accessors() {
        let rec = LogRecord::Op {
            txn: TxnId(5),
            op: sample_update(),
        };
        assert_eq!(rec.txn(), Some(TxnId(5)));
        assert!(rec.op().is_some());
        assert!(!rec.ends_txn());

        let commit = LogRecord::Commit { txn: TxnId(5) };
        assert!(commit.ends_txn());
        assert!(commit.op().is_none());

        let abort_end = LogRecord::AbortEnd { txn: TxnId(5) };
        assert!(abort_end.ends_txn());

        let mark = LogRecord::FuzzyMark {
            active: vec![TxnId(1)],
            start_lsn: Lsn(10),
        };
        assert_eq!(mark.txn(), None);
    }

    #[test]
    fn migration_state_is_transparent_to_redo_accessors() {
        let rec = LogRecord::MigrationState {
            job: 3,
            stage: 1,
            phase: MigrationPhase::Propagating,
            spec: "ALTER TABLE t SPLIT INTO r (a) AND s (c -> d)".into(),
        };
        assert_eq!(rec.txn(), None);
        assert!(rec.op().is_none());
        assert!(!rec.ends_txn());
    }

    #[test]
    fn migration_phase_tags_roundtrip() {
        for phase in [
            MigrationPhase::Planned,
            MigrationPhase::Preparing,
            MigrationPhase::Copying,
            MigrationPhase::Propagating,
            MigrationPhase::Syncing,
            MigrationPhase::CutOver,
            MigrationPhase::Aborted,
        ] {
            assert_eq!(MigrationPhase::from_u8(phase.as_u8()), Some(phase));
        }
        assert_eq!(MigrationPhase::from_u8(7), None);
    }

    #[test]
    fn clr_is_transparent_to_op_accessor() {
        let rec = LogRecord::Clr {
            txn: TxnId(9),
            undone_lsn: Lsn(4),
            op: sample_update(),
        };
        assert_eq!(rec.op(), Some(&sample_update()));
    }
}
