//! # morph-wal
//!
//! ARIES-style write-ahead log for morphdb, providing exactly the
//! contracts the transformation framework of Løland & Hvasshovd (EDBT
//! 2006) assumes:
//!
//! * **redo and undo information** in every data record ([`LogOp`]
//!   carries both old and new images),
//! * **Compensating Log Records** ([`LogRecord::Clr`]) written during
//!   rollback, so that a fuzzy copy can be repaired purely by redoing
//!   the log forward — aborted work is *compensated*, never skipped,
//! * **log sequence numbers** assigned in strictly increasing order,
//! * **fuzzy marks** ([`LogRecord::FuzzyMark`]) recording the set of
//!   active transactions and the LSN where log propagation must begin
//!   (§3.2 of the paper),
//! * **consistency-checker records** (`CcBegin` / `CcOk`, §5.3).
//!
//! The log lives in memory ([`LogManager`]) with an optional
//! length-prefixed binary backend used by restart recovery: the real
//! file ([`file::FileBackend`]) or, for deterministic crash
//! simulation, the seeded fault injector ([`fault::FaultBackend`]).

pub mod codec;
pub mod fault;
pub mod file;
pub mod manager;
pub mod record;

pub use codec::{decode_ref, LogOpRef, LogRecordRef, ValueRef};
pub use fault::{FaultBackend, FaultConfig, FaultHandle};
pub use file::{decode_stream, scan_stream, Backend, FileBackend};
pub use manager::{GroupCommitConfig, LogManager, TailCursor, WalMode};
pub use record::{LogOp, LogRecord, MigrationPhase};
