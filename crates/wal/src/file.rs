//! Backends for the write-ahead log.
//!
//! Records are stored as `u32` little-endian length prefix + encoded
//! body (see [`crate::codec`]). Appends are buffered; [`flush`]
//! (called by the engine at commit) pushes bytes to the OS and syncs.
//! [`read_all`] tolerates a torn final record (a crash mid-append)
//! by truncating at the last complete record, the standard WAL
//! recovery convention.
//!
//! The [`Backend`] trait abstracts the byte sink so the deterministic
//! crash harness can substitute an in-memory, fault-injecting
//! implementation ([`crate::fault::FaultBackend`]) for the real file.
//!
//! [`flush`]: FileBackend::flush
//! [`read_all`]: FileBackend::read_all

use crate::codec;
use crate::record::LogRecord;
use morph_common::{DbError, DbResult};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// A byte sink for encoded log records. `append` buffers; `flush`
/// makes everything appended so far durable (or reports why it
/// cannot). Implementations must never lose *flushed* bytes.
pub trait Backend {
    /// Buffer one encoded record (length prefix added here). Errors
    /// are deferred: the in-memory log is the source of truth until a
    /// commit forces durability via [`Backend::flush`].
    fn append(&mut self, encoded: &[u8]);

    /// Push buffered bytes to durable storage. Surfaces any error
    /// deferred from earlier appends.
    fn flush(&mut self) -> DbResult<()>;
}

/// Decode a length-prefixed record stream, tolerating a torn tail: a
/// final record whose length prefix promises more bytes than exist is
/// ignored (crash mid-append), but a *decodable-length, corrupt-body*
/// record is an error. Shared by [`FileBackend::read_all`] and the
/// fault backend's post-crash recovery reads.
pub fn decode_stream(bytes: &[u8]) -> DbResult<Vec<LogRecord>> {
    let mut records = Vec::new();
    scan_stream(bytes, |rec| {
        records.push(rec.to_owned());
        Ok(())
    })?;
    Ok(records)
}

/// Walk a length-prefixed record stream without materializing owned
/// records: `f` is called once per complete record with a borrowed
/// [`LogRecordRef`] whose string payloads point into `bytes`. Torn-tail
/// handling is identical to [`decode_stream`] (which is implemented on
/// top of this). Returns the number of records visited.
///
/// [`LogRecordRef`]: codec::LogRecordRef
pub fn scan_stream(
    bytes: &[u8],
    mut f: impl FnMut(codec::LogRecordRef<'_>) -> DbResult<()>,
) -> DbResult<usize> {
    let mut count = 0usize;
    let mut pos = 0usize;
    while pos + 4 <= bytes.len() {
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
            as usize;
        if pos + 4 + len > bytes.len() {
            break; // torn final record: stop here
        }
        let body = &bytes[pos + 4..pos + 4 + len];
        let rec = codec::decode_ref(body).map_err(|e| match e {
            DbError::CorruptLog { offset, detail } => DbError::CorruptLog {
                offset: (pos + 4) as u64 + offset,
                detail,
            },
            other => other,
        })?;
        f(rec)?;
        count += 1;
        pos += 4 + len;
    }
    Ok(count)
}

/// Append-only log file.
pub struct FileBackend {
    writer: BufWriter<File>,
    /// First write error since the last successful flush. Buffered
    /// appends may not touch the OS at all, so a failed `write_all`
    /// must be remembered and surfaced at the next [`flush`] — the
    /// point where the engine actually depends on durability.
    ///
    /// [`flush`]: FileBackend::flush
    deferred: Option<DbError>,
}

impl FileBackend {
    /// Open (or create) the log file at `path` for appending.
    pub fn open(path: &Path) -> DbResult<FileBackend> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileBackend {
            writer: BufWriter::new(file),
            deferred: None,
        })
    }

    /// Buffer one encoded record.
    pub fn append(&mut self, encoded: &[u8]) {
        let len = (encoded.len() as u32).to_le_bytes();
        let res = self
            .writer
            .write_all(&len)
            .and_then(|()| self.writer.write_all(encoded));
        if let (Err(e), None) = (res, &self.deferred) {
            // Sticky: keep the *first* failure; later appends into a
            // wedged buffer would only report follow-on noise.
            self.deferred = Some(DbError::Io(e.to_string()));
        }
    }

    /// Push buffered bytes to the OS and fsync. Surfaces any write
    /// error deferred from a buffered [`append`](FileBackend::append).
    pub fn flush(&mut self) -> DbResult<()> {
        if let Some(e) = self.deferred.take() {
            // Reinstate: the log tail is still unwritten, so the next
            // flush must fail too until the caller gives up.
            self.deferred = Some(e.clone());
            return Err(e);
        }
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Read every complete record from the file at `path`. A torn tail
    /// (fewer bytes than the last length prefix promises) is ignored;
    /// a *decodable-length but corrupt* record is an error.
    pub fn read_all(path: &Path) -> DbResult<Vec<LogRecord>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        decode_stream(&bytes)
    }
}

impl Backend for FileBackend {
    fn append(&mut self, encoded: &[u8]) {
        FileBackend::append(self, encoded)
    }

    fn flush(&mut self) -> DbResult<()> {
        FileBackend::flush(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use morph_common::TxnId;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("morphwal-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip_through_file() {
        let path = tmp("roundtrip");
        {
            let mut be = FileBackend::open(&path).unwrap();
            for i in 0..5 {
                be.append(&codec::encode(&LogRecord::Begin { txn: TxnId(i) }));
            }
            be.flush().unwrap();
        }
        let recs = FileBackend::read_all(&path).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[4], LogRecord::Begin { txn: TxnId(4) });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp("torn");
        {
            let mut be = FileBackend::open(&path).unwrap();
            be.append(&codec::encode(&LogRecord::Begin { txn: TxnId(1) }));
            be.flush().unwrap();
        }
        // Simulate a crash mid-append: a length prefix promising more
        // bytes than exist.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&(1000u32).to_le_bytes()).unwrap();
            f.write_all(&[1, 2, 3]).unwrap();
        }
        let recs = FileBackend::read_all(&path).unwrap();
        assert_eq!(recs.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_body_is_an_error() {
        let path = tmp("corrupt");
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&(1u32).to_le_bytes()).unwrap();
            f.write_all(&[250]).unwrap(); // bogus tag
        }
        assert!(matches!(
            FileBackend::read_all(&path),
            Err(DbError::CorruptLog { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = tmp("never-created");
        std::fs::remove_file(&path).ok();
        assert!(matches!(FileBackend::read_all(&path), Err(DbError::Io(_))));
    }

    #[test]
    fn manager_with_file_persists() {
        let path = tmp("manager");
        {
            let log = crate::LogManager::with_file(&path).unwrap();
            log.append(LogRecord::Begin { txn: TxnId(9) });
            log.append(LogRecord::Commit { txn: TxnId(9) });
            log.flush().unwrap();
        }
        let recs = FileBackend::read_all(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], LogRecord::Commit { txn: TxnId(9) });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn scan_stream_matches_decode_stream_with_torn_tail() {
        let mut bytes = Vec::new();
        for i in 0..4u64 {
            let body = codec::encode(&LogRecord::Begin { txn: TxnId(i) });
            bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
            bytes.extend_from_slice(&body);
        }
        bytes.extend_from_slice(&(1000u32).to_le_bytes()); // torn tail
        bytes.extend_from_slice(&[1, 2, 3]);
        let owned = decode_stream(&bytes).unwrap();
        let mut scanned = Vec::new();
        let n = scan_stream(&bytes, |rec| {
            scanned.push(rec.to_owned());
            Ok(())
        })
        .unwrap();
        assert_eq!(n, 4);
        assert_eq!(scanned, owned);
    }

    #[test]
    fn scan_stream_propagates_visitor_error() {
        let mut bytes = Vec::new();
        let body = codec::encode(&LogRecord::Begin { txn: TxnId(1) });
        bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&body);
        let res = scan_stream(&bytes, |_| Err(DbError::Io("stop".into())));
        assert!(matches!(res, Err(DbError::Io(_))));
    }

    #[test]
    fn write_error_is_sticky_and_surfaces_at_flush() {
        // A file opened read-only makes every buffered write fail once
        // the BufWriter spills; use a tiny buffer via many appends to
        // force the spill, then check flush reports the deferred error
        // and keeps reporting it.
        let path = tmp("sticky");
        std::fs::write(&path, b"").unwrap();
        let file = File::open(&path).unwrap(); // read-only handle
        let mut be = FileBackend {
            writer: BufWriter::with_capacity(8, file),
            deferred: None,
        };
        let rec = codec::encode(&LogRecord::Begin { txn: TxnId(1) });
        for _ in 0..64 {
            be.append(&rec); // spills the 8-byte buffer → write fails
        }
        assert!(matches!(be.flush(), Err(DbError::Io(_))));
        // Sticky: a second flush must not silently succeed.
        assert!(matches!(be.flush(), Err(DbError::Io(_))));
        std::fs::remove_file(&path).unwrap();
    }
}
