//! File backend for the write-ahead log.
//!
//! Records are stored as `u32` little-endian length prefix + encoded
//! body (see [`crate::codec`]). Appends are buffered; [`flush`]
//! (called by the engine at commit) pushes bytes to the OS and syncs.
//! [`read_all`] tolerates a torn final record (a crash mid-append)
//! by truncating at the last complete record, the standard WAL
//! recovery convention.
//!
//! [`flush`]: FileBackend::flush
//! [`read_all`]: FileBackend::read_all

use crate::codec;
use crate::record::LogRecord;
use morph_common::{DbError, DbResult};
use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::Path;

/// Append-only log file.
pub struct FileBackend {
    writer: BufWriter<File>,
}

impl FileBackend {
    /// Open (or create) the log file at `path` for appending.
    pub fn open(path: &Path) -> DbResult<FileBackend> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(FileBackend {
            writer: BufWriter::new(file),
        })
    }

    /// Buffer one encoded record.
    pub fn append(&mut self, encoded: &[u8]) {
        // Errors here are deferred to flush(): the in-memory log is the
        // source of truth until a commit forces durability.
        let len = (encoded.len() as u32).to_le_bytes();
        let _ = self.writer.write_all(&len);
        let _ = self.writer.write_all(encoded);
    }

    /// Push buffered bytes to the OS and fsync.
    pub fn flush(&mut self) -> DbResult<()> {
        self.writer.flush()?;
        self.writer.get_ref().sync_data()?;
        Ok(())
    }

    /// Read every complete record from the file at `path`. A torn tail
    /// (fewer bytes than the last length prefix promises) is ignored;
    /// a *decodable-length but corrupt* record is an error.
    pub fn read_all(path: &Path) -> DbResult<Vec<LogRecord>> {
        let mut bytes = Vec::new();
        File::open(path)?.read_to_end(&mut bytes)?;
        let mut records = Vec::new();
        let mut pos = 0usize;
        while pos + 4 <= bytes.len() {
            let len =
                u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]])
                    as usize;
            if pos + 4 + len > bytes.len() {
                break; // torn final record: stop here
            }
            let body = &bytes[pos + 4..pos + 4 + len];
            let rec = codec::decode(body).map_err(|e| match e {
                DbError::CorruptLog { offset, detail } => DbError::CorruptLog {
                    offset: (pos + 4) as u64 + offset,
                    detail,
                },
                other => other,
            })?;
            records.push(rec);
            pos += 4 + len;
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use morph_common::TxnId;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("morphwal-{}-{}", std::process::id(), name));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn roundtrip_through_file() {
        let path = tmp("roundtrip");
        {
            let mut be = FileBackend::open(&path).unwrap();
            for i in 0..5 {
                be.append(&codec::encode(&LogRecord::Begin { txn: TxnId(i) }));
            }
            be.flush().unwrap();
        }
        let recs = FileBackend::read_all(&path).unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[4], LogRecord::Begin { txn: TxnId(4) });
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let path = tmp("torn");
        {
            let mut be = FileBackend::open(&path).unwrap();
            be.append(&codec::encode(&LogRecord::Begin { txn: TxnId(1) }));
            be.flush().unwrap();
        }
        // Simulate a crash mid-append: a length prefix promising more
        // bytes than exist.
        {
            let mut f = OpenOptions::new().append(true).open(&path).unwrap();
            f.write_all(&(1000u32).to_le_bytes()).unwrap();
            f.write_all(&[1, 2, 3]).unwrap();
        }
        let recs = FileBackend::read_all(&path).unwrap();
        assert_eq!(recs.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_body_is_an_error() {
        let path = tmp("corrupt");
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&(1u32).to_le_bytes()).unwrap();
            f.write_all(&[250]).unwrap(); // bogus tag
        }
        assert!(matches!(
            FileBackend::read_all(&path),
            Err(DbError::CorruptLog { .. })
        ));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = tmp("never-created");
        std::fs::remove_file(&path).ok();
        assert!(matches!(FileBackend::read_all(&path), Err(DbError::Io(_))));
    }

    #[test]
    fn manager_with_file_persists() {
        let path = tmp("manager");
        {
            let log = crate::LogManager::with_file(&path).unwrap();
            log.append(LogRecord::Begin { txn: TxnId(9) });
            log.append(LogRecord::Commit { txn: TxnId(9) });
            log.flush().unwrap();
        }
        let recs = FileBackend::read_all(&path).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1], LogRecord::Commit { txn: TxnId(9) });
        std::fs::remove_file(&path).unwrap();
    }
}
