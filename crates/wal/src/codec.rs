//! Binary codec for log records.
//!
//! A small, hand-rolled, length-transparent binary format built on the
//! [`bytes`] crate. Layout is tag-prefixed and little-endian
//! throughout; strings are UTF-8 with a `u32` length prefix. The codec
//! is total on the encode side and returns [`DbError::CorruptLog`] on
//! any malformed input rather than panicking.

use crate::record::{LogOp, LogRecord, MigrationPhase};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use morph_common::{DbError, DbResult, Key, Lsn, TableId, TxnId, Value};

/// A decoded value borrowing its string payload from the encoded
/// buffer. The zero-copy twin of [`Value`]: recovery's analysis pass
/// and the propagator's batch reads classify millions of records
/// without ever materializing a `String`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ValueRef<'a> {
    /// Absent value.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string slice pointing into the encoded record.
    Str(&'a str),
}

impl ValueRef<'_> {
    /// Materialize an owned [`Value`] (the only point a string
    /// allocation happens on the decode path).
    pub fn to_owned(&self) -> Value {
        match self {
            ValueRef::Null => Value::Null,
            ValueRef::Int(i) => Value::Int(*i),
            ValueRef::Str(s) => Value::Str((*s).to_string()),
        }
    }
}

fn owned_values(vals: &[ValueRef<'_>]) -> Vec<Value> {
    vals.iter().map(ValueRef::to_owned).collect()
}

fn owned_cols(cols: &[(usize, ValueRef<'_>)]) -> Vec<(usize, Value)> {
    cols.iter().map(|(i, v)| (*i, v.to_owned())).collect()
}

/// A decoded data operation borrowing from the encoded buffer; the
/// zero-copy twin of [`LogOp`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogOpRef<'a> {
    /// A full row was inserted.
    Insert {
        /// Target table.
        table: TableId,
        /// Complete row image.
        row: Vec<ValueRef<'a>>,
    },
    /// A row was deleted.
    Delete {
        /// Target table.
        table: TableId,
        /// Primary key of the deleted row.
        key: Vec<ValueRef<'a>>,
        /// Full pre-image of the deleted row.
        old: Vec<ValueRef<'a>>,
    },
    /// Some columns of a row changed.
    Update {
        /// Target table.
        table: TableId,
        /// Primary key of the updated row (pre-update key).
        key: Vec<ValueRef<'a>>,
        /// Changed columns, pre-update values.
        old: Vec<(usize, ValueRef<'a>)>,
        /// Changed columns, post-update values.
        new: Vec<(usize, ValueRef<'a>)>,
    },
}

impl LogOpRef<'_> {
    /// The table this operation touches.
    pub fn table(&self) -> TableId {
        match self {
            LogOpRef::Insert { table, .. }
            | LogOpRef::Delete { table, .. }
            | LogOpRef::Update { table, .. } => *table,
        }
    }

    /// Materialize an owned [`LogOp`].
    pub fn to_owned(&self) -> LogOp {
        match self {
            LogOpRef::Insert { table, row } => LogOp::Insert {
                table: *table,
                row: owned_values(row),
            },
            LogOpRef::Delete { table, key, old } => LogOp::Delete {
                table: *table,
                key: Key(owned_values(key)),
                old: owned_values(old),
            },
            LogOpRef::Update {
                table,
                key,
                old,
                new,
            } => LogOp::Update {
                table: *table,
                key: Key(owned_values(key)),
                old: owned_cols(old),
                new: owned_cols(new),
            },
        }
    }
}

/// A decoded record borrowing from the encoded buffer; the zero-copy
/// twin of [`LogRecord`]. Control records decode without any per-value
/// allocation at all; `Op`/`Clr` allocate only the column vectors,
/// never the string payloads.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum LogRecordRef<'a> {
    /// Transaction began.
    Begin { txn: TxnId },
    /// Transaction committed.
    Commit { txn: TxnId },
    /// Transaction rollback started.
    Abort { txn: TxnId },
    /// Transaction rollback finished.
    AbortEnd { txn: TxnId },
    /// A forward data operation executed under `txn`.
    Op { txn: TxnId, op: LogOpRef<'a> },
    /// Compensating Log Record.
    Clr {
        txn: TxnId,
        /// LSN of the forward record this CLR compensates.
        undone_lsn: Lsn,
        /// The physical compensation that was executed.
        op: LogOpRef<'a>,
    },
    /// Fuzzy mark (§3.2).
    FuzzyMark {
        /// Transactions active on the source tables at mark time.
        active: Vec<TxnId>,
        /// Where log propagation must start reading.
        start_lsn: Lsn,
    },
    /// Consistency checker started examining a split-key (§5.3).
    CcBegin { split_key: Vec<ValueRef<'a>> },
    /// Consistency checker verdict for a split-key.
    CcOk {
        split_key: Vec<ValueRef<'a>>,
        image: Vec<ValueRef<'a>>,
    },
    /// Checkpoint: active transactions and their last LSNs.
    Checkpoint { active: Vec<(TxnId, Lsn)> },
    /// Orchestrator state transition; `spec` borrows the log bytes.
    MigrationState {
        job: u64,
        stage: u32,
        phase: MigrationPhase,
        spec: &'a str,
    },
}

impl<'a> LogRecordRef<'a> {
    /// The transaction this record belongs to, if any.
    pub fn txn(&self) -> Option<TxnId> {
        match self {
            LogRecordRef::Begin { txn }
            | LogRecordRef::Commit { txn }
            | LogRecordRef::Abort { txn }
            | LogRecordRef::AbortEnd { txn }
            | LogRecordRef::Op { txn, .. }
            | LogRecordRef::Clr { txn, .. } => Some(*txn),
            _ => None,
        }
    }

    /// The data operation inside, if this is an `Op` or `Clr` record.
    pub fn op(&self) -> Option<&LogOpRef<'a>> {
        match self {
            LogRecordRef::Op { op, .. } | LogRecordRef::Clr { op, .. } => Some(op),
            _ => None,
        }
    }

    /// Whether this record ends its transaction.
    pub fn ends_txn(&self) -> bool {
        matches!(
            self,
            LogRecordRef::Commit { .. } | LogRecordRef::AbortEnd { .. }
        )
    }

    /// Materialize an owned [`LogRecord`].
    pub fn to_owned(&self) -> LogRecord {
        match self {
            LogRecordRef::Begin { txn } => LogRecord::Begin { txn: *txn },
            LogRecordRef::Commit { txn } => LogRecord::Commit { txn: *txn },
            LogRecordRef::Abort { txn } => LogRecord::Abort { txn: *txn },
            LogRecordRef::AbortEnd { txn } => LogRecord::AbortEnd { txn: *txn },
            LogRecordRef::Op { txn, op } => LogRecord::Op {
                txn: *txn,
                op: op.to_owned(),
            },
            LogRecordRef::Clr {
                txn,
                undone_lsn,
                op,
            } => LogRecord::Clr {
                txn: *txn,
                undone_lsn: *undone_lsn,
                op: op.to_owned(),
            },
            LogRecordRef::FuzzyMark { active, start_lsn } => LogRecord::FuzzyMark {
                active: active.clone(),
                start_lsn: *start_lsn,
            },
            LogRecordRef::CcBegin { split_key } => LogRecord::CcBegin {
                split_key: Key(owned_values(split_key)),
            },
            LogRecordRef::CcOk { split_key, image } => LogRecord::CcOk {
                split_key: Key(owned_values(split_key)),
                image: owned_values(image),
            },
            LogRecordRef::Checkpoint { active } => LogRecord::Checkpoint {
                active: active.clone(),
            },
            LogRecordRef::MigrationState {
                job,
                stage,
                phase,
                spec,
            } => LogRecord::MigrationState {
                job: *job,
                stage: *stage,
                phase: *phase,
                spec: (*spec).to_string(),
            },
        }
    }
}

// Record tags.
const T_BEGIN: u8 = 1;
const T_COMMIT: u8 = 2;
const T_ABORT: u8 = 3;
const T_ABORT_END: u8 = 4;
const T_OP: u8 = 5;
const T_CLR: u8 = 6;
const T_FUZZY: u8 = 7;
const T_CC_BEGIN: u8 = 8;
const T_CC_OK: u8 = 9;
const T_CHECKPOINT: u8 = 10;
const T_MIGRATION: u8 = 11;

// Op tags.
const O_INSERT: u8 = 1;
const O_DELETE: u8 = 2;
const O_UPDATE: u8 = 3;

// Value tags.
const V_NULL: u8 = 0;
const V_INT: u8 = 1;
const V_STR: u8 = 2;

/// Encode a record into a freshly allocated buffer.
pub fn encode(rec: &LogRecord) -> Bytes {
    let mut b = BytesMut::with_capacity(64);
    encode_into(rec, &mut b);
    b.freeze()
}

/// Encode a record, appending to `b`.
pub fn encode_into(rec: &LogRecord, b: &mut BytesMut) {
    match rec {
        LogRecord::Begin { txn } => {
            b.put_u8(T_BEGIN);
            b.put_u64_le(txn.0);
        }
        LogRecord::Commit { txn } => {
            b.put_u8(T_COMMIT);
            b.put_u64_le(txn.0);
        }
        LogRecord::Abort { txn } => {
            b.put_u8(T_ABORT);
            b.put_u64_le(txn.0);
        }
        LogRecord::AbortEnd { txn } => {
            b.put_u8(T_ABORT_END);
            b.put_u64_le(txn.0);
        }
        LogRecord::Op { txn, op } => {
            b.put_u8(T_OP);
            b.put_u64_le(txn.0);
            encode_op(op, b);
        }
        LogRecord::Clr {
            txn,
            undone_lsn,
            op,
        } => {
            b.put_u8(T_CLR);
            b.put_u64_le(txn.0);
            b.put_u64_le(undone_lsn.0);
            encode_op(op, b);
        }
        LogRecord::FuzzyMark { active, start_lsn } => {
            b.put_u8(T_FUZZY);
            b.put_u32_le(active.len() as u32);
            for t in active {
                b.put_u64_le(t.0);
            }
            b.put_u64_le(start_lsn.0);
        }
        LogRecord::CcBegin { split_key } => {
            b.put_u8(T_CC_BEGIN);
            encode_values(&split_key.0, b);
        }
        LogRecord::CcOk { split_key, image } => {
            b.put_u8(T_CC_OK);
            encode_values(&split_key.0, b);
            encode_values(image, b);
        }
        LogRecord::Checkpoint { active } => {
            b.put_u8(T_CHECKPOINT);
            b.put_u32_le(active.len() as u32);
            for (t, l) in active {
                b.put_u64_le(t.0);
                b.put_u64_le(l.0);
            }
        }
        LogRecord::MigrationState {
            job,
            stage,
            phase,
            spec,
        } => {
            b.put_u8(T_MIGRATION);
            b.put_u64_le(*job);
            b.put_u32_le(*stage);
            b.put_u8(phase.as_u8());
            b.put_u32_le(spec.len() as u32);
            b.put_slice(spec.as_bytes());
        }
    }
}

fn encode_op(op: &LogOp, b: &mut BytesMut) {
    match op {
        LogOp::Insert { table, row } => {
            b.put_u8(O_INSERT);
            b.put_u32_le(table.0);
            encode_values(row, b);
        }
        LogOp::Delete { table, key, old } => {
            b.put_u8(O_DELETE);
            b.put_u32_le(table.0);
            encode_values(&key.0, b);
            encode_values(old, b);
        }
        LogOp::Update {
            table,
            key,
            old,
            new,
        } => {
            b.put_u8(O_UPDATE);
            b.put_u32_le(table.0);
            encode_values(&key.0, b);
            encode_cols(old, b);
            encode_cols(new, b);
        }
    }
}

fn encode_values(vals: &[Value], b: &mut BytesMut) {
    b.put_u32_le(vals.len() as u32);
    for v in vals {
        encode_value(v, b);
    }
}

fn encode_cols(cols: &[(usize, Value)], b: &mut BytesMut) {
    b.put_u32_le(cols.len() as u32);
    for (i, v) in cols {
        b.put_u32_le(*i as u32);
        encode_value(v, b);
    }
}

fn encode_value(v: &Value, b: &mut BytesMut) {
    match v {
        Value::Null => b.put_u8(V_NULL),
        Value::Int(i) => {
            b.put_u8(V_INT);
            b.put_i64_le(*i);
        }
        Value::Str(s) => {
            b.put_u8(V_STR);
            b.put_u32_le(s.len() as u32);
            b.put_slice(s.as_bytes());
        }
    }
}

/// Decoding context: tracks the byte offset for error reporting.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn corrupt(&self, detail: &str) -> DbError {
        DbError::CorruptLog {
            offset: self.pos as u64,
            detail: detail.to_owned(),
        }
    }

    fn need(&self, n: usize) -> DbResult<()> {
        if self.buf.len() - self.pos < n {
            Err(self.corrupt("unexpected end of record"))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> DbResult<u8> {
        self.need(1)?;
        let mut s = &self.buf[self.pos..];
        self.pos += 1;
        Ok(s.get_u8())
    }

    fn u32(&mut self) -> DbResult<u32> {
        self.need(4)?;
        let mut s = &self.buf[self.pos..];
        self.pos += 4;
        Ok(s.get_u32_le())
    }

    fn u64(&mut self) -> DbResult<u64> {
        self.need(8)?;
        let mut s = &self.buf[self.pos..];
        self.pos += 8;
        Ok(s.get_u64_le())
    }

    fn i64(&mut self) -> DbResult<i64> {
        self.need(8)?;
        let mut s = &self.buf[self.pos..];
        self.pos += 8;
        Ok(s.get_i64_le())
    }

    fn bytes(&mut self, n: usize) -> DbResult<&'a [u8]> {
        self.need(n)?;
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Decode a record previously produced by [`encode`]. The entire buffer
/// must be consumed. This is a convenience over [`decode_ref`] that
/// materializes an owned record; hot paths (recovery analysis, batch
/// scans) should use `decode_ref` and convert only what they keep.
pub fn decode(buf: &[u8]) -> DbResult<LogRecord> {
    Ok(decode_ref(buf)?.to_owned())
}

/// Decode a record without copying string payloads: every `Str` value
/// and the migration `spec` borrow directly from `buf`. The entire
/// buffer must be consumed.
pub fn decode_ref(buf: &[u8]) -> DbResult<LogRecordRef<'_>> {
    let mut r = Reader { buf, pos: 0 };
    let rec = decode_record(&mut r)?;
    if r.pos != buf.len() {
        return Err(r.corrupt("trailing bytes after record"));
    }
    Ok(rec)
}

fn decode_record<'a>(r: &mut Reader<'a>) -> DbResult<LogRecordRef<'a>> {
    let tag = r.u8()?;
    Ok(match tag {
        T_BEGIN => LogRecordRef::Begin {
            txn: TxnId(r.u64()?),
        },
        T_COMMIT => LogRecordRef::Commit {
            txn: TxnId(r.u64()?),
        },
        T_ABORT => LogRecordRef::Abort {
            txn: TxnId(r.u64()?),
        },
        T_ABORT_END => LogRecordRef::AbortEnd {
            txn: TxnId(r.u64()?),
        },
        T_OP => LogRecordRef::Op {
            txn: TxnId(r.u64()?),
            op: decode_op(r)?,
        },
        T_CLR => LogRecordRef::Clr {
            txn: TxnId(r.u64()?),
            undone_lsn: Lsn(r.u64()?),
            op: decode_op(r)?,
        },
        T_FUZZY => {
            let n = r.u32()? as usize;
            let mut active = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                active.push(TxnId(r.u64()?));
            }
            LogRecordRef::FuzzyMark {
                active,
                start_lsn: Lsn(r.u64()?),
            }
        }
        T_CC_BEGIN => LogRecordRef::CcBegin {
            split_key: decode_values(r)?,
        },
        T_CC_OK => LogRecordRef::CcOk {
            split_key: decode_values(r)?,
            image: decode_values(r)?,
        },
        T_CHECKPOINT => {
            let n = r.u32()? as usize;
            let mut active = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                active.push((TxnId(r.u64()?), Lsn(r.u64()?)));
            }
            LogRecordRef::Checkpoint { active }
        }
        T_MIGRATION => {
            let job = r.u64()?;
            let stage = r.u32()?;
            let ptag = r.u8()?;
            let phase = MigrationPhase::from_u8(ptag)
                .ok_or_else(|| r.corrupt(&format!("unknown migration phase tag {ptag}")))?;
            let n = r.u32()? as usize;
            let raw = r.bytes(n)?;
            let spec = std::str::from_utf8(raw)
                .map_err(|_| r.corrupt("invalid UTF-8 in migration spec"))?;
            LogRecordRef::MigrationState {
                job,
                stage,
                phase,
                spec,
            }
        }
        other => return Err(r.corrupt(&format!("unknown record tag {other}"))),
    })
}

fn decode_op<'a>(r: &mut Reader<'a>) -> DbResult<LogOpRef<'a>> {
    let tag = r.u8()?;
    Ok(match tag {
        O_INSERT => LogOpRef::Insert {
            table: TableId(r.u32()?),
            row: decode_values(r)?,
        },
        O_DELETE => LogOpRef::Delete {
            table: TableId(r.u32()?),
            key: decode_values(r)?,
            old: decode_values(r)?,
        },
        O_UPDATE => LogOpRef::Update {
            table: TableId(r.u32()?),
            key: decode_values(r)?,
            old: decode_cols(r)?,
            new: decode_cols(r)?,
        },
        other => return Err(r.corrupt(&format!("unknown op tag {other}"))),
    })
}

fn decode_values<'a>(r: &mut Reader<'a>) -> DbResult<Vec<ValueRef<'a>>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(decode_value(r)?);
    }
    Ok(out)
}

fn decode_cols<'a>(r: &mut Reader<'a>) -> DbResult<Vec<(usize, ValueRef<'a>)>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let i = r.u32()? as usize;
        out.push((i, decode_value(r)?));
    }
    Ok(out)
}

fn decode_value<'a>(r: &mut Reader<'a>) -> DbResult<ValueRef<'a>> {
    let tag = r.u8()?;
    Ok(match tag {
        V_NULL => ValueRef::Null,
        V_INT => ValueRef::Int(r.i64()?),
        V_STR => {
            let n = r.u32()? as usize;
            let raw = r.bytes(n)?;
            let s =
                std::str::from_utf8(raw).map_err(|_| r.corrupt("invalid UTF-8 in string value"))?;
            ValueRef::Str(s)
        }
        other => return Err(r.corrupt(&format!("unknown value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: LogRecord) {
        let bytes = encode(&rec);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, rec);
        // The borrowed decoder must agree exactly (decode() is defined
        // through it, but keep the assertion in case that ever changes).
        let borrowed = decode_ref(&bytes).expect("decode_ref");
        assert_eq!(borrowed.to_owned(), rec);
    }

    /// Range check: `s` must be a sub-slice of `buf` (no copy).
    fn borrows_from(s: &str, buf: &[u8]) -> bool {
        let b = buf.as_ptr() as usize;
        let p = s.as_ptr() as usize;
        p >= b && p + s.len() <= b + buf.len()
    }

    #[test]
    fn decode_ref_borrows_string_payloads() {
        let bytes = encode(&LogRecord::Op {
            txn: TxnId(3),
            op: LogOp::Insert {
                table: TableId(1),
                row: vec![Value::str("zero-copy"), Value::Int(7)],
            },
        });
        let rec = decode_ref(&bytes).unwrap();
        match rec.op() {
            Some(LogOpRef::Insert { row, .. }) => match row[0] {
                ValueRef::Str(s) => {
                    assert_eq!(s, "zero-copy");
                    assert!(borrows_from(s, &bytes), "string was copied, not borrowed");
                }
                ref other => panic!("expected Str, got {other:?}"),
            },
            other => panic!("expected insert op, got {other:?}"),
        }
    }

    #[test]
    fn decode_ref_borrows_migration_spec() {
        let bytes = encode(&LogRecord::MigrationState {
            job: 1,
            stage: 0,
            phase: MigrationPhase::Copying,
            spec: "ALTER TABLE t SPLIT INTO r (a) AND s (b -> c)".into(),
        });
        match decode_ref(&bytes).unwrap() {
            LogRecordRef::MigrationState { spec, .. } => {
                assert!(borrows_from(spec, &bytes), "spec was copied, not borrowed");
            }
            other => panic!("expected migration state, got {other:?}"),
        }
    }

    #[test]
    fn decode_ref_accessors_match_owned() {
        let bytes = encode(&LogRecord::Clr {
            txn: TxnId(9),
            undone_lsn: Lsn(4),
            op: LogOp::Update {
                table: TableId(2),
                key: Key::single(5),
                old: vec![(1, Value::str("a"))],
                new: vec![(1, Value::str("b"))],
            },
        });
        let rec = decode_ref(&bytes).unwrap();
        let owned = rec.to_owned();
        assert_eq!(rec.txn(), owned.txn());
        assert_eq!(rec.ends_txn(), owned.ends_txn());
        assert_eq!(rec.op().map(|o| o.table()), owned.op().map(|o| o.table()));
        assert_eq!(rec.op().map(|o| o.to_owned()).as_ref(), owned.op());
    }

    #[test]
    fn decode_ref_truncation_is_corrupt_not_panic() {
        let bytes = encode(&LogRecord::Op {
            txn: TxnId(3),
            op: LogOp::Delete {
                table: TableId(9),
                key: Key::new([Value::Int(1), Value::str("k")]),
                old: vec![Value::Int(1), Value::str("k"), Value::Null],
            },
        });
        for cut in 0..bytes.len() {
            let err = decode_ref(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DbError::CorruptLog { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn roundtrip_control_records() {
        roundtrip(LogRecord::Begin { txn: TxnId(1) });
        roundtrip(LogRecord::Commit {
            txn: TxnId(u64::MAX),
        });
        roundtrip(LogRecord::Abort { txn: TxnId(0) });
        roundtrip(LogRecord::AbortEnd { txn: TxnId(77) });
    }

    #[test]
    fn roundtrip_ops() {
        roundtrip(LogRecord::Op {
            txn: TxnId(3),
            op: LogOp::Insert {
                table: TableId(1),
                row: vec![Value::Int(-1), Value::Null, Value::str("héllo")],
            },
        });
        roundtrip(LogRecord::Op {
            txn: TxnId(3),
            op: LogOp::Delete {
                table: TableId(9),
                key: Key::new([Value::Int(1), Value::str("k")]),
                old: vec![Value::Int(1), Value::str("k"), Value::Null],
            },
        });
        roundtrip(LogRecord::Clr {
            txn: TxnId(3),
            undone_lsn: Lsn(42),
            op: LogOp::Update {
                table: TableId(2),
                key: Key::single(5),
                old: vec![(0, Value::Int(1)), (2, Value::Null)],
                new: vec![(0, Value::Int(2)), (2, Value::str("x"))],
            },
        });
    }

    #[test]
    fn roundtrip_marks() {
        roundtrip(LogRecord::FuzzyMark {
            active: vec![TxnId(1), TxnId(2), TxnId(3)],
            start_lsn: Lsn(100),
        });
        roundtrip(LogRecord::FuzzyMark {
            active: vec![],
            start_lsn: Lsn(1),
        });
        roundtrip(LogRecord::CcBegin {
            split_key: Key::single("7050"),
        });
        roundtrip(LogRecord::CcOk {
            split_key: Key::single("7050"),
            image: vec![Value::str("7050"), Value::str("Trondheim")],
        });
        roundtrip(LogRecord::Checkpoint {
            active: vec![(TxnId(4), Lsn(9)), (TxnId(5), Lsn(11))],
        });
    }

    #[test]
    fn roundtrip_migration_state() {
        for phase in [
            MigrationPhase::Planned,
            MigrationPhase::Preparing,
            MigrationPhase::Copying,
            MigrationPhase::Propagating,
            MigrationPhase::Syncing,
            MigrationPhase::CutOver,
            MigrationPhase::Aborted,
        ] {
            roundtrip(LogRecord::MigrationState {
                job: 42,
                stage: 3,
                phase,
                spec: "ALTER TABLE customer SPLIT INTO cust (id) AND city (pc -> name)".into(),
            });
        }
        roundtrip(LogRecord::MigrationState {
            job: 0,
            stage: 0,
            phase: MigrationPhase::Planned,
            spec: String::new(),
        });
    }

    #[test]
    fn truncated_migration_state_is_corrupt_not_panic() {
        let bytes = encode(&LogRecord::MigrationState {
            job: 7,
            stage: 1,
            phase: MigrationPhase::Syncing,
            spec: "ALTER TABLE a UNION b INTO u".into(),
        });
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DbError::CorruptLog { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn unknown_migration_phase_tag_rejected() {
        let mut b = BytesMut::new();
        b.put_u8(T_MIGRATION);
        b.put_u64_le(1);
        b.put_u32_le(0);
        b.put_u8(200); // bogus phase tag
        b.put_u32_le(0);
        assert!(matches!(decode(&b), Err(DbError::CorruptLog { .. })));
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let bytes = encode(&LogRecord::Op {
            txn: TxnId(3),
            op: LogOp::Insert {
                table: TableId(1),
                row: vec![Value::str("abcdefgh")],
            },
        });
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DbError::CorruptLog { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&LogRecord::Begin { txn: TxnId(1) }).to_vec();
        bytes.push(0xAB);
        assert!(matches!(decode(&bytes), Err(DbError::CorruptLog { .. })));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(decode(&[99]), Err(DbError::CorruptLog { .. })));
        // Op with bad op tag.
        let mut b = BytesMut::new();
        b.put_u8(T_OP);
        b.put_u64_le(1);
        b.put_u8(42);
        assert!(matches!(decode(&b), Err(DbError::CorruptLog { .. })));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut b = BytesMut::new();
        b.put_u8(T_CC_BEGIN);
        b.put_u32_le(1); // one value
        b.put_u8(V_STR);
        b.put_u32_le(2);
        b.put_slice(&[0xFF, 0xFE]);
        assert!(matches!(decode(&b), Err(DbError::CorruptLog { .. })));
    }
}
