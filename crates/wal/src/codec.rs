//! Binary codec for log records.
//!
//! A small, hand-rolled, length-transparent binary format built on the
//! [`bytes`] crate. Layout is tag-prefixed and little-endian
//! throughout; strings are UTF-8 with a `u32` length prefix. The codec
//! is total on the encode side and returns [`DbError::CorruptLog`] on
//! any malformed input rather than panicking.

use crate::record::{LogOp, LogRecord, MigrationPhase};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use morph_common::{DbError, DbResult, Key, Lsn, TableId, TxnId, Value};

// Record tags.
const T_BEGIN: u8 = 1;
const T_COMMIT: u8 = 2;
const T_ABORT: u8 = 3;
const T_ABORT_END: u8 = 4;
const T_OP: u8 = 5;
const T_CLR: u8 = 6;
const T_FUZZY: u8 = 7;
const T_CC_BEGIN: u8 = 8;
const T_CC_OK: u8 = 9;
const T_CHECKPOINT: u8 = 10;
const T_MIGRATION: u8 = 11;

// Op tags.
const O_INSERT: u8 = 1;
const O_DELETE: u8 = 2;
const O_UPDATE: u8 = 3;

// Value tags.
const V_NULL: u8 = 0;
const V_INT: u8 = 1;
const V_STR: u8 = 2;

/// Encode a record into a freshly allocated buffer.
pub fn encode(rec: &LogRecord) -> Bytes {
    let mut b = BytesMut::with_capacity(64);
    encode_into(rec, &mut b);
    b.freeze()
}

/// Encode a record, appending to `b`.
pub fn encode_into(rec: &LogRecord, b: &mut BytesMut) {
    match rec {
        LogRecord::Begin { txn } => {
            b.put_u8(T_BEGIN);
            b.put_u64_le(txn.0);
        }
        LogRecord::Commit { txn } => {
            b.put_u8(T_COMMIT);
            b.put_u64_le(txn.0);
        }
        LogRecord::Abort { txn } => {
            b.put_u8(T_ABORT);
            b.put_u64_le(txn.0);
        }
        LogRecord::AbortEnd { txn } => {
            b.put_u8(T_ABORT_END);
            b.put_u64_le(txn.0);
        }
        LogRecord::Op { txn, op } => {
            b.put_u8(T_OP);
            b.put_u64_le(txn.0);
            encode_op(op, b);
        }
        LogRecord::Clr {
            txn,
            undone_lsn,
            op,
        } => {
            b.put_u8(T_CLR);
            b.put_u64_le(txn.0);
            b.put_u64_le(undone_lsn.0);
            encode_op(op, b);
        }
        LogRecord::FuzzyMark { active, start_lsn } => {
            b.put_u8(T_FUZZY);
            b.put_u32_le(active.len() as u32);
            for t in active {
                b.put_u64_le(t.0);
            }
            b.put_u64_le(start_lsn.0);
        }
        LogRecord::CcBegin { split_key } => {
            b.put_u8(T_CC_BEGIN);
            encode_values(&split_key.0, b);
        }
        LogRecord::CcOk { split_key, image } => {
            b.put_u8(T_CC_OK);
            encode_values(&split_key.0, b);
            encode_values(image, b);
        }
        LogRecord::Checkpoint { active } => {
            b.put_u8(T_CHECKPOINT);
            b.put_u32_le(active.len() as u32);
            for (t, l) in active {
                b.put_u64_le(t.0);
                b.put_u64_le(l.0);
            }
        }
        LogRecord::MigrationState {
            job,
            stage,
            phase,
            spec,
        } => {
            b.put_u8(T_MIGRATION);
            b.put_u64_le(*job);
            b.put_u32_le(*stage);
            b.put_u8(phase.as_u8());
            b.put_u32_le(spec.len() as u32);
            b.put_slice(spec.as_bytes());
        }
    }
}

fn encode_op(op: &LogOp, b: &mut BytesMut) {
    match op {
        LogOp::Insert { table, row } => {
            b.put_u8(O_INSERT);
            b.put_u32_le(table.0);
            encode_values(row, b);
        }
        LogOp::Delete { table, key, old } => {
            b.put_u8(O_DELETE);
            b.put_u32_le(table.0);
            encode_values(&key.0, b);
            encode_values(old, b);
        }
        LogOp::Update {
            table,
            key,
            old,
            new,
        } => {
            b.put_u8(O_UPDATE);
            b.put_u32_le(table.0);
            encode_values(&key.0, b);
            encode_cols(old, b);
            encode_cols(new, b);
        }
    }
}

fn encode_values(vals: &[Value], b: &mut BytesMut) {
    b.put_u32_le(vals.len() as u32);
    for v in vals {
        encode_value(v, b);
    }
}

fn encode_cols(cols: &[(usize, Value)], b: &mut BytesMut) {
    b.put_u32_le(cols.len() as u32);
    for (i, v) in cols {
        b.put_u32_le(*i as u32);
        encode_value(v, b);
    }
}

fn encode_value(v: &Value, b: &mut BytesMut) {
    match v {
        Value::Null => b.put_u8(V_NULL),
        Value::Int(i) => {
            b.put_u8(V_INT);
            b.put_i64_le(*i);
        }
        Value::Str(s) => {
            b.put_u8(V_STR);
            b.put_u32_le(s.len() as u32);
            b.put_slice(s.as_bytes());
        }
    }
}

/// Decoding context: tracks the byte offset for error reporting.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn corrupt(&self, detail: &str) -> DbError {
        DbError::CorruptLog {
            offset: self.pos as u64,
            detail: detail.to_owned(),
        }
    }

    fn need(&self, n: usize) -> DbResult<()> {
        if self.buf.len() - self.pos < n {
            Err(self.corrupt("unexpected end of record"))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> DbResult<u8> {
        self.need(1)?;
        let mut s = &self.buf[self.pos..];
        self.pos += 1;
        Ok(s.get_u8())
    }

    fn u32(&mut self) -> DbResult<u32> {
        self.need(4)?;
        let mut s = &self.buf[self.pos..];
        self.pos += 4;
        Ok(s.get_u32_le())
    }

    fn u64(&mut self) -> DbResult<u64> {
        self.need(8)?;
        let mut s = &self.buf[self.pos..];
        self.pos += 8;
        Ok(s.get_u64_le())
    }

    fn i64(&mut self) -> DbResult<i64> {
        self.need(8)?;
        let mut s = &self.buf[self.pos..];
        self.pos += 8;
        Ok(s.get_i64_le())
    }

    fn bytes(&mut self, n: usize) -> DbResult<&'a [u8]> {
        self.need(n)?;
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }
}

/// Decode a record previously produced by [`encode`]. The entire buffer
/// must be consumed.
pub fn decode(buf: &[u8]) -> DbResult<LogRecord> {
    let mut r = Reader { buf, pos: 0 };
    let rec = decode_record(&mut r)?;
    if r.pos != buf.len() {
        return Err(r.corrupt("trailing bytes after record"));
    }
    Ok(rec)
}

fn decode_record(r: &mut Reader<'_>) -> DbResult<LogRecord> {
    let tag = r.u8()?;
    Ok(match tag {
        T_BEGIN => LogRecord::Begin {
            txn: TxnId(r.u64()?),
        },
        T_COMMIT => LogRecord::Commit {
            txn: TxnId(r.u64()?),
        },
        T_ABORT => LogRecord::Abort {
            txn: TxnId(r.u64()?),
        },
        T_ABORT_END => LogRecord::AbortEnd {
            txn: TxnId(r.u64()?),
        },
        T_OP => LogRecord::Op {
            txn: TxnId(r.u64()?),
            op: decode_op(r)?,
        },
        T_CLR => LogRecord::Clr {
            txn: TxnId(r.u64()?),
            undone_lsn: Lsn(r.u64()?),
            op: decode_op(r)?,
        },
        T_FUZZY => {
            let n = r.u32()? as usize;
            let mut active = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                active.push(TxnId(r.u64()?));
            }
            LogRecord::FuzzyMark {
                active,
                start_lsn: Lsn(r.u64()?),
            }
        }
        T_CC_BEGIN => LogRecord::CcBegin {
            split_key: Key(decode_values(r)?),
        },
        T_CC_OK => LogRecord::CcOk {
            split_key: Key(decode_values(r)?),
            image: decode_values(r)?,
        },
        T_CHECKPOINT => {
            let n = r.u32()? as usize;
            let mut active = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                active.push((TxnId(r.u64()?), Lsn(r.u64()?)));
            }
            LogRecord::Checkpoint { active }
        }
        T_MIGRATION => {
            let job = r.u64()?;
            let stage = r.u32()?;
            let ptag = r.u8()?;
            let phase = MigrationPhase::from_u8(ptag)
                .ok_or_else(|| r.corrupt(&format!("unknown migration phase tag {ptag}")))?;
            let n = r.u32()? as usize;
            let raw = r.bytes(n)?;
            let spec = std::str::from_utf8(raw)
                .map_err(|_| r.corrupt("invalid UTF-8 in migration spec"))?
                .to_owned();
            LogRecord::MigrationState {
                job,
                stage,
                phase,
                spec,
            }
        }
        other => return Err(r.corrupt(&format!("unknown record tag {other}"))),
    })
}

fn decode_op(r: &mut Reader<'_>) -> DbResult<LogOp> {
    let tag = r.u8()?;
    Ok(match tag {
        O_INSERT => LogOp::Insert {
            table: TableId(r.u32()?),
            row: decode_values(r)?,
        },
        O_DELETE => LogOp::Delete {
            table: TableId(r.u32()?),
            key: Key(decode_values(r)?),
            old: decode_values(r)?,
        },
        O_UPDATE => LogOp::Update {
            table: TableId(r.u32()?),
            key: Key(decode_values(r)?),
            old: decode_cols(r)?,
            new: decode_cols(r)?,
        },
        other => return Err(r.corrupt(&format!("unknown op tag {other}"))),
    })
}

fn decode_values(r: &mut Reader<'_>) -> DbResult<Vec<Value>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(decode_value(r)?);
    }
    Ok(out)
}

fn decode_cols(r: &mut Reader<'_>) -> DbResult<Vec<(usize, Value)>> {
    let n = r.u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let i = r.u32()? as usize;
        out.push((i, decode_value(r)?));
    }
    Ok(out)
}

fn decode_value(r: &mut Reader<'_>) -> DbResult<Value> {
    let tag = r.u8()?;
    Ok(match tag {
        V_NULL => Value::Null,
        V_INT => Value::Int(r.i64()?),
        V_STR => {
            let n = r.u32()? as usize;
            let raw = r.bytes(n)?;
            let s =
                std::str::from_utf8(raw).map_err(|_| r.corrupt("invalid UTF-8 in string value"))?;
            Value::Str(s.to_owned())
        }
        other => return Err(r.corrupt(&format!("unknown value tag {other}"))),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(rec: LogRecord) {
        let bytes = encode(&rec);
        let back = decode(&bytes).expect("decode");
        assert_eq!(back, rec);
    }

    #[test]
    fn roundtrip_control_records() {
        roundtrip(LogRecord::Begin { txn: TxnId(1) });
        roundtrip(LogRecord::Commit {
            txn: TxnId(u64::MAX),
        });
        roundtrip(LogRecord::Abort { txn: TxnId(0) });
        roundtrip(LogRecord::AbortEnd { txn: TxnId(77) });
    }

    #[test]
    fn roundtrip_ops() {
        roundtrip(LogRecord::Op {
            txn: TxnId(3),
            op: LogOp::Insert {
                table: TableId(1),
                row: vec![Value::Int(-1), Value::Null, Value::str("héllo")],
            },
        });
        roundtrip(LogRecord::Op {
            txn: TxnId(3),
            op: LogOp::Delete {
                table: TableId(9),
                key: Key::new([Value::Int(1), Value::str("k")]),
                old: vec![Value::Int(1), Value::str("k"), Value::Null],
            },
        });
        roundtrip(LogRecord::Clr {
            txn: TxnId(3),
            undone_lsn: Lsn(42),
            op: LogOp::Update {
                table: TableId(2),
                key: Key::single(5),
                old: vec![(0, Value::Int(1)), (2, Value::Null)],
                new: vec![(0, Value::Int(2)), (2, Value::str("x"))],
            },
        });
    }

    #[test]
    fn roundtrip_marks() {
        roundtrip(LogRecord::FuzzyMark {
            active: vec![TxnId(1), TxnId(2), TxnId(3)],
            start_lsn: Lsn(100),
        });
        roundtrip(LogRecord::FuzzyMark {
            active: vec![],
            start_lsn: Lsn(1),
        });
        roundtrip(LogRecord::CcBegin {
            split_key: Key::single("7050"),
        });
        roundtrip(LogRecord::CcOk {
            split_key: Key::single("7050"),
            image: vec![Value::str("7050"), Value::str("Trondheim")],
        });
        roundtrip(LogRecord::Checkpoint {
            active: vec![(TxnId(4), Lsn(9)), (TxnId(5), Lsn(11))],
        });
    }

    #[test]
    fn roundtrip_migration_state() {
        for phase in [
            MigrationPhase::Planned,
            MigrationPhase::Preparing,
            MigrationPhase::Copying,
            MigrationPhase::Propagating,
            MigrationPhase::Syncing,
            MigrationPhase::CutOver,
            MigrationPhase::Aborted,
        ] {
            roundtrip(LogRecord::MigrationState {
                job: 42,
                stage: 3,
                phase,
                spec: "ALTER TABLE customer SPLIT INTO cust (id) AND city (pc -> name)".into(),
            });
        }
        roundtrip(LogRecord::MigrationState {
            job: 0,
            stage: 0,
            phase: MigrationPhase::Planned,
            spec: String::new(),
        });
    }

    #[test]
    fn truncated_migration_state_is_corrupt_not_panic() {
        let bytes = encode(&LogRecord::MigrationState {
            job: 7,
            stage: 1,
            phase: MigrationPhase::Syncing,
            spec: "ALTER TABLE a UNION b INTO u".into(),
        });
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DbError::CorruptLog { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn unknown_migration_phase_tag_rejected() {
        let mut b = BytesMut::new();
        b.put_u8(T_MIGRATION);
        b.put_u64_le(1);
        b.put_u32_le(0);
        b.put_u8(200); // bogus phase tag
        b.put_u32_le(0);
        assert!(matches!(decode(&b), Err(DbError::CorruptLog { .. })));
    }

    #[test]
    fn truncated_input_is_corrupt_not_panic() {
        let bytes = encode(&LogRecord::Op {
            txn: TxnId(3),
            op: LogOp::Insert {
                table: TableId(1),
                row: vec![Value::str("abcdefgh")],
            },
        });
        for cut in 0..bytes.len() {
            let err = decode(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, DbError::CorruptLog { .. }),
                "cut at {cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode(&LogRecord::Begin { txn: TxnId(1) }).to_vec();
        bytes.push(0xAB);
        assert!(matches!(decode(&bytes), Err(DbError::CorruptLog { .. })));
    }

    #[test]
    fn unknown_tags_rejected() {
        assert!(matches!(decode(&[99]), Err(DbError::CorruptLog { .. })));
        // Op with bad op tag.
        let mut b = BytesMut::new();
        b.put_u8(T_OP);
        b.put_u64_le(1);
        b.put_u8(42);
        assert!(matches!(decode(&b), Err(DbError::CorruptLog { .. })));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut b = BytesMut::new();
        b.put_u8(T_CC_BEGIN);
        b.put_u32_le(1); // one value
        b.put_u8(V_STR);
        b.put_u32_le(2);
        b.put_slice(&[0xFF, 0xFE]);
        assert!(matches!(decode(&b), Err(DbError::CorruptLog { .. })));
    }
}
