//! The log manager.
//!
//! [`LogManager`] owns the sequential log: it assigns LSNs, serves
//! random and tail reads, and (optionally) tees every record into a
//! file backend for restart recovery. The log is the *only* channel
//! through which the transformation framework observes user activity
//! (the paper's headline property: "Only the log is used for change
//! propagation").
//!
//! LSNs are 1-based: the record at LSN *n* is the *n*-th record ever
//! appended. [`Lsn::ZERO`] therefore means "before any record".

use crate::codec;
use crate::file::{Backend, FileBackend};
use crate::record::LogRecord;
use morph_common::{DbResult, Lsn};
use parking_lot::Mutex;
use std::sync::Arc;

struct Inner {
    /// Retained records; index `i` holds LSN `base + i + 1`.
    records: Vec<Arc<LogRecord>>,
    /// Number of records truncated away from the front: the record at
    /// LSN `base` (and below) is no longer readable in memory.
    base: u64,
}

/// Append-only, totally ordered log with tail readers.
pub struct LogManager {
    inner: Mutex<Inner>,
    backend: Option<Mutex<Box<dyn Backend + Send>>>,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    /// A purely in-memory log.
    pub fn new() -> LogManager {
        LogManager {
            inner: Mutex::new(Inner {
                records: Vec::new(),
                base: 0,
            }),
            backend: None,
        }
    }

    /// A log that also persists every record to `path` (length-prefixed
    /// binary, see [`crate::codec`]). Existing contents are preserved;
    /// use [`FileBackend::read_all`] before constructing the manager to
    /// recover them.
    pub fn with_file(path: &std::path::Path) -> DbResult<LogManager> {
        Ok(Self::with_backend(Box::new(FileBackend::open(path)?)))
    }

    /// A log that tees every record into an arbitrary [`Backend`] —
    /// the injection point for the crash-simulation harness's
    /// fault-capable in-memory backend.
    pub fn with_backend(backend: Box<dyn Backend + Send>) -> LogManager {
        LogManager {
            inner: Mutex::new(Inner {
                records: Vec::new(),
                base: 0,
            }),
            backend: Some(Mutex::new(backend)),
        }
    }

    /// Construct a manager pre-loaded with recovered records (restart
    /// recovery replays these before the database goes live).
    pub fn with_records(records: Vec<LogRecord>) -> LogManager {
        LogManager {
            inner: Mutex::new(Inner {
                records: records.into_iter().map(Arc::new).collect(),
                base: 0,
            }),
            backend: None,
        }
    }

    /// Append one record, returning its LSN.
    pub fn append(&self, rec: LogRecord) -> Lsn {
        // The backend write happens *under* the inner lock so the
        // backend's byte order always matches LSN order — two threads
        // appending concurrently must not interleave the tee.
        let mut inner = self.inner.lock();
        if let Some(backend) = &self.backend {
            backend.lock().append(&codec::encode(&rec));
        }
        inner.records.push(Arc::new(rec));
        Lsn(inner.base + inner.records.len() as u64)
    }

    /// LSN of the most recently appended record ([`Lsn::ZERO`] if the
    /// log is empty).
    pub fn last_lsn(&self) -> Lsn {
        let inner = self.inner.lock();
        Lsn(inner.base + inner.records.len() as u64)
    }

    /// Number of records currently retained in memory (appended minus
    /// truncated).
    pub fn len(&self) -> usize {
        self.inner.lock().records.len()
    }

    /// LSN below which records have been truncated away: the first
    /// readable record is `truncated_until() + 1`… unless nothing has
    /// been truncated, in which case this is [`Lsn::ZERO`].
    pub fn truncated_until(&self) -> Lsn {
        Lsn(self.inner.lock().base)
    }

    /// Drop in-memory records with LSN *strictly below* `lsn`,
    /// returning how many were discarded. The file backend (if any) is
    /// untouched — it remains the complete archive that restart
    /// recovery replays; in-memory truncation is the memory-bound knob
    /// for long-running deployments (a propagation cursor must never be
    /// truncated past, which [`morph-engine`]'s wrapper enforces).
    ///
    /// [`morph-engine`]: ../morph_engine/index.html
    pub fn truncate_until(&self, lsn: Lsn) -> usize {
        let mut inner = self.inner.lock();
        if lsn.0 <= inner.base + 1 {
            return 0;
        }
        let last = inner.base + inner.records.len() as u64;
        let new_base = (lsn.0 - 1).min(last);
        let drop_n = (new_base - inner.base) as usize;
        inner.records.drain(..drop_n);
        inner.base = new_base;
        drop_n
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch a single record by LSN (`None` if out of range or
    /// truncated away).
    pub fn read(&self, lsn: Lsn) -> Option<Arc<LogRecord>> {
        if lsn.is_zero() {
            return None;
        }
        let inner = self.inner.lock();
        if lsn.0 <= inner.base {
            return None;
        }
        inner
            .records
            .get((lsn.0 - inner.base) as usize - 1)
            .cloned()
    }

    /// Read up to `max` records starting at `from` (inclusive). Returns
    /// records paired with their LSNs; an empty result means the caller
    /// has caught up with the tail.
    pub fn read_range(&self, from: Lsn, max: usize) -> Vec<(Lsn, Arc<LogRecord>)> {
        if from.is_zero() {
            return self.read_range(Lsn(1), max);
        }
        let inner = self.inner.lock();
        // Reads below the truncation point start at the first retained
        // record (callers that must never miss records — propagation
        // cursors — are protected by the truncation guard upstream).
        let start = (from.0.max(inner.base + 1) - inner.base - 1) as usize;
        if start >= inner.records.len() {
            return Vec::new();
        }
        let end = (start + max).min(inner.records.len());
        inner.records[start..end]
            .iter()
            .enumerate()
            .map(|(i, r)| (Lsn(inner.base + (start + i + 1) as u64), Arc::clone(r)))
            .collect()
    }

    /// How many records exist at or after `from` — the propagation
    /// backlog used by the §3.3 convergence analysis.
    pub fn backlog(&self, from: Lsn) -> usize {
        let last = self.last_lsn();
        if from.is_zero() {
            return last.0 as usize;
        }
        (last.0 + 1).saturating_sub(from.0) as usize
    }

    /// Force buffered file-backend bytes to disk. No-op without a
    /// backend. Called by the engine on commit (WAL rule).
    pub fn flush(&self) -> DbResult<()> {
        if let Some(backend) = &self.backend {
            backend.lock().flush()?;
        }
        Ok(())
    }

    /// A cursor positioned at `from` for incremental tail reading.
    pub fn tail(&self, from: Lsn) -> TailCursor {
        TailCursor {
            next: if from.is_zero() { Lsn(1) } else { from },
        }
    }
}

/// Incremental reader over the log tail. The log propagator holds one
/// of these across propagation iterations; [`TailCursor::next_lsn`]
/// after a drained batch is exactly the `start_lsn` to store in the
/// next fuzzy mark.
#[derive(Clone, Copy, Debug)]
pub struct TailCursor {
    next: Lsn,
}

impl TailCursor {
    /// Read the next batch of at most `max` records.
    pub fn next_batch(&mut self, log: &LogManager, max: usize) -> Vec<(Lsn, Arc<LogRecord>)> {
        let batch = log.read_range(self.next, max);
        if let Some((last, _)) = batch.last() {
            self.next = last.next();
        }
        batch
    }

    /// The LSN the next batch will start from.
    pub fn next_lsn(&self) -> Lsn {
        self.next
    }

    /// Remaining records behind the tail.
    pub fn backlog(&self, log: &LogManager) -> usize {
        log.backlog(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::LogRecord;
    use morph_common::TxnId;

    fn begin(n: u64) -> LogRecord {
        LogRecord::Begin { txn: TxnId(n) }
    }

    #[test]
    fn lsns_are_sequential_from_one() {
        let log = LogManager::new();
        assert!(log.is_empty());
        assert_eq!(log.append(begin(1)), Lsn(1));
        assert_eq!(log.append(begin(2)), Lsn(2));
        assert_eq!(log.last_lsn(), Lsn(2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn read_by_lsn() {
        let log = LogManager::new();
        log.append(begin(7));
        assert_eq!(*log.read(Lsn(1)).unwrap(), begin(7));
        assert!(log.read(Lsn(2)).is_none());
        assert!(log.read(Lsn::ZERO).is_none());
    }

    #[test]
    fn read_range_clamps() {
        let log = LogManager::new();
        for i in 0..10 {
            log.append(begin(i));
        }
        let batch = log.read_range(Lsn(8), 100);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].0, Lsn(8));
        assert_eq!(batch[2].0, Lsn(10));
        assert!(log.read_range(Lsn(11), 5).is_empty());
        // Lsn::ZERO means "from the start".
        assert_eq!(log.read_range(Lsn::ZERO, 2).len(), 2);
    }

    #[test]
    fn backlog_counts_inclusive() {
        let log = LogManager::new();
        for i in 0..5 {
            log.append(begin(i));
        }
        assert_eq!(log.backlog(Lsn(1)), 5);
        assert_eq!(log.backlog(Lsn(5)), 1);
        assert_eq!(log.backlog(Lsn(6)), 0);
        assert_eq!(log.backlog(Lsn::ZERO), 5);
    }

    #[test]
    fn tail_cursor_drains_incrementally() {
        let log = LogManager::new();
        for i in 0..7 {
            log.append(begin(i));
        }
        let mut cur = log.tail(Lsn(1));
        let b1 = cur.next_batch(&log, 3);
        assert_eq!(b1.len(), 3);
        assert_eq!(cur.next_lsn(), Lsn(4));
        assert_eq!(cur.backlog(&log), 4);
        let b2 = cur.next_batch(&log, 10);
        assert_eq!(b2.len(), 4);
        assert!(cur.next_batch(&log, 10).is_empty());
        // New appends become visible to the same cursor.
        log.append(begin(99));
        let b3 = cur.next_batch(&log, 10);
        assert_eq!(b3.len(), 1);
        assert_eq!(*b3[0].1, begin(99));
    }

    #[test]
    fn concurrent_appends_get_unique_lsns() {
        use std::collections::HashSet;
        let log = std::sync::Arc::new(LogManager::new());
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let log = std::sync::Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut seen = Vec::new();
                for _ in 0..500 {
                    seen.push(log.append(begin(t)));
                }
                seen
            }));
        }
        let mut all = HashSet::new();
        for h in handles {
            for lsn in h.join().unwrap() {
                assert!(all.insert(lsn), "duplicate LSN {lsn:?}");
            }
        }
        assert_eq!(all.len(), 4000);
        assert_eq!(log.last_lsn(), Lsn(4000));
    }

    #[test]
    fn truncation_discards_prefix_only() {
        let log = LogManager::new();
        for i in 0..10 {
            log.append(begin(i));
        }
        assert_eq!(log.truncate_until(Lsn(5)), 4);
        assert_eq!(log.truncated_until(), Lsn(4));
        assert_eq!(log.len(), 6);
        assert_eq!(log.last_lsn(), Lsn(10));
        // Truncated records are gone; retained ones keep their LSNs.
        assert!(log.read(Lsn(4)).is_none());
        assert_eq!(*log.read(Lsn(5)).unwrap(), begin(4));
        assert_eq!(*log.read(Lsn(10)).unwrap(), begin(9));
        // Appends continue in sequence.
        assert_eq!(log.append(begin(99)), Lsn(11));
        // Idempotent / below-base truncation is a no-op.
        assert_eq!(log.truncate_until(Lsn(3)), 0);
        assert_eq!(log.truncate_until(Lsn(5)), 0);
    }

    #[test]
    fn read_range_after_truncation_clamps_to_base() {
        let log = LogManager::new();
        for i in 0..10 {
            log.append(begin(i));
        }
        log.truncate_until(Lsn(7));
        let batch = log.read_range(Lsn(1), 100);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].0, Lsn(7));
        let mut cur = log.tail(Lsn(7));
        assert_eq!(cur.next_batch(&log, 2).len(), 2);
        assert_eq!(cur.next_lsn(), Lsn(9));
    }

    #[test]
    fn truncate_everything_then_keep_appending() {
        let log = LogManager::new();
        for i in 0..5 {
            log.append(begin(i));
        }
        assert_eq!(log.truncate_until(Lsn(6)), 5);
        assert!(log.is_empty());
        assert_eq!(log.last_lsn(), Lsn(5));
        assert_eq!(log.append(begin(7)), Lsn(6));
        assert_eq!(*log.read(Lsn(6)).unwrap(), begin(7));
    }

    #[test]
    fn with_records_preloads() {
        let log = LogManager::with_records(vec![begin(1), begin(2)]);
        assert_eq!(log.last_lsn(), Lsn(2));
        assert_eq!(*log.read(Lsn(2)).unwrap(), begin(2));
    }
}
