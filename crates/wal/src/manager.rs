//! The log manager.
//!
//! [`LogManager`] owns the sequential log: it assigns LSNs, serves
//! random and tail reads, and (optionally) tees every record into a
//! file backend for restart recovery. The log is the *only* channel
//! through which the transformation framework observes user activity
//! (the paper's headline property: "Only the log is used for change
//! propagation").
//!
//! LSNs are 1-based: the record at LSN *n* is the *n*-th record ever
//! appended. [`Lsn::ZERO`] therefore means "before any record".
//!
//! ## The append/flush pipeline (DESIGN.md §11)
//!
//! The manager runs in one of two disciplines ([`WalMode`]):
//!
//! * **Serial** — the reference path: one mutex covers LSN
//!   assignment, record encoding, the backend tee, and publication.
//!   Byte order in the backend trivially equals LSN order, and every
//!   [`flush`](LogManager::flush) maps to exactly one backend flush.
//!   The deterministic crash simulator runs this mode.
//! * **Group** — the scalable path. An append *reserves* its LSN with
//!   one atomic increment, encodes the record outside any lock, fills
//!   its pre-allocated slot, and *publishes* by advancing the
//!   gapless-prefix watermark under a short ordering lock. Backend
//!   bytes are *staged* in the slot and drained to the backend
//!   strictly in LSN order by whichever thread next needs durability
//!   — so byte order still equals LSN order, the invariant the crash
//!   simulator's torn-write model depends on. Durability is a
//!   watermark: committers call
//!   [`wait_durable`](LogManager::wait_durable) and a leader performs
//!   one drain + flush on behalf of every waiter at or below the
//!   published LSN (group commit).
//!
//! Retained records live in fixed-size chunks of once-written slots.
//! Readers ([`read`](LogManager::read),
//! [`read_range`](LogManager::read_range), [`TailCursor`]) consult
//! the atomic published watermark and then touch only per-slot locks
//! that no appender holds any more — tail reads never contend with
//! the append path. [`last_lsn`](LogManager::last_lsn),
//! [`backlog`](LogManager::backlog), [`len`](LogManager::len) and
//! [`is_empty`](LogManager::is_empty) are plain atomic loads (the
//! propagator polls them every iteration). Truncation moves a logical
//! base atomically and reclaims memory a whole chunk at a time.

use crate::codec;
use crate::file::{Backend, FileBackend};
use crate::record::LogRecord;
use bytes::Bytes;
use morph_common::{DbError, DbResult, Lsn};
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Append/flush discipline (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WalMode {
    /// One mutex over assign + encode + tee + publish; flush per call.
    /// The exact reference path the crash simulator pins.
    Serial,
    /// Lock-split append with staged backend bytes and group-commit
    /// durability via [`LogManager::wait_durable`].
    Group,
}

impl WalMode {
    /// Resolve the mode from `MORPH_WAL_MODE` (`"serial"` /
    /// `"group"`), falling back to `default`. Lets CI force group
    /// commit through code paths that default to the serial pin.
    pub fn from_env(default: WalMode) -> WalMode {
        match std::env::var("MORPH_WAL_MODE").ok().as_deref() {
            Some("group") => WalMode::Group,
            Some("serial") => WalMode::Serial,
            _ => default,
        }
    }
}

/// Group-commit tuning: how long a flush leader holds the door open
/// for more committers before paying the fsync.
#[derive(Clone, Copy, Debug)]
pub struct GroupCommitConfig {
    /// Stop waiting once this many committers (leader included) are
    /// aboard. `<= 1` disables the wait window.
    pub max_batch: usize,
    /// Longest the leader delays its flush waiting for stragglers.
    /// [`Duration::ZERO`] (the default) skips the window entirely:
    /// batching then comes only from committers piling up behind an
    /// in-flight flush, which adds no latency and keeps
    /// single-threaded runs (the simulator) deterministic.
    pub max_delay: Duration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 64,
            max_delay: Duration::ZERO,
        }
    }
}

/// Records per chunk. Power of two; chunk boundaries are fixed
/// relative to LSN 1, so chunk lookup is pure index arithmetic.
const CHUNK_RECORDS: u64 = 256;

/// One record's cell: written once by its appender before the publish
/// watermark passes it, immutable afterwards except for the staged
/// bytes, which the drain step takes (in LSN order, under the backend
/// lock). The per-slot mutex is never contended on the hot path: the
/// appender is done with it before readers may look, and the drainer
/// holds it for one `take`.
#[derive(Default)]
struct Slot {
    rec: Option<Arc<LogRecord>>,
    /// Encoded bytes awaiting the backend drain (group mode with a
    /// backend only).
    staged: Option<Bytes>,
}

struct Chunk {
    /// LSN of `slots[0]`.
    first: u64,
    slots: Vec<Mutex<Slot>>,
}

impl Chunk {
    fn new(first: u64) -> Chunk {
        Chunk {
            first,
            slots: (0..CHUNK_RECORDS)
                .map(|_| Mutex::new(Slot::default()))
                .collect(),
        }
    }

    fn slot(&self, lsn: u64) -> &Mutex<Slot> {
        &self.slots[(lsn - self.first) as usize]
    }

    /// Last LSN this chunk can hold.
    fn last(&self) -> u64 {
        self.first + CHUNK_RECORDS - 1
    }
}

/// Contiguous run of chunks; the front may cover already-truncated
/// LSNs (truncation is logical first, chunk reclamation whole-chunk).
#[derive(Default)]
struct ChunkList {
    chunks: VecDeque<Arc<Chunk>>,
}

impl ChunkList {
    fn chunk_for(&self, lsn: u64) -> Option<Arc<Chunk>> {
        let front = self.chunks.front()?;
        if lsn < front.first {
            return None;
        }
        self.chunks
            .get(((lsn - front.first) / CHUNK_RECORDS) as usize)
            .cloned()
    }

    /// First LSN of the chunk that would hold `lsn` (boundaries fixed
    /// relative to LSN 1).
    fn aligned_first(lsn: u64) -> u64 {
        ((lsn - 1) / CHUNK_RECORDS) * CHUNK_RECORDS + 1
    }
}

struct BackendState {
    sink: Box<dyn Backend + Send>,
    /// Highest LSN whose bytes the sink has received. In serial mode
    /// the tee happens at append, so this tracks the published LSN;
    /// in group mode it is the drain cursor.
    drained: u64,
}

#[derive(Default)]
struct GroupState {
    /// A leader is currently draining + flushing.
    leader: bool,
    /// Committers parked behind the leader.
    waiters: usize,
}

/// Append-only, totally ordered log with tail readers.
pub struct LogManager {
    mode: WalMode,
    group_cfg: GroupCommitConfig,
    store: RwLock<ChunkList>,
    /// Highest LSN handed out to an appender (group-mode reservation;
    /// mirrors `published` in serial mode).
    reserved: AtomicU64,
    /// Highest readable LSN: every slot at or below it is filled and
    /// immutable. Advanced only under `order`, gaplessly.
    published: AtomicU64,
    /// Records at or below this LSN are logically truncated away.
    base: AtomicU64,
    /// Highest LSN a successful backend flush covers — the durability
    /// watermark group commit satisfies waiters against.
    durable: AtomicU64,
    /// Watermark-ordering lock. Group mode holds it only to advance
    /// `published` over consecutively filled slots; serial mode holds
    /// it across the whole append (assign + encode + tee + publish),
    /// reproducing the original single-mutex path exactly.
    order: Mutex<()>,
    /// Serializes truncation (base advance + whole-chunk reclaim).
    trunc: Mutex<()>,
    backend: Option<Mutex<BackendState>>,
    group: Mutex<GroupState>,
    group_cv: Condvar,
    /// Backend flushes attempted — the "fsync count" the group-commit
    /// benchmarks compare against the commit count.
    flushes: AtomicU64,
}

impl Default for LogManager {
    fn default() -> Self {
        Self::new()
    }
}

impl LogManager {
    fn build(
        records: Vec<LogRecord>,
        backend: Option<Box<dyn Backend + Send>>,
        mode: WalMode,
        group_cfg: GroupCommitConfig,
    ) -> LogManager {
        let mut store = ChunkList::default();
        let n = records.len() as u64;
        for (i, rec) in records.into_iter().enumerate() {
            let lsn = i as u64 + 1;
            let chunk = match store.chunks.back() {
                Some(c) if lsn <= c.last() => Arc::clone(c),
                _ => {
                    let c = Arc::new(Chunk::new(ChunkList::aligned_first(lsn)));
                    store.chunks.push_back(Arc::clone(&c));
                    c
                }
            };
            chunk.slot(lsn).lock().rec = Some(Arc::new(rec));
        }
        LogManager {
            mode,
            group_cfg,
            store: RwLock::new(store),
            reserved: AtomicU64::new(n),
            published: AtomicU64::new(n),
            base: AtomicU64::new(0),
            durable: AtomicU64::new(0),
            order: Mutex::new(()),
            trunc: Mutex::new(()),
            backend: backend.map(|sink| Mutex::new(BackendState { sink, drained: n })),
            group: Mutex::new(GroupState::default()),
            group_cv: Condvar::new(),
            flushes: AtomicU64::new(0),
        }
    }

    /// A purely in-memory log (mode from `MORPH_WAL_MODE`, default
    /// serial).
    pub fn new() -> LogManager {
        Self::build(
            Vec::new(),
            None,
            WalMode::from_env(WalMode::Serial),
            GroupCommitConfig::default(),
        )
    }

    /// A purely in-memory log in an explicit mode.
    pub fn new_in(mode: WalMode) -> LogManager {
        Self::build(Vec::new(), None, mode, GroupCommitConfig::default())
    }

    /// A log that also persists every record to `path` (length-prefixed
    /// binary, see [`crate::codec`]). Existing contents are preserved;
    /// use [`FileBackend::read_all`] before constructing the manager to
    /// recover them.
    pub fn with_file(path: &std::path::Path) -> DbResult<LogManager> {
        Ok(Self::with_backend(Box::new(FileBackend::open(path)?)))
    }

    /// A log that tees every record into an arbitrary [`Backend`] —
    /// the injection point for the crash-simulation harness's
    /// fault-capable in-memory backend. Mode from `MORPH_WAL_MODE`,
    /// default serial (the simulator's determinism pin).
    pub fn with_backend(backend: Box<dyn Backend + Send>) -> LogManager {
        Self::with_backend_mode(
            backend,
            WalMode::from_env(WalMode::Serial),
            GroupCommitConfig::default(),
        )
    }

    /// A backend-teeing log in an explicit mode with explicit
    /// group-commit tuning.
    pub fn with_backend_mode(
        backend: Box<dyn Backend + Send>,
        mode: WalMode,
        group_cfg: GroupCommitConfig,
    ) -> LogManager {
        Self::build(Vec::new(), Some(backend), mode, group_cfg)
    }

    /// Construct a manager pre-loaded with recovered records (restart
    /// recovery replays these before the database goes live).
    pub fn with_records(records: Vec<LogRecord>) -> LogManager {
        Self::build(
            records,
            None,
            WalMode::from_env(WalMode::Serial),
            GroupCommitConfig::default(),
        )
    }

    /// The append/flush discipline this manager runs.
    pub fn mode(&self) -> WalMode {
        self.mode
    }

    // --- append ---------------------------------------------------------

    /// Append one record, returning its LSN.
    pub fn append(&self, rec: LogRecord) -> Lsn {
        match self.mode {
            WalMode::Serial => self.append_serial(rec),
            WalMode::Group => self.append_group(rec),
        }
    }

    /// The reference path: one critical section covers LSN assignment,
    /// encoding, the backend tee, and publication, so the backend's
    /// byte order trivially matches LSN order.
    fn append_serial(&self, rec: LogRecord) -> Lsn {
        let _order = self.order.lock();
        let lsn = self.published.load(Ordering::Relaxed) + 1; // morph-lint: allow(atomics, read under the order mutex that serializes every published-store; the lock is the fence)
        if let Some(backend) = &self.backend {
            let mut be = backend.lock();
            be.sink.append(&codec::encode(&rec));
            be.drained = lsn;
        }
        let chunk = self.ensure_chunk(lsn);
        chunk.slot(lsn).lock().rec = Some(Arc::new(rec));
        self.reserved.store(lsn, Ordering::Relaxed);
        self.published.store(lsn, Ordering::Release);
        Lsn(lsn)
    }

    /// The lock-split path: reserve, encode outside any lock, fill the
    /// slot, then advance the publish watermark over the gapless
    /// prefix of filled slots.
    fn append_group(&self, rec: LogRecord) -> Lsn {
        let lsn = self.reserved.fetch_add(1, Ordering::Relaxed) + 1;
        let staged = self.backend.as_ref().map(|_| codec::encode(&rec));
        let chunk = self.ensure_chunk(lsn);
        {
            let mut slot = chunk.slot(lsn).lock();
            slot.rec = Some(Arc::new(rec));
            slot.staged = staged;
        }
        self.publish_filled();
        Lsn(lsn)
    }

    /// Advance `published` across every consecutively filled slot.
    /// Every appender calls this after filling its slot, so the last
    /// filler of any gapless prefix publishes the whole prefix: if the
    /// slot after the watermark is still empty, its (in-flight)
    /// appender is guaranteed to run this again after filling it.
    fn publish_filled(&self) {
        let _order = self.order.lock();
        let mut p = self.published.load(Ordering::Relaxed); // morph-lint: allow(atomics, read under the order mutex that serializes every published-store; the lock is the fence)
        let reserved = self.reserved.load(Ordering::Relaxed);
        let mut chunk: Option<Arc<Chunk>> = None;
        while p < reserved {
            let next = p + 1;
            let cur = match &chunk {
                Some(c) if next <= c.last() => c,
                _ => match self.store.read().chunk_for(next) {
                    Some(c) => &*chunk.insert(c),
                    None => break,
                },
            };
            if cur.slot(next).lock().rec.is_none() {
                break;
            }
            p = next;
        }
        self.published.store(p, Ordering::Release);
    }

    /// Return the chunk holding `lsn`, allocating it (and any
    /// predecessors) if needed. Allocation takes the store's write
    /// lock once per [`CHUNK_RECORDS`] appends; the common case is a
    /// read-locked index lookup.
    fn ensure_chunk(&self, lsn: u64) -> Arc<Chunk> {
        if let Some(c) = self.store.read().chunk_for(lsn) {
            return c;
        }
        let mut store = self.store.write();
        loop {
            if let Some(c) = store.chunk_for(lsn) {
                return c;
            }
            match store.chunks.back() {
                Some(last) => {
                    let first = last.last() + 1;
                    store.chunks.push_back(Arc::new(Chunk::new(first)));
                }
                None => {
                    store
                        .chunks
                        .push_back(Arc::new(Chunk::new(ChunkList::aligned_first(lsn))));
                }
            }
        }
    }

    // --- durability -----------------------------------------------------

    /// Hand every staged byte up to `upto` to the backend, strictly in
    /// LSN order. Caller holds the backend lock; the per-slot locks it
    /// takes are uncontended (appenders are done with published slots).
    ///
    /// A reclaimed chunk or a published slot with its staged bytes
    /// already gone means the truncation / staging invariants were
    /// violated; the drain surfaces that as [`DbError::Internal`]
    /// (leaving `drained` at the last good LSN) rather than panicking
    /// under the backend lock, which would poison every later commit.
    fn drain_staged(&self, be: &mut BackendState, upto: u64) -> DbResult<()> {
        let mut chunk: Option<Arc<Chunk>> = None;
        while be.drained < upto {
            let next = be.drained + 1;
            let cur = match &chunk {
                Some(c) if next <= c.last() => c,
                _ => {
                    let c = self.store.read().chunk_for(next).ok_or_else(|| {
                        DbError::Internal(format!(
                            "WAL drain: undrained LSN {next} was reclaimed from memory"
                        ))
                    })?;
                    &*chunk.insert(c)
                }
            };
            let bytes = cur.slot(next).lock().staged.take().ok_or_else(|| {
                DbError::Internal(format!(
                    "WAL drain: published LSN {next} lost its staged bytes before the drain"
                ))
            })?;
            be.sink.append(&bytes);
            be.drained = next;
        }
        Ok(())
    }

    fn advance_durable(&self, upto: u64) {
        self.durable.fetch_max(upto, Ordering::AcqRel);
    }

    /// Test-only corruption seam: steal a published slot's staged
    /// bytes so the drain's invariant check has something to catch.
    #[cfg(test)]
    fn steal_staged_for_test(&self, lsn: Lsn) -> Option<Bytes> {
        let chunk = self.store.read().chunk_for(lsn.0)?;
        let stolen = chunk.slot(lsn.0).lock().staged.take();
        stolen
    }

    /// Block until the record at `lsn` is durable (its bytes and all
    /// earlier bytes flushed to the backend). The group-commit entry
    /// point: one leader drains staged bytes and performs one backend
    /// flush that satisfies every waiter at or below the published
    /// watermark; later committers that arrive mid-flush park and are
    /// satisfied by the next leader in one more flush. Without a
    /// backend (pure in-memory log) every record is trivially
    /// "durable". Commit, abort, and recovery flushes all funnel
    /// through here.
    pub fn wait_durable(&self, lsn: Lsn) -> DbResult<()> {
        let Some(backend) = &self.backend else {
            return Ok(());
        };
        // Dirty-flag fast path: a previous flush already covers this
        // LSN — no backend lock, no fsync.
        if lsn.0 <= self.durable.load(Ordering::Acquire) {
            return Ok(());
        }
        match self.mode {
            WalMode::Serial => {
                let mut be = backend.lock();
                if lsn.0 <= self.durable.load(Ordering::Acquire) {
                    return Ok(());
                }
                self.flushes.fetch_add(1, Ordering::Relaxed);
                be.sink.flush()?;
                self.advance_durable(be.drained);
                Ok(())
            }
            WalMode::Group => self.wait_durable_group(backend, lsn),
        }
    }

    fn wait_durable_group(&self, backend: &Mutex<BackendState>, lsn: Lsn) -> DbResult<()> {
        loop {
            if lsn.0 <= self.durable.load(Ordering::Acquire) {
                return Ok(());
            }
            let mut g = self.group.lock();
            if lsn.0 <= self.durable.load(Ordering::Acquire) {
                return Ok(());
            }
            if g.leader {
                // Follower: park until the in-flight flush completes,
                // then re-check the watermark (the leader's flush
                // covers us unless it failed, in which case we retry
                // as leader and surface the backend's error ourselves).
                g.waiters += 1;
                if g.waiters + 1 >= self.group_cfg.max_batch {
                    // The batch is full — wake a leader dawdling in
                    // its delay window.
                    self.group_cv.notify_all();
                }
                self.group_cv.wait(&mut g);
                g.waiters -= 1;
                continue;
            }
            g.leader = true;
            if self.group_cfg.max_delay > Duration::ZERO && self.group_cfg.max_batch > 1 {
                // Hold the door: absorb committers that arrive within
                // the window so one fsync covers them all.
                // morph-lint: allow(nondet, group-commit delay window; sim configs set max_delay to zero so replay never waits on wall time)
                let deadline = Instant::now() + self.group_cfg.max_delay;
                while g.waiters + 1 < self.group_cfg.max_batch {
                    if self.group_cv.wait_until(&mut g, deadline).timed_out() {
                        break;
                    }
                }
            }
            drop(g);

            // Everything published when the leader flushes becomes
            // durable — including our own lsn, which was published
            // before we were called.
            let target = self.published.load(Ordering::Acquire);
            let result = {
                let mut be = backend.lock();
                let drained = self.drain_staged(&mut be, target);
                self.flushes.fetch_add(1, Ordering::Relaxed);
                drained.and_then(|()| be.sink.flush())
            };

            let mut g = self.group.lock();
            g.leader = false;
            if result.is_ok() {
                self.advance_durable(target);
            }
            self.group_cv.notify_all();
            drop(g);
            result?;
            if lsn.0 <= target {
                return Ok(());
            }
            // Our record was not yet published when we flushed (an
            // earlier appender was still filling its slot, holding the
            // gapless prefix back). Go around: the prefix will pass us
            // once that appender publishes.
        }
    }

    /// Force everything appended so far to durable storage. No-op
    /// without a backend, and — the fast path — when nothing was
    /// appended since the last successful flush (no backend lock, no
    /// fsync: read-only callers get out for two atomic loads).
    pub fn flush(&self) -> DbResult<()> {
        self.wait_durable(Lsn(self.published.load(Ordering::Acquire)))
    }

    /// The durability watermark: every record at or below it survived
    /// a successful backend flush ([`Lsn::ZERO`] before the first).
    pub fn durable_lsn(&self) -> Lsn {
        Lsn(self.durable.load(Ordering::Acquire))
    }

    /// The LSN below which a crash can lose nothing: the flush
    /// watermark when a backend is attached, the published tail when
    /// the log is pure in-memory (every record of an in-memory log is
    /// trivially "durable" — see [`LogManager::wait_durable`]). This
    /// is the durability leg of the MVCC garbage-collection watermark:
    /// versions at or below it can only be needed by live snapshots or
    /// active transactions, never by restart recovery.
    pub fn durability_watermark(&self) -> Lsn {
        if self.backend.is_some() {
            self.durable_lsn()
        } else {
            self.last_lsn()
        }
    }

    /// Backend flushes attempted so far. Group-commit benchmarks
    /// compare this against the commit count to show fsyncs ≪ commits.
    pub fn flush_count(&self) -> u64 {
        self.flushes.load(Ordering::Relaxed)
    }

    // --- reads ----------------------------------------------------------

    /// LSN of the most recently appended record ([`Lsn::ZERO`] if the
    /// log is empty). One atomic load — the propagator polls this
    /// every iteration.
    pub fn last_lsn(&self) -> Lsn {
        Lsn(self.published.load(Ordering::Acquire))
    }

    /// Number of records currently retained (appended minus
    /// truncated). Atomic loads only.
    pub fn len(&self) -> usize {
        let published = self.published.load(Ordering::Acquire);
        let base = self.base.load(Ordering::Acquire);
        published.saturating_sub(base) as usize
    }

    /// LSN below which records have been truncated away: the first
    /// readable record is `truncated_until() + 1`… unless nothing has
    /// been truncated, in which case this is [`Lsn::ZERO`].
    pub fn truncated_until(&self) -> Lsn {
        Lsn(self.base.load(Ordering::Acquire))
    }

    /// Drop records with LSN *strictly below* `lsn` from memory,
    /// returning how many were discarded. The base moves atomically;
    /// chunk memory is reclaimed a whole chunk at a time (a partially
    /// truncated chunk is freed once its last record is truncated
    /// too). The file backend (if any) is untouched — it remains the
    /// complete archive that restart recovery replays; in-memory
    /// truncation is the memory-bound knob for long-running
    /// deployments (a propagation cursor must never be truncated
    /// past, which [`morph-engine`]'s wrapper enforces).
    ///
    /// [`morph-engine`]: ../morph_engine/index.html
    pub fn truncate_until(&self, lsn: Lsn) -> DbResult<usize> {
        let _trunc = self.trunc.lock();
        let base = self.base.load(Ordering::Acquire);
        if lsn.0 <= base + 1 {
            return Ok(0);
        }
        let published = self.published.load(Ordering::Acquire);
        let new_base = (lsn.0 - 1).min(published);
        if new_base <= base {
            return Ok(0);
        }
        // Whole chunks about to be reclaimed may still hold staged
        // bytes the backend has not seen; hand them over first so the
        // archive stays complete and in LSN order. A failed drain
        // aborts the truncation with nothing reclaimed: dropping the
        // chunks anyway would tear a hole in the durable archive.
        if self.mode == WalMode::Group {
            if let Some(backend) = &self.backend {
                let chunk_complete = (new_base / CHUNK_RECORDS) * CHUNK_RECORDS;
                let mut be = backend.lock();
                let upto = chunk_complete.min(published).max(be.drained);
                self.drain_staged(&mut be, upto)?;
            }
        }
        self.base.store(new_base, Ordering::Release);
        let mut store = self.store.write();
        while store
            .chunks
            .front()
            .is_some_and(|front| front.last() <= new_base)
        {
            store.chunks.pop_front();
        }
        Ok((new_base - base) as usize)
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fetch a single record by LSN (`None` if out of range or
    /// truncated away). Touches only the published watermark, the
    /// chunk index, and the record's own slot — never the append path.
    pub fn read(&self, lsn: Lsn) -> Option<Arc<LogRecord>> {
        if lsn.is_zero()
            || lsn.0 <= self.base.load(Ordering::Acquire)
            || lsn.0 > self.published.load(Ordering::Acquire)
        {
            return None;
        }
        let chunk = self.store.read().chunk_for(lsn.0)?;
        let rec = chunk.slot(lsn.0).lock().rec.clone();
        rec
    }

    /// Read up to `max` records starting at `from` (inclusive). Returns
    /// records paired with their LSNs; an empty result means the caller
    /// has caught up with the tail.
    pub fn read_range(&self, from: Lsn, max: usize) -> Vec<(Lsn, Arc<LogRecord>)> {
        // Reads below the truncation point start at the first retained
        // record (callers that must never miss records — propagation
        // cursors — are protected by the truncation guard upstream).
        let start = from.0.max(1).max(self.base.load(Ordering::Acquire) + 1);
        let published = self.published.load(Ordering::Acquire);
        if start > published || max == 0 {
            return Vec::new();
        }
        let end = published.min(start.saturating_add(max as u64 - 1));
        let mut out = Vec::with_capacity((end - start + 1) as usize);
        let mut lsn = start;
        'scan: while lsn <= end {
            let Some(chunk) = self.store.read().chunk_for(lsn) else {
                break; // lost a race with truncation: return what we have
            };
            let chunk_end = end.min(chunk.last());
            while lsn <= chunk_end {
                match chunk.slot(lsn).lock().rec.clone() {
                    Some(rec) => out.push((Lsn(lsn), rec)),
                    None => break 'scan,
                }
                lsn += 1;
            }
        }
        out
    }

    /// How many records exist at or after `from` — the propagation
    /// backlog used by the §3.3 convergence analysis. Atomic loads
    /// only.
    pub fn backlog(&self, from: Lsn) -> usize {
        let last = self.last_lsn();
        if from.is_zero() {
            return last.0 as usize;
        }
        (last.0 + 1).saturating_sub(from.0) as usize
    }

    /// A cursor positioned at `from` for incremental tail reading.
    pub fn tail(&self, from: Lsn) -> TailCursor {
        TailCursor {
            next: if from.is_zero() { Lsn(1) } else { from },
        }
    }
}

/// Incremental reader over the log tail. The log propagator holds one
/// of these across propagation iterations; [`TailCursor::next_lsn`]
/// after a drained batch is exactly the `start_lsn` to store in the
/// next fuzzy mark.
#[derive(Clone, Copy, Debug)]
pub struct TailCursor {
    next: Lsn,
}

impl TailCursor {
    /// Read the next batch of at most `max` records.
    pub fn next_batch(&mut self, log: &LogManager, max: usize) -> Vec<(Lsn, Arc<LogRecord>)> {
        let batch = log.read_range(self.next, max);
        if let Some((last, _)) = batch.last() {
            self.next = last.next();
        }
        batch
    }

    /// The LSN the next batch will start from.
    pub fn next_lsn(&self) -> Lsn {
        self.next
    }

    /// Remaining records behind the tail.
    pub fn backlog(&self, log: &LogManager) -> usize {
        log.backlog(self.next)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultBackend, FaultConfig};
    use crate::record::LogRecord;
    use morph_common::TxnId;

    fn begin(n: u64) -> LogRecord {
        LogRecord::Begin { txn: TxnId(n) }
    }

    #[test]
    fn lsns_are_sequential_from_one() {
        let log = LogManager::new();
        assert!(log.is_empty());
        assert_eq!(log.append(begin(1)), Lsn(1));
        assert_eq!(log.append(begin(2)), Lsn(2));
        assert_eq!(log.last_lsn(), Lsn(2));
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn read_by_lsn() {
        let log = LogManager::new();
        log.append(begin(7));
        assert_eq!(*log.read(Lsn(1)).unwrap(), begin(7));
        assert!(log.read(Lsn(2)).is_none());
        assert!(log.read(Lsn::ZERO).is_none());
    }

    #[test]
    fn read_range_clamps() {
        let log = LogManager::new();
        for i in 0..10 {
            log.append(begin(i));
        }
        let batch = log.read_range(Lsn(8), 100);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].0, Lsn(8));
        assert_eq!(batch[2].0, Lsn(10));
        assert!(log.read_range(Lsn(11), 5).is_empty());
        // Lsn::ZERO means "from the start".
        assert_eq!(log.read_range(Lsn::ZERO, 2).len(), 2);
    }

    #[test]
    fn backlog_counts_inclusive() {
        let log = LogManager::new();
        for i in 0..5 {
            log.append(begin(i));
        }
        assert_eq!(log.backlog(Lsn(1)), 5);
        assert_eq!(log.backlog(Lsn(5)), 1);
        assert_eq!(log.backlog(Lsn(6)), 0);
        assert_eq!(log.backlog(Lsn::ZERO), 5);
    }

    #[test]
    fn tail_cursor_drains_incrementally() {
        let log = LogManager::new();
        for i in 0..7 {
            log.append(begin(i));
        }
        let mut cur = log.tail(Lsn(1));
        let b1 = cur.next_batch(&log, 3);
        assert_eq!(b1.len(), 3);
        assert_eq!(cur.next_lsn(), Lsn(4));
        assert_eq!(cur.backlog(&log), 4);
        let b2 = cur.next_batch(&log, 10);
        assert_eq!(b2.len(), 4);
        assert!(cur.next_batch(&log, 10).is_empty());
        // New appends become visible to the same cursor.
        log.append(begin(99));
        let b3 = cur.next_batch(&log, 10);
        assert_eq!(b3.len(), 1);
        assert_eq!(*b3[0].1, begin(99));
    }

    #[test]
    fn concurrent_appends_get_unique_lsns() {
        for mode in [WalMode::Serial, WalMode::Group] {
            use std::collections::HashSet;
            let log = std::sync::Arc::new(LogManager::new_in(mode));
            let mut handles = Vec::new();
            for t in 0..8u64 {
                let log = std::sync::Arc::clone(&log);
                handles.push(std::thread::spawn(move || {
                    let mut seen = Vec::new();
                    for _ in 0..500 {
                        seen.push(log.append(begin(t)));
                    }
                    seen
                }));
            }
            let mut all = HashSet::new();
            for h in handles {
                for lsn in h.join().unwrap() {
                    assert!(all.insert(lsn), "duplicate LSN {lsn:?} ({mode:?})");
                }
            }
            assert_eq!(all.len(), 4000);
            assert_eq!(log.last_lsn(), Lsn(4000));
            // The publish watermark left no gaps behind.
            assert_eq!(log.read_range(Lsn(1), 5000).len(), 4000);
        }
    }

    #[test]
    fn truncation_discards_prefix_only() {
        let log = LogManager::new();
        for i in 0..10 {
            log.append(begin(i));
        }
        assert_eq!(log.truncate_until(Lsn(5)).unwrap(), 4);
        assert_eq!(log.truncated_until(), Lsn(4));
        assert_eq!(log.len(), 6);
        assert_eq!(log.last_lsn(), Lsn(10));
        // Truncated records are gone; retained ones keep their LSNs.
        assert!(log.read(Lsn(4)).is_none());
        assert_eq!(*log.read(Lsn(5)).unwrap(), begin(4));
        assert_eq!(*log.read(Lsn(10)).unwrap(), begin(9));
        // Appends continue in sequence.
        assert_eq!(log.append(begin(99)), Lsn(11));
        // Idempotent / below-base truncation is a no-op.
        assert_eq!(log.truncate_until(Lsn(3)).unwrap(), 0);
        assert_eq!(log.truncate_until(Lsn(5)).unwrap(), 0);
    }

    #[test]
    fn read_range_after_truncation_clamps_to_base() {
        let log = LogManager::new();
        for i in 0..10 {
            log.append(begin(i));
        }
        log.truncate_until(Lsn(7)).unwrap();
        let batch = log.read_range(Lsn(1), 100);
        assert_eq!(batch.len(), 4);
        assert_eq!(batch[0].0, Lsn(7));
        let mut cur = log.tail(Lsn(7));
        assert_eq!(cur.next_batch(&log, 2).len(), 2);
        assert_eq!(cur.next_lsn(), Lsn(9));
    }

    #[test]
    fn truncate_everything_then_keep_appending() {
        let log = LogManager::new();
        for i in 0..5 {
            log.append(begin(i));
        }
        assert_eq!(log.truncate_until(Lsn(6)).unwrap(), 5);
        assert!(log.is_empty());
        assert_eq!(log.last_lsn(), Lsn(5));
        assert_eq!(log.append(begin(7)), Lsn(6));
        assert_eq!(*log.read(Lsn(6)).unwrap(), begin(7));
    }

    #[test]
    fn with_records_preloads() {
        let log = LogManager::with_records(vec![begin(1), begin(2)]);
        assert_eq!(log.last_lsn(), Lsn(2));
        assert_eq!(*log.read(Lsn(2)).unwrap(), begin(2));
    }

    #[test]
    fn truncation_across_chunk_boundaries() {
        for mode in [WalMode::Serial, WalMode::Group] {
            let log = LogManager::new_in(mode);
            let n = CHUNK_RECORDS * 3 + 17;
            for i in 0..n {
                log.append(begin(i));
            }
            // Partial-chunk truncation: logical base moves, reads obey it.
            let cut = CHUNK_RECORDS + 9;
            assert_eq!(log.truncate_until(Lsn(cut)).unwrap(), (cut - 1) as usize);
            assert!(log.read(Lsn(cut - 1)).is_none());
            assert_eq!(*log.read(Lsn(cut)).unwrap(), begin(cut - 1));
            assert_eq!(log.len(), (n - cut + 1) as usize);
            // Whole-log truncation then continued appends.
            assert_eq!(
                log.truncate_until(Lsn(n + 1)).unwrap(),
                (n - cut + 1) as usize
            );
            assert!(log.is_empty());
            assert_eq!(log.append(begin(1000)), Lsn(n + 1));
            assert_eq!(*log.read(Lsn(n + 1)).unwrap(), begin(1000));
            assert_eq!(log.read_range(Lsn(1), 10)[0].0, Lsn(n + 1));
        }
    }

    #[test]
    fn group_mode_stages_bytes_until_flush() {
        let (backend, handle) = FaultBackend::new(FaultConfig::crash_only(3));
        let log = LogManager::with_backend_mode(
            Box::new(backend),
            WalMode::Group,
            GroupCommitConfig::default(),
        );
        let mut last = Lsn::ZERO;
        for i in 0..5 {
            last = log.append(begin(i));
        }
        // Nothing drained yet: appends are staged in the slots.
        assert_eq!(handle.buffered_len(), 0);
        assert_eq!(log.durable_lsn(), Lsn::ZERO);
        log.wait_durable(last).unwrap();
        assert_eq!(log.durable_lsn(), last);
        assert_eq!(log.flush_count(), 1);
        // One more durable wait is a no-op (dirty fast path).
        log.wait_durable(last).unwrap();
        log.flush().unwrap();
        assert_eq!(log.flush_count(), 1);
        let recs = handle.durable_records().unwrap();
        assert_eq!(recs.len(), 5);
        assert_eq!(recs[4], begin(4));
    }

    #[test]
    fn serial_flush_fast_path_skips_fsync() {
        let (backend, handle) = FaultBackend::new(FaultConfig::crash_only(3));
        let log = LogManager::with_backend(Box::new(backend));
        assert_eq!(log.mode(), WalMode::Serial);
        log.append(begin(1));
        log.flush().unwrap();
        assert_eq!(log.flush_count(), 1);
        // No bytes since the last flush: no backend flush happens.
        log.flush().unwrap();
        log.flush().unwrap();
        assert_eq!(log.flush_count(), 1);
        assert_eq!(handle.counts().1, 1);
        log.append(begin(2));
        log.flush().unwrap();
        assert_eq!(log.flush_count(), 2);
    }

    #[test]
    fn group_commit_single_flush_covers_many_waiters() {
        // 8 committers each append then wait_durable; with the flush
        // serialized behind a leader, the backend flush count must be
        // well below the commit count is not guaranteed determinis-
        // tically, but every waiter must come back durable.
        let (backend, handle) = FaultBackend::new(FaultConfig::crash_only(7));
        let log = Arc::new(LogManager::with_backend_mode(
            Box::new(backend),
            WalMode::Group,
            GroupCommitConfig::default(),
        ));
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                let mut acked = Lsn::ZERO;
                for i in 0..50 {
                    let lsn = log.append(begin(t * 1000 + i));
                    log.wait_durable(lsn).unwrap();
                    assert!(log.durable_lsn() >= lsn);
                    acked = lsn;
                }
                acked
            }));
        }
        let mut max_acked = Lsn::ZERO;
        for h in handles {
            max_acked = max_acked.max(h.join().unwrap());
        }
        assert!(log.durable_lsn() >= max_acked);
        let recs = handle.durable_records().unwrap();
        assert_eq!(recs.len(), 400);
    }

    #[test]
    fn wait_durable_without_backend_is_noop() {
        let log = LogManager::new_in(WalMode::Group);
        let lsn = log.append(begin(1));
        log.wait_durable(lsn).unwrap();
        log.flush().unwrap();
        assert_eq!(log.flush_count(), 0);
    }

    #[test]
    fn group_truncation_drains_reclaimed_chunks_to_backend() {
        let (backend, handle) = FaultBackend::new(FaultConfig::crash_only(5));
        let log = LogManager::with_backend_mode(
            Box::new(backend),
            WalMode::Group,
            GroupCommitConfig::default(),
        );
        let n = CHUNK_RECORDS * 2 + 3;
        for i in 0..n {
            log.append(begin(i));
        }
        // Truncate past the first two chunks without ever flushing:
        // their staged bytes must reach the backend buffer anyway.
        log.truncate_until(Lsn(n + 1)).unwrap();
        assert!(handle.buffered_len() > 0);
        log.flush().unwrap();
        let recs = handle.durable_records().unwrap();
        // Whole reclaimed chunks were drained; the partial tail chunk
        // is drained by the flush.
        assert_eq!(recs.len(), n as usize);
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(*r, begin(i as u64), "byte order == LSN order");
        }
    }

    /// Regression: a drain that finds a published slot without its
    /// staged bytes (a staging-invariant violation) must surface
    /// `DbError::Internal` to the committer instead of panicking under
    /// the backend lock — a panic there poisons the group-commit path
    /// for every later committer.
    #[test]
    fn corrupted_staged_slot_errors_instead_of_panicking() {
        let (backend, handle) = FaultBackend::new(FaultConfig::crash_only(9));
        let log = LogManager::with_backend_mode(
            Box::new(backend),
            WalMode::Group,
            GroupCommitConfig::default(),
        );
        let mut last = Lsn::ZERO;
        for i in 0..3 {
            last = log.append(begin(i));
        }
        assert!(log.steal_staged_for_test(Lsn(2)).is_some());
        let Err(err) = log.wait_durable(last) else {
            panic!("drain over a corrupted slot must fail")
        };
        assert!(
            matches!(err, morph_common::DbError::Internal(ref m) if m.contains("staged")),
            "got {err:?}"
        );
        // The drain stopped at the last good LSN: nothing at or past
        // the corrupted slot became durable, and the committer saw the
        // failure rather than a wedged log.
        assert!(log.durable_lsn() < Lsn(2));
        assert!(handle.durable_records().unwrap().len() <= 1);
    }
}
