//! Crate-wide error type.

use crate::ids::{TableId, TxnId};
use std::fmt;

/// Result alias used across all morphdb crates.
pub type DbResult<T> = Result<T, DbError>;

/// Every way a morphdb operation can fail.
///
/// The variants fall into four groups: schema/catalog errors, data
/// errors, concurrency-control outcomes (deadlock victim, doomed
/// transaction, frozen table) and transformation-specific failures.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    // --- schema / catalog ---
    /// Schema construction failed.
    InvalidSchema(String),
    /// Table name not present in the catalog.
    NoSuchTable(String),
    /// Table id not present in the catalog (dangling reference).
    NoSuchTableId(TableId),
    /// A table with that name already exists.
    TableExists(String),
    /// Column name not present in a schema.
    NoSuchColumn(String),

    // --- data ---
    /// Row arity does not match the schema.
    ArityMismatch { expected: usize, got: usize },
    /// NULL stored into a NOT NULL column.
    NullViolation(String),
    /// Value of the wrong type for its column.
    TypeMismatch { column: String, value: String },
    /// Insert with a primary key that already exists.
    DuplicateKey(String),
    /// Update/delete of a primary key that does not exist.
    KeyNotFound(String),
    /// A declared unique constraint would be violated.
    UniqueViolation { index: String, key: String },

    // --- concurrency control ---
    /// The transaction was chosen as a wait–die victim and must abort.
    Deadlock(TxnId),
    /// Operation attempted on a transaction that is not active.
    TxnNotActive(TxnId),
    /// The transaction was doomed by a non-blocking-abort
    /// synchronization (paper §3.4) and must roll back.
    TxnDoomed(TxnId),
    /// The table is frozen for new transactions (post-synchronization
    /// state of source tables; only grandfathered transactions may
    /// still touch it during their rollback/commit).
    TableFrozen(TableId),
    /// Lock wait exceeded the configured timeout.
    LockTimeout(TxnId),

    // --- transformation framework ---
    /// The transformed-table schema is missing a candidate key of a
    /// source table (§3.1 requires one from each source).
    MissingCandidateKey(String),
    /// Log propagation cannot converge: the workload produces log
    /// faster than the propagator consumes it at the configured
    /// priority (§3.3).
    CannotConverge { iterations: u32, backlog: usize },
    /// Split found functionally-dependent data that disagrees (paper
    /// Example 1: same postal code, different city); the transformation
    /// cannot complete until it is resolved.
    InconsistentSplitData { key: String, detail: String },
    /// The transformation was aborted (by request or by policy).
    TransformationAborted(String),
    /// Internal invariant violated; indicates a bug, not user error.
    Internal(String),

    // --- migration front-end / orchestrator ---
    /// Declarative migration text failed to parse. `offset` and `len`
    /// span the offending token in the input (byte offsets), so a
    /// caller can underline it.
    ParseError {
        offset: usize,
        len: usize,
        detail: String,
    },
    /// A submitted migration touches a table already claimed by a
    /// running migration job (the orchestrator serializes overlapping
    /// table sets; disjoint jobs run concurrently).
    MigrationConflict { table: String, job: u64 },
    /// Operation on a migration job id the registry does not know.
    NoSuchMigration(u64),

    // --- I/O (WAL file backend) ---
    /// Underlying file I/O failure, stringified (io::Error is not
    /// `Clone`/`PartialEq`, which this enum wants for test ergonomics).
    Io(String),
    /// The on-disk log is corrupt at the given byte offset.
    CorruptLog { offset: u64, detail: String },

    // --- simulation ---
    /// A simulated crash was injected at the named crash point. Only
    /// ever produced by the deterministic crash harness (`morph-sim`);
    /// the payload names the point so failures reproduce from traces.
    SimulatedCrash(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::InvalidSchema(m) => write!(f, "invalid schema: {m}"),
            DbError::NoSuchTable(n) => write!(f, "no such table: {n}"),
            DbError::NoSuchTableId(id) => write!(f, "no such table id: {id:?}"),
            DbError::TableExists(n) => write!(f, "table already exists: {n}"),
            DbError::NoSuchColumn(n) => write!(f, "no such column: {n}"),
            DbError::ArityMismatch { expected, got } => {
                write!(f, "row arity {got} does not match schema arity {expected}")
            }
            DbError::NullViolation(c) => write!(f, "NULL in NOT NULL column {c}"),
            DbError::TypeMismatch { column, value } => {
                write!(f, "value {value} has wrong type for column {column}")
            }
            DbError::DuplicateKey(k) => write!(f, "duplicate primary key {k}"),
            DbError::KeyNotFound(k) => write!(f, "primary key not found: {k}"),
            DbError::UniqueViolation { index, key } => {
                write!(f, "unique constraint {index} violated by key {key}")
            }
            DbError::Deadlock(t) => write!(f, "transaction {t} chosen as deadlock victim"),
            DbError::TxnNotActive(t) => write!(f, "transaction {t} is not active"),
            DbError::TxnDoomed(t) => {
                write!(f, "transaction {t} doomed by schema-change synchronization")
            }
            DbError::TableFrozen(id) => {
                write!(f, "table {id:?} is frozen for new transactions")
            }
            DbError::LockTimeout(t) => write!(f, "transaction {t} timed out waiting for a lock"),
            DbError::MissingCandidateKey(m) => {
                write!(f, "transformed table lacks a source candidate key: {m}")
            }
            DbError::CannotConverge {
                iterations,
                backlog,
            } => write!(
                f,
                "log propagation cannot converge after {iterations} iterations \
                 (backlog {backlog} records); raise priority or abort"
            ),
            DbError::InconsistentSplitData { key, detail } => {
                write!(f, "inconsistent split data at {key}: {detail}")
            }
            DbError::TransformationAborted(m) => write!(f, "transformation aborted: {m}"),
            DbError::Internal(m) => write!(f, "internal invariant violated: {m}"),
            DbError::ParseError {
                offset,
                len,
                detail,
            } => write!(
                f,
                "migration parse error at byte {offset} (span {len}): {detail}"
            ),
            DbError::MigrationConflict { table, job } => write!(
                f,
                "table {table} is already claimed by running migration job {job}"
            ),
            DbError::NoSuchMigration(id) => write!(f, "no such migration job: {id}"),
            DbError::Io(m) => write!(f, "I/O error: {m}"),
            DbError::CorruptLog { offset, detail } => {
                write!(f, "corrupt log at offset {offset}: {detail}")
            }
            DbError::SimulatedCrash(point) => {
                write!(f, "simulated crash at point {point}")
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }
}

impl DbError {
    /// Whether the error dooms the surrounding transaction (it must be
    /// rolled back rather than retried in place).
    pub fn is_fatal_to_txn(&self) -> bool {
        matches!(
            self,
            DbError::Deadlock(_) | DbError::TxnDoomed(_) | DbError::LockTimeout(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = DbError::CannotConverge {
            iterations: 9,
            backlog: 1234,
        };
        let s = e.to_string();
        assert!(s.contains('9') && s.contains("1234"));
    }

    #[test]
    fn fatality_classification() {
        assert!(DbError::Deadlock(TxnId(1)).is_fatal_to_txn());
        assert!(DbError::TxnDoomed(TxnId(1)).is_fatal_to_txn());
        assert!(DbError::LockTimeout(TxnId(1)).is_fatal_to_txn());
        assert!(!DbError::KeyNotFound("k".into()).is_fatal_to_txn());
        assert!(!DbError::TableFrozen(TableId(1)).is_fatal_to_txn());
    }

    #[test]
    fn parse_error_carries_span() {
        let e = DbError::ParseError {
            offset: 12,
            len: 5,
            detail: "expected INTO".into(),
        };
        let s = e.to_string();
        assert!(s.contains("12") && s.contains("expected INTO"));
        assert!(!e.is_fatal_to_txn());
        assert!(!DbError::MigrationConflict {
            table: "t".into(),
            job: 1
        }
        .is_fatal_to_txn());
    }

    #[test]
    fn io_conversion() {
        let io = std::io::Error::other("boom");
        let e: DbError = io.into();
        assert!(matches!(e, DbError::Io(ref m) if m.contains("boom")));
    }
}
