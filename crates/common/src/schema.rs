//! Table schemas.
//!
//! A [`Schema`] names the columns of a table, declares their types and
//! nullability, and fixes the primary-key column set. The
//! transformation framework's *preparation step* (paper §3.1) creates
//! new tables whose schemas must embed a candidate key of every source
//! table; [`Schema::position_of`] and [`SchemaBuilder`] are the tools
//! it uses to wire source columns to target columns.

use crate::error::{DbError, DbResult};
use crate::value::Value;

/// Declared type of a column.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
    /// Any value accepted (used by tests and generic tooling).
    Any,
}

impl ColumnType {
    /// Whether `v` is admissible for this column type (NULL is checked
    /// separately via [`Column::nullable`]).
    pub fn admits(self, v: &Value) -> bool {
        matches!(
            (self, v),
            (_, Value::Null)
                | (ColumnType::Int, Value::Int(_))
                | (ColumnType::Str, Value::Str(_))
                | (ColumnType::Any, _)
        )
    }
}

/// One column of a schema.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Column {
    /// Column name, unique within the schema.
    pub name: String,
    /// Declared type.
    pub ty: ColumnType,
    /// Whether NULL is admissible. Transformed tables always make the
    /// non-key side nullable because full outer join NULL-extends rows
    /// without a join match (§4.1).
    pub nullable: bool,
}

/// A table schema: ordered columns plus the primary-key column set.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Schema {
    columns: Vec<Column>,
    /// Positions (into `columns`) of the primary-key columns, in key
    /// order.
    pkey: Vec<usize>,
}

impl Schema {
    /// Start building a schema.
    pub fn builder() -> SchemaBuilder {
        SchemaBuilder::default()
    }

    /// All columns in declaration order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Positions of the primary-key columns.
    pub fn pkey(&self) -> &[usize] {
        &self.pkey
    }

    /// Position of a column by name.
    pub fn position_of(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Position of a column by name, as a `DbResult`.
    pub fn require(&self, name: &str) -> DbResult<usize> {
        self.position_of(name)
            .ok_or_else(|| DbError::NoSuchColumn(name.to_owned()))
    }

    /// Extract the primary key of `row`.
    pub fn key_of(&self, row: &[Value]) -> crate::key::Key {
        crate::key::Key::project(row, &self.pkey)
    }

    /// Validate a full row against arity, types and nullability.
    pub fn validate(&self, row: &[Value]) -> DbResult<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::ArityMismatch {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        for (col, v) in self.columns.iter().zip(row) {
            if v.is_null() && !col.nullable {
                return Err(DbError::NullViolation(col.name.clone()));
            }
            if !col.ty.admits(v) {
                return Err(DbError::TypeMismatch {
                    column: col.name.clone(),
                    value: format!("{v:?}"),
                });
            }
        }
        // Primary-key components must be non-NULL unless the whole key
        // is the designated null-record key (handled by the framework,
        // which marks those columns nullable explicitly).
        Ok(())
    }

    /// Whether the given column positions form (a superset of) the
    /// primary key.
    pub fn covers_pkey(&self, cols: &[usize]) -> bool {
        self.pkey.iter().all(|p| cols.contains(p))
    }
}

/// Incremental schema builder.
#[derive(Default)]
pub struct SchemaBuilder {
    columns: Vec<Column>,
    pkey_names: Vec<String>,
}

impl SchemaBuilder {
    /// Add a NOT NULL column.
    #[must_use]
    pub fn column(mut self, name: &str, ty: ColumnType) -> Self {
        self.columns.push(Column {
            name: name.to_owned(),
            ty,
            nullable: false,
        });
        self
    }

    /// Add a nullable column.
    #[must_use]
    pub fn nullable(mut self, name: &str, ty: ColumnType) -> Self {
        self.columns.push(Column {
            name: name.to_owned(),
            ty,
            nullable: true,
        });
        self
    }

    /// Declare the primary-key columns (by name, in key order).
    #[must_use]
    pub fn primary_key(mut self, names: &[&str]) -> Self {
        self.pkey_names = names.iter().map(|s| (*s).to_owned()).collect();
        self
    }

    /// Finish, validating name uniqueness and key existence.
    pub fn build(self) -> DbResult<Schema> {
        if self.columns.is_empty() {
            return Err(DbError::InvalidSchema("schema has no columns".into()));
        }
        for (i, c) in self.columns.iter().enumerate() {
            if self.columns[..i].iter().any(|d| d.name == c.name) {
                return Err(DbError::InvalidSchema(format!(
                    "duplicate column name {:?}",
                    c.name
                )));
            }
        }
        if self.pkey_names.is_empty() {
            return Err(DbError::InvalidSchema("no primary key declared".into()));
        }
        let mut pkey = Vec::with_capacity(self.pkey_names.len());
        for n in &self.pkey_names {
            let pos = self
                .columns
                .iter()
                .position(|c| &c.name == n)
                .ok_or_else(|| {
                    DbError::InvalidSchema(format!("primary-key column {n:?} not in schema"))
                })?;
            if pkey.contains(&pos) {
                return Err(DbError::InvalidSchema(format!(
                    "primary-key column {n:?} listed twice"
                )));
            }
            pkey.push(pos);
        }
        Ok(Schema {
            columns: self.columns,
            pkey,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn people() -> Schema {
        Schema::builder()
            .column("id", ColumnType::Int)
            .column("name", ColumnType::Str)
            .nullable("city", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    #[test]
    fn builder_happy_path() {
        let s = people();
        assert_eq!(s.arity(), 3);
        assert_eq!(s.pkey(), &[0]);
        assert_eq!(s.position_of("city"), Some(2));
        assert_eq!(s.position_of("nope"), None);
    }

    #[test]
    fn duplicate_column_rejected() {
        let err = Schema::builder()
            .column("a", ColumnType::Int)
            .column("a", ColumnType::Int)
            .primary_key(&["a"])
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidSchema(_)));
    }

    #[test]
    fn missing_pkey_rejected() {
        let err = Schema::builder()
            .column("a", ColumnType::Int)
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidSchema(_)));
        let err = Schema::builder()
            .column("a", ColumnType::Int)
            .primary_key(&["b"])
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidSchema(_)));
    }

    #[test]
    fn duplicate_pkey_column_rejected() {
        let err = Schema::builder()
            .column("a", ColumnType::Int)
            .primary_key(&["a", "a"])
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidSchema(_)));
    }

    #[test]
    fn empty_schema_rejected() {
        assert!(Schema::builder().primary_key(&["a"]).build().is_err());
    }

    #[test]
    fn validate_checks_arity_null_type() {
        let s = people();
        assert!(s
            .validate(&[Value::Int(1), Value::str("bob"), Value::Null])
            .is_ok());
        assert!(matches!(
            s.validate(&[Value::Int(1)]),
            Err(DbError::ArityMismatch { .. })
        ));
        assert!(matches!(
            s.validate(&[Value::Int(1), Value::Null, Value::Null]),
            Err(DbError::NullViolation(_))
        ));
        assert!(matches!(
            s.validate(&[Value::str("x"), Value::str("bob"), Value::Null]),
            Err(DbError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn key_extraction() {
        let s = people();
        let row = vec![Value::Int(7), Value::str("z"), Value::Null];
        assert_eq!(s.key_of(&row), crate::key::Key::single(7));
    }

    #[test]
    fn covers_pkey() {
        let s = Schema::builder()
            .column("a", ColumnType::Int)
            .column("b", ColumnType::Int)
            .primary_key(&["a", "b"])
            .build()
            .unwrap();
        assert!(s.covers_pkey(&[1, 0, 2]));
        assert!(!s.covers_pkey(&[0]));
    }

    #[test]
    fn any_type_admits_everything() {
        assert!(ColumnType::Any.admits(&Value::Int(1)));
        assert!(ColumnType::Any.admits(&Value::str("x")));
        assert!(ColumnType::Int.admits(&Value::Null));
        assert!(!ColumnType::Int.admits(&Value::str("x")));
        assert!(!ColumnType::Str.admits(&Value::Int(1)));
    }
}
