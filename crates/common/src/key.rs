//! Composite record keys.
//!
//! A [`Key`] is an ordered tuple of [`Value`]s extracted from a row,
//! used as the primary-key of the per-table B-tree and as the lookup
//! key of secondary indexes (the join-attribute and S-key indexes the
//! paper prescribes in §4.1). Keys compare lexicographically because
//! `Value` itself is totally ordered.

use crate::value::Value;
use std::fmt;

/// An ordered tuple of values identifying a record (or an index entry).
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Key(pub Vec<Value>);

impl Key {
    /// Build a key from any iterable of values.
    pub fn new(values: impl IntoIterator<Item = Value>) -> Key {
        Key(values.into_iter().collect())
    }

    /// A single-column key.
    pub fn single(v: impl Into<Value>) -> Key {
        Key(vec![v.into()])
    }

    /// Extract a key from `row` by column positions.
    ///
    /// # Panics
    /// Panics if any position is out of bounds; callers validate column
    /// positions against the schema when indexes are created.
    pub fn project(row: &[Value], cols: &[usize]) -> Key {
        Key(cols.iter().map(|&c| row[c].clone()).collect())
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Whether every component is NULL (e.g. the key of the
    /// NULL-extended side of an outer-join row).
    pub fn is_all_null(&self) -> bool {
        self.0.iter().all(Value::is_null)
    }

    /// Component values.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Concatenate two keys (used to build the composite primary key of
    /// a many-to-many FOJ result table, paper §4.2).
    #[must_use]
    pub fn concat(&self, other: &Key) -> Key {
        let mut v = self.0.clone();
        v.extend(other.0.iter().cloned());
        Key(v)
    }
}

impl fmt::Debug for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Key {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<Vec<Value>> for Key {
    fn from(v: Vec<Value>) -> Self {
        Key(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_extracts_columns() {
        let row = vec![Value::Int(1), Value::str("a"), Value::Int(9)];
        assert_eq!(
            Key::project(&row, &[2, 0]),
            Key::new([Value::Int(9), Value::Int(1)])
        );
    }

    #[test]
    fn lexicographic_order() {
        let a = Key::new([Value::Int(1), Value::Int(2)]);
        let b = Key::new([Value::Int(1), Value::Int(3)]);
        let c = Key::new([Value::Int(2), Value::Int(0)]);
        assert!(a < b && b < c);
    }

    #[test]
    fn all_null_detection() {
        assert!(Key::new([Value::Null, Value::Null]).is_all_null());
        assert!(!Key::new([Value::Null, Value::Int(0)]).is_all_null());
        // An empty key is vacuously all-null; callers never build one
        // from a schema with a non-empty primary key.
        assert!(Key::new([]).is_all_null());
    }

    #[test]
    fn concat_appends() {
        let a = Key::single(1);
        let b = Key::single("x");
        assert_eq!(a.concat(&b), Key::new([Value::Int(1), Value::str("x")]));
        assert_eq!(a.arity(), 1);
    }

    #[test]
    fn debug_format() {
        let k = Key::new([Value::Int(1), Value::str("a")]);
        assert_eq!(format!("{k:?}"), "(1, \"a\")");
    }
}
