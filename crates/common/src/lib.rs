//! # morph-common
//!
//! Foundation types shared by every morphdb crate: SQL-ish [`Value`]s,
//! order-preserving composite [`Key`]s, table [`Schema`]s, identifier
//! newtypes ([`Lsn`], [`TxnId`], [`TableId`]) and the crate-wide error
//! type [`DbError`].
//!
//! The types here deliberately mirror the vocabulary of Løland &
//! Hvasshovd's EDBT 2006 paper *Online, Non-blocking Relational Schema
//! Changes*: log sequence numbers stamp both log records and rows
//! (§2.2), transactions are identified in fuzzy marks by their ids
//! (§3.2), and record keys identify the rows that propagation rules
//! operate on (§4, §5).

pub mod error;
pub mod ids;
pub mod key;
pub mod schema;
pub mod value;

pub use error::{DbError, DbResult};
pub use ids::{ColId, IndexId, Lsn, TableId, TxnId};
pub use key::Key;
pub use schema::{Column, ColumnType, Schema, SchemaBuilder};
pub use value::Value;
