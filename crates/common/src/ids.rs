//! Identifier newtypes.
//!
//! Every identifier the engine hands out is a dedicated newtype so that
//! a transaction id can never be confused with an LSN at a call site.

use std::fmt;

/// Log sequence number.
///
/// LSNs are assigned by the log manager in strictly increasing order
/// and stamped onto rows on every write, exactly as assumed by the
/// paper (§1: "a log sequence number (LSN) is associated with each
/// record"). [`Lsn::ZERO`] sorts before every real LSN and is used for
/// freshly created rows that no logged operation has touched yet.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Lsn(pub u64);

impl Lsn {
    /// The null LSN; smaller than any LSN the log manager assigns.
    pub const ZERO: Lsn = Lsn(0);
    /// Largest possible LSN; useful as an upper bound in range scans.
    pub const MAX: Lsn = Lsn(u64::MAX);

    /// Next LSN in sequence.
    #[must_use]
    pub fn next(self) -> Lsn {
        Lsn(self.0 + 1)
    }

    /// Whether this is the null LSN.
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Debug for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Lsn({})", self.0)
    }
}

impl fmt::Display for Lsn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Transaction identifier.
///
/// Ids are assigned in begin order, which the lock manager exploits for
/// wait–die deadlock prevention: a lower id means an older transaction.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TxnId(pub u64);

impl TxnId {
    /// Whether `self` began before `other`.
    pub fn is_older_than(self, other: TxnId) -> bool {
        self.0 < other.0
    }
}

impl fmt::Debug for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Txn({})", self.0)
    }
}

impl fmt::Display for TxnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Table identifier, assigned by the catalog at `CREATE TABLE` time and
/// stable across renames (renames matter for the split transformation's
/// rename-in-place variant, paper §5.2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

impl fmt::Debug for TableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Table({})", self.0)
    }
}

/// Secondary-index identifier, unique within its table.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct IndexId(pub u32);

impl fmt::Debug for IndexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Index({})", self.0)
    }
}

/// Column position within a schema (0-based).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColId(pub usize);

impl fmt::Debug for ColId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Col({})", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lsn_ordering_and_next() {
        assert!(Lsn::ZERO < Lsn(1));
        assert_eq!(Lsn(41).next(), Lsn(42));
        assert!(Lsn::ZERO.is_zero());
        assert!(!Lsn(1).is_zero());
        assert!(Lsn(7) < Lsn::MAX);
    }

    #[test]
    fn txn_age_comparison() {
        assert!(TxnId(1).is_older_than(TxnId(2)));
        assert!(!TxnId(2).is_older_than(TxnId(2)));
        assert!(!TxnId(3).is_older_than(TxnId(2)));
    }

    #[test]
    fn debug_formats_are_stable() {
        assert_eq!(format!("{:?}", Lsn(5)), "Lsn(5)");
        assert_eq!(format!("{:?}", TxnId(5)), "Txn(5)");
        assert_eq!(format!("{:?}", TableId(5)), "Table(5)");
        assert_eq!(format!("{:?}", ColId(5)), "Col(5)");
    }
}
