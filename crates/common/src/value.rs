//! Attribute values.
//!
//! morphdb stores dynamically typed rows of [`Value`]s. The type
//! lattice is intentionally small (NULL, 64-bit integers, strings) —
//! the paper's transformations are agnostic to the attribute domain,
//! and every behaviour they exercise (key equality, join-attribute
//! matching, NULL-extension of outer-join results) is expressible with
//! these three variants.

use std::cmp::Ordering;
use std::fmt;

/// A single attribute value.
///
/// `Value` has a total order with `Null` sorting first, then all
/// integers, then all strings. The total order is what lets composite
/// keys of values act as B-tree keys directly.
///
/// Note that unlike SQL three-valued logic, `Value::eq` treats two
/// NULLs as equal. This is the behaviour the transformation framework
/// needs: the special `r_null`/`s_null` records of a full outer join
/// (§4.1) compare equal to themselves so index lookups can find them.
#[derive(Clone, PartialEq, Eq, Hash)]
pub enum Value {
    /// Absent value. Also used for the NULL-extended side of an outer
    /// join result.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 string.
    Str(String),
}

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: impl Into<String>) -> Value {
        Value::Str(s.into())
    }

    /// Whether the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer inside, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The string inside, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Rank used to order across variants: Null < Int < Str.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Str(_) => 2,
        }
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Value::Null, Value::Null) => Ordering::Equal,
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Str(a), Value::Str(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s:?}"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Str(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vals = vec![Value::str("a"), Value::Int(0), Value::Null, Value::Int(-5)];
        vals.sort();
        assert_eq!(
            vals,
            vec![Value::Null, Value::Int(-5), Value::Int(0), Value::str("a")]
        );
    }

    #[test]
    fn nulls_compare_equal() {
        // The transformation rules rely on being able to find the
        // r_null / s_null join partners by equality.
        assert_eq!(Value::Null, Value::Null);
        assert_eq!(Value::Null.cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn accessors() {
        assert!(Value::Null.is_null());
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(7), Value::Int(7));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(String::from("hi")), Value::str("hi"));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-2).to_string(), "-2");
        assert_eq!(Value::str("q").to_string(), "q");
        assert_eq!(format!("{:?}", Value::str("q")), "\"q\"");
    }

    #[test]
    fn strings_sort_after_ints() {
        assert!(Value::Int(i64::MAX) < Value::str(""));
        assert!(Value::Null < Value::Int(i64::MIN));
    }
}
