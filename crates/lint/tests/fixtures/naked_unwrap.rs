//! Panic-audit fixture: a naked unwrap and expect, one annotated
//! escape, and test code that is exempt.

pub fn naked(v: &[u32]) -> u32 {
    *v.first().unwrap()
}

pub fn expected(v: &[u32]) -> u32 {
    *v.get(1).expect("fixture")
}

pub fn allowed(v: &[u32]) -> u32 {
    *v.first().unwrap() // morph-lint: allow(panic, fixture: deliberate escape)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1).unwrap();
    }
}
