//! Clean fixture: ordered locking, a `rank()` attribution, sibling
//! scopes, and a manifest `fn` edge — zero findings expected.

pub struct C {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
}

impl C {
    pub fn ordered(&self) {
        let g = self.outer.lock();
        let h = self.inner.lock();
        drop(h);
        drop(g);
    }

    pub fn attributed(&self) {
        // morph-lint: rank(outer)
        let g = GLOBAL.lock();
        drop(g);
    }

    pub fn sibling_scopes(&self) {
        {
            let g = self.inner.lock();
            drop(g);
        }
        let h = self.inner.lock();
        drop(h);
    }

    pub fn call_edge(&self) {
        let v = self.take_inner();
        drop(v);
    }
}
