//! WAL byte-order fixture: the approved append path plus two
//! out-of-band backend writes.

impl Log {
    fn append_serial(&mut self, bytes: &[u8]) {
        self.sink.append(bytes);
    }

    fn rogue_append(&mut self, bytes: &[u8]) {
        self.sink.append(bytes);
    }

    fn raw_write(&self, out: &mut File, bytes: &[u8]) {
        out.write_all(bytes).ok();
    }
}
