//! Stale-allow fixture: the escape below suppresses nothing — the
//! expression it once covered was refactored away — so the audit must
//! flag the directive line itself.

pub fn tidy() -> u32 {
    // morph-lint: allow(panic, nothing left on this line can panic)
    1 + 1
}
