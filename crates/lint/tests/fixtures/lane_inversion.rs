//! Pool-lane lock-order fixture: the seeded defect every lane refactor
//! must keep impossible — stealing from a lane deque while the epoch
//! fence lock is held (the real pool's caller-steal runs with the
//! fence lock released precisely to avoid this inversion).

pub struct Pool {
    lanes: Vec<Mutex<u32>>,
    sync: Mutex<u32>,
}

impl Pool {
    pub fn fence_then_steal(&self) {
        let fence = self.sync.lock();
        let task = self.lanes[0].lock();
        drop(task);
        drop(fence);
    }

    pub fn fence_then_steal_via_call(&self) {
        let fence = self.sync.lock();
        let task = self.steal_task();
        drop(task);
        drop(fence);
    }

    pub fn handoff_in_placement_order(&self) {
        let a = self.lanes[0].lock();
        let b = self.lanes[1].lock();
        let fence = self.sync.lock();
        drop(fence);
        drop(b);
        drop(a);
    }
}
