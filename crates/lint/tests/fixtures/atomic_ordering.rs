//! Atomics protocol fixture: `flag` is declared `publish` in the
//! fixture manifest, so its Relaxed store is too weak (findings pin
//! the store site); `rogue` is declared nowhere, so its declaration
//! itself is the finding. The correctly-ordered publish pair below
//! must stay silent.

pub struct A {
    flag: AtomicU64,
    rogue: AtomicUsize,
}

impl A {
    pub fn wrong_publish(&self) {
        self.flag.store(1, Ordering::Relaxed);
    }

    pub fn correct_publish(&self) -> u64 {
        self.flag.store(2, Ordering::Release);
        self.flag.load(Ordering::Acquire)
    }

    pub fn rogue_touch(&self) {
        self.rogue.store(3, Ordering::Relaxed);
    }
}
