//! Clean interprocedural fixture: the fence guard is dropped *before*
//! the descent, so the leaf's lane acquisition happens with an empty
//! entry lock-set. The dataflow must honor the early `drop(g)` — any
//! finding here is a false positive in the guard tracker.

pub struct E {
    sync: Mutex<u32>,
    lanes: Vec<Mutex<u32>>,
}

impl E {
    pub fn release_then_descend(&self) {
        let g = self.sync.lock();
        drop(g);
        self.grab_lane();
    }

    fn grab_lane(&self) {
        let q = self.lanes[0].lock();
        drop(q);
    }
}
