//! Purity fixture: the configured snapshot root reaches a blocking
//! lock-manager acquire two frames down (through the manifest `fn`
//! summary for `locks().lock`). The purity pass must print the path
//! and pin the acquire line; the version peek that stays on plain
//! data must not trip anything.

pub struct Reader {
    versions: Vec<u64>,
}

impl Reader {
    pub fn snapshot_read(&self, key: u64) -> u64 {
        self.fetch_version(key)
    }

    fn fetch_version(&self, key: u64) -> u64 {
        let g = self.locks().lock(key);
        drop(g);
        self.versions[key as usize]
    }

    pub fn version_peek(&self, key: u64) -> u64 {
        self.versions[key as usize]
    }
}
