//! Crash-point fixture: a correctly registered point, an unregistered
//! literal, and one literal for a point the manifest miscounts.

pub fn run(db: &Database) -> DbResult<()> {
    db.crash_point("fixture.registered")?;
    db.crash_point("fixture.unregistered")?;
    db.crash_point("fixture.miscounted")?;
    Ok(())
}
