//! Interprocedural fixture: a fence-lock guard held across a 3-deep
//! call chain whose leaf steals from a lane deque. No single function
//! is wrong on its own — the inversion only exists once the entry
//! lock-set flows `hold_and_descend` → `step_middle` → `step_leaf`,
//! and the finding must anchor at the origin call site (the call made
//! while the guard is held) with the full chain in the message.

pub struct D {
    sync: Mutex<u32>,
    lanes: Vec<Mutex<u32>>,
}

impl D {
    pub fn hold_and_descend(&self) {
        let g = self.sync.lock();
        self.step_middle();
        drop(g);
    }

    fn step_middle(&self) {
        self.step_leaf();
    }

    fn step_leaf(&self) {
        let q = self.lanes[0].lock();
        drop(q);
    }
}
