//! Lock-order fixture: one inversion, one re-acquisition, one
//! re-acquisition through a manifest `fn` call edge, plus legal
//! nesting that must stay silent.

pub struct S {
    outer: Mutex<u32>,
    inner: Mutex<u32>,
    shards: Vec<Mutex<u32>>,
}

impl S {
    pub fn inverted(&self) {
        let g = self.inner.lock();
        let h = self.outer.lock();
        drop(h);
        drop(g);
    }

    pub fn reacquired(&self) {
        let g = self.outer.lock();
        let h = self.outer.lock();
        drop(h);
        drop(g);
    }

    pub fn reacquired_via_call(&self) {
        let g = self.inner.lock();
        let v = self.take_inner();
        drop(v);
        drop(g);
    }

    pub fn ordered_and_multi_ok(&self) {
        let g = self.outer.lock();
        let h = self.inner.lock();
        let a = self.shards[0].lock();
        let b = self.shards[1].lock();
        drop(b);
        drop(a);
        drop(h);
        drop(g);
    }
}
