//! Determinism fixture: naked ambient-time and entropy calls, plus
//! one annotated escape that must stay silent.

use std::time::Instant;

pub fn stamp() -> Instant {
    Instant::now()
}

pub fn allowed_stamp() -> Instant {
    // morph-lint: allow(nondet, fixture: deliberate escape)
    Instant::now()
}

pub fn entropy() -> u64 {
    thread_rng()
}
