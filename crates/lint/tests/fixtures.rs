//! Fixture suite: every seeded defect must be caught by exactly its
//! pass at exactly its file:line — and the clean fixtures must stay
//! silent across all passes. These pins are what make the lint
//! trustworthy as a CI gate: a pass that drifts (wrong line, wrong
//! pass, silent miss, noisy false positive) fails here first.
//!
//! The interprocedural pins deserve a note: `deep_inversion.rs` seeds
//! a lock inversion that only exists across three call frames, and
//! the expected line is the *origin call site* (the call made while
//! the guard is held), not the acquire buried in the leaf — that is
//! where an `allow` or a restructure belongs. `clean_interproc.rs`
//! is its control: the same shape with the guard dropped before the
//! descent must produce nothing.

use morph_lint::manifest::{AtomicsManifest, CrashManifest, LockRanks};
use morph_lint::{run_all, Config, SourceFile};

const MANIFEST_PATH: &str = "crates/lint/tests/fixtures/crash_points.txt";

fn fixture_config() -> Config {
    Config {
        lock_ranks: LockRanks::parse(include_str!("fixtures/lock_ranks.txt")).unwrap(),
        crash_points: CrashManifest::parse(include_str!("fixtures/crash_points.txt")).unwrap(),
        crash_manifest_path: MANIFEST_PATH.to_string(),
        det_zones: vec!["fixtures/".into()],
        panic_exempt: Vec::new(),
        wal_write_fns: vec![("fixtures/wal_write.rs".into(), "append_serial".into())],
        wal_backend_impls: Vec::new(),
        atomics: AtomicsManifest::parse(include_str!("fixtures/atomics.txt")).unwrap(),
        atomics_manifest_path: "crates/lint/tests/fixtures/atomics.txt".to_string(),
        atomics_zones: vec!["fixtures/".into()],
        purity_roots: vec!["Reader::snapshot_read".into()],
        purity_forbidden: vec!["lock.table".into()],
        fast: false,
        crate_deps: std::collections::HashMap::new(),
    }
}

fn fixture_files() -> Vec<SourceFile> {
    vec![
        SourceFile::from_source(
            "fixtures/atomic_ordering.rs",
            include_str!("fixtures/atomic_ordering.rs"),
        ),
        SourceFile::from_source("fixtures/clean.rs", include_str!("fixtures/clean.rs")),
        SourceFile::from_source(
            "fixtures/clean_interproc.rs",
            include_str!("fixtures/clean_interproc.rs"),
        ),
        SourceFile::from_source(
            "fixtures/deep_inversion.rs",
            include_str!("fixtures/deep_inversion.rs"),
        ),
        SourceFile::from_source(
            "fixtures/impure_snapshot.rs",
            include_str!("fixtures/impure_snapshot.rs"),
        ),
        SourceFile::from_source(
            "fixtures/lane_inversion.rs",
            include_str!("fixtures/lane_inversion.rs"),
        ),
        SourceFile::from_source(
            "fixtures/naked_unwrap.rs",
            include_str!("fixtures/naked_unwrap.rs"),
        ),
        SourceFile::from_source(
            "fixtures/nondet_call.rs",
            include_str!("fixtures/nondet_call.rs"),
        ),
        SourceFile::from_source(
            "fixtures/orphan_crash_point.rs",
            include_str!("fixtures/orphan_crash_point.rs"),
        ),
        SourceFile::from_source(
            "fixtures/rank_inversion.rs",
            include_str!("fixtures/rank_inversion.rs"),
        ),
        SourceFile::from_source(
            "fixtures/stale_allow.rs",
            include_str!("fixtures/stale_allow.rs"),
        ),
        SourceFile::from_source(
            "fixtures/wal_write.rs",
            include_str!("fixtures/wal_write.rs"),
        ),
    ]
}

#[test]
fn every_seeded_defect_is_caught_at_its_line() {
    let findings = run_all(&fixture_config(), &fixture_files());
    let got: Vec<(&str, usize, &str)> = findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.pass))
        .collect();
    let expected: Vec<(&str, usize, &str)> = vec![
        // Registered `fixture.miscounted` has one code site, manifest
        // says two; `fixture.bogus` never appears in code at all.
        (MANIFEST_PATH, 3, "crash_point"),
        (MANIFEST_PATH, 4, "crash_point"),
        // Undeclared atomic field `rogue` (declaration is the pin),
        // and the Relaxed store to the `publish`-role `flag`; the
        // correctly ordered Release/Acquire pair is silent.
        ("fixtures/atomic_ordering.rs", 9, "atomics"),
        ("fixtures/atomic_ordering.rs", 14, "atomics"),
        // 3-deep interprocedural inversion, pinned at the origin call
        // site in `hold_and_descend` (see module doc).
        ("fixtures/deep_inversion.rs", 16, "lock_order"),
        // Snapshot root reaches the lock manager two frames down.
        ("fixtures/impure_snapshot.rs", 17, "purity"),
        // Lane-pool inversion: a steal (lane deque lock) under the
        // held epoch fence lock, directly and through the `steal_task`
        // call edge; the placement-order hand-off below them is silent.
        ("fixtures/lane_inversion.rs", 14, "lock_order"),
        ("fixtures/lane_inversion.rs", 21, "lock_order"),
        // Naked unwrap / expect; the allowed one (line 13) is silent.
        ("fixtures/naked_unwrap.rs", 5, "panic"),
        ("fixtures/naked_unwrap.rs", 9, "panic"),
        // Instant::now and thread_rng; the allowed Instant is silent.
        ("fixtures/nondet_call.rs", 7, "nondet"),
        ("fixtures/nondet_call.rs", 16, "nondet"),
        // crash_point with an unregistered literal.
        ("fixtures/orphan_crash_point.rs", 6, "crash_point"),
        // inner-then-outer inversion, double outer, inner re-acquired
        // through the `take_inner` call edge; the ordered + sharded
        // nesting below them is silent.
        ("fixtures/rank_inversion.rs", 14, "lock_order"),
        ("fixtures/rank_inversion.rs", 21, "lock_order"),
        ("fixtures/rank_inversion.rs", 28, "lock_order"),
        // An escape that suppresses nothing is itself a finding.
        ("fixtures/stale_allow.rs", 6, "stale_allow"),
        // sink.append outside the approved fn, and a raw write_all;
        // the same chain inside `append_serial` is silent.
        ("fixtures/wal_write.rs", 10, "wal_bytes"),
        ("fixtures/wal_write.rs", 14, "wal_bytes"),
    ];
    assert_eq!(
        got,
        expected,
        "full findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn clean_fixtures_are_silent_on_every_pass() {
    // Run the clean files alone, with the manifest-side demands the
    // other fixtures satisfy removed — no registry or stale-entry
    // findings can leak in.
    let mut cfg = fixture_config();
    cfg.crash_points = CrashManifest::parse("").unwrap();
    cfg.atomics = AtomicsManifest::parse("").unwrap();
    cfg.purity_roots = Vec::new();
    let files = vec![
        SourceFile::from_source("fixtures/clean.rs", include_str!("fixtures/clean.rs")),
        SourceFile::from_source(
            "fixtures/clean_interproc.rs",
            include_str!("fixtures/clean_interproc.rs"),
        ),
    ];
    let findings = run_all(&cfg, &files);
    assert!(
        findings.is_empty(),
        "clean fixtures produced findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fast_mode_keeps_the_intraprocedural_pins() {
    // `--fast` must still catch every lexical defect; the deep
    // inversion, the purity proof, and the stale-allow audit are the
    // full-mode extras that legitimately disappear.
    let mut cfg = fixture_config();
    cfg.fast = true;
    cfg.purity_roots = Vec::new();
    let findings = run_all(&cfg, &fixture_files());
    let has = |file: &str, line: usize, pass: &str| {
        findings
            .iter()
            .any(|f| f.file == file && f.line == line && f.pass == pass)
    };
    assert!(has("fixtures/rank_inversion.rs", 14, "lock_order"));
    assert!(has("fixtures/atomic_ordering.rs", 14, "atomics"));
    assert!(
        !has("fixtures/deep_inversion.rs", 16, "lock_order"),
        "fast mode should skip the interprocedural fixed point"
    );
    assert!(
        !has("fixtures/stale_allow.rs", 6, "stale_allow"),
        "fast mode should skip the stale-allow audit"
    );
    assert!(
        !findings.iter().any(|f| f.pass == "purity"),
        "fast mode should skip the purity proof"
    );
}

#[test]
fn fixture_messages_name_the_defect() {
    let findings = run_all(&fixture_config(), &fixture_files());
    let msg_of = |file: &str, line: usize| {
        findings
            .iter()
            .find(|f| f.file == file && f.line == line)
            .map(|f| f.msg.as_str())
            .unwrap_or("")
    };
    assert!(msg_of("fixtures/rank_inversion.rs", 14).contains("inversion"));
    assert!(msg_of("fixtures/rank_inversion.rs", 21).contains("re-acquisition"));
    assert!(msg_of("fixtures/lane_inversion.rs", 14).contains("inversion"));
    assert!(msg_of("fixtures/orphan_crash_point.rs", 6).contains("not registered"));
    assert!(msg_of(MANIFEST_PATH, 4).contains("does not appear"));
    assert!(msg_of("fixtures/wal_write.rs", 14).contains("byte order"));
    // The interprocedural finding carries the whole chain, frame by
    // frame, and names the acquire site it anchors away from.
    let deep = msg_of("fixtures/deep_inversion.rs", 16);
    assert!(deep.contains("hold_and_descend"), "chain start: {deep}");
    assert!(deep.contains("step_leaf"), "chain end: {deep}");
    assert!(
        deep.contains("deep_inversion.rs:25"),
        "acquire site: {deep}"
    );
    // The purity finding prints the root-to-acquire path.
    let pure = msg_of("fixtures/impure_snapshot.rs", 17);
    assert!(pure.contains("snapshot_read"), "purity root: {pure}");
    assert!(pure.contains("fetch_version"), "purity path: {pure}");
    assert!(msg_of("fixtures/atomic_ordering.rs", 14).contains("weaker"));
    assert!(msg_of("fixtures/atomic_ordering.rs", 9).contains("not declared"));
    assert!(msg_of("fixtures/stale_allow.rs", 6).contains("stale"));
}

#[test]
fn finding_ids_are_stable_and_json_escapes() {
    let findings = run_all(&fixture_config(), &fixture_files());
    let deep = findings
        .iter()
        .find(|f| f.file == "fixtures/deep_inversion.rs")
        .expect("deep inversion finding");
    assert_eq!(
        deep.id(),
        "lock_order@fixtures/deep_inversion.rs:16#lane.sync<-lane.queue"
    );
    let json = morph_lint::to_json(&findings);
    assert!(json.starts_with('['), "json array: {json}");
    assert!(
        json.contains("\"id\":\"lock_order@fixtures/deep_inversion.rs:16#lane.sync<-lane.queue\""),
        "stable id in json: {json}"
    );
    // Every finding appears exactly once.
    assert_eq!(json.matches("\"id\"").count(), findings.len());
}
