//! Fixture suite: every seeded defect must be caught by exactly its
//! pass at exactly its file:line — and the clean fixture must stay
//! silent across all five passes. These pins are what make the lint
//! trustworthy as a CI gate: a pass that drifts (wrong line, wrong
//! pass, silent miss, noisy false positive) fails here first.

use morph_lint::manifest::{CrashManifest, LockRanks};
use morph_lint::{run_all, Config, SourceFile};

const MANIFEST_PATH: &str = "crates/lint/tests/fixtures/crash_points.txt";

fn fixture_config() -> Config {
    Config {
        lock_ranks: LockRanks::parse(include_str!("fixtures/lock_ranks.txt")).unwrap(),
        crash_points: CrashManifest::parse(include_str!("fixtures/crash_points.txt")).unwrap(),
        crash_manifest_path: MANIFEST_PATH.to_string(),
        det_zones: vec!["fixtures/".into()],
        panic_exempt: Vec::new(),
        wal_write_fns: vec![("fixtures/wal_write.rs".into(), "append_serial".into())],
        wal_backend_impls: Vec::new(),
    }
}

fn fixture_files() -> Vec<SourceFile> {
    vec![
        SourceFile::from_source("fixtures/clean.rs", include_str!("fixtures/clean.rs")),
        SourceFile::from_source(
            "fixtures/lane_inversion.rs",
            include_str!("fixtures/lane_inversion.rs"),
        ),
        SourceFile::from_source(
            "fixtures/naked_unwrap.rs",
            include_str!("fixtures/naked_unwrap.rs"),
        ),
        SourceFile::from_source(
            "fixtures/nondet_call.rs",
            include_str!("fixtures/nondet_call.rs"),
        ),
        SourceFile::from_source(
            "fixtures/orphan_crash_point.rs",
            include_str!("fixtures/orphan_crash_point.rs"),
        ),
        SourceFile::from_source(
            "fixtures/rank_inversion.rs",
            include_str!("fixtures/rank_inversion.rs"),
        ),
        SourceFile::from_source(
            "fixtures/wal_write.rs",
            include_str!("fixtures/wal_write.rs"),
        ),
    ]
}

#[test]
fn every_seeded_defect_is_caught_at_its_line() {
    let findings = run_all(&fixture_config(), &fixture_files());
    let got: Vec<(&str, usize, &str)> = findings
        .iter()
        .map(|f| (f.file.as_str(), f.line, f.pass))
        .collect();
    let expected: Vec<(&str, usize, &str)> = vec![
        // Registered `fixture.miscounted` has one code site, manifest
        // says two; `fixture.bogus` never appears in code at all.
        (MANIFEST_PATH, 3, "crash_point"),
        (MANIFEST_PATH, 4, "crash_point"),
        // Lane-pool inversion: a steal (lane deque lock) under the
        // held epoch fence lock, directly and through the `steal_task`
        // call edge; the placement-order hand-off below them is silent.
        ("fixtures/lane_inversion.rs", 14, "lock_order"),
        ("fixtures/lane_inversion.rs", 21, "lock_order"),
        // Naked unwrap / expect; the allowed one (line 13) is silent.
        ("fixtures/naked_unwrap.rs", 5, "panic"),
        ("fixtures/naked_unwrap.rs", 9, "panic"),
        // Instant::now and thread_rng; the allowed Instant is silent.
        ("fixtures/nondet_call.rs", 7, "nondet"),
        ("fixtures/nondet_call.rs", 16, "nondet"),
        // crash_point with an unregistered literal.
        ("fixtures/orphan_crash_point.rs", 6, "crash_point"),
        // inner-then-outer inversion, double outer, inner re-acquired
        // through the `take_inner` call edge; the ordered + sharded
        // nesting below them is silent.
        ("fixtures/rank_inversion.rs", 14, "lock_order"),
        ("fixtures/rank_inversion.rs", 21, "lock_order"),
        ("fixtures/rank_inversion.rs", 28, "lock_order"),
        // sink.append outside the approved fn, and a raw write_all;
        // the same chain inside `append_serial` is silent.
        ("fixtures/wal_write.rs", 10, "wal_bytes"),
        ("fixtures/wal_write.rs", 14, "wal_bytes"),
    ];
    assert_eq!(
        got,
        expected,
        "full findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn clean_fixture_is_silent_on_every_pass() {
    // Run the clean file alone, against a registry whose only demands
    // the other fixtures satisfy removed — no manifest-side findings
    // can leak in.
    let mut cfg = fixture_config();
    cfg.crash_points = CrashManifest::parse("").unwrap();
    let files = vec![SourceFile::from_source(
        "fixtures/clean.rs",
        include_str!("fixtures/clean.rs"),
    )];
    let findings = run_all(&cfg, &files);
    assert!(
        findings.is_empty(),
        "clean fixture produced findings:\n{}",
        findings
            .iter()
            .map(|f| format!("  {f}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn fixture_messages_name_the_defect() {
    let findings = run_all(&fixture_config(), &fixture_files());
    let msg_of = |file: &str, line: usize| {
        findings
            .iter()
            .find(|f| f.file == file && f.line == line)
            .map(|f| f.msg.as_str())
            .unwrap_or("")
    };
    assert!(msg_of("fixtures/rank_inversion.rs", 14).contains("inversion"));
    assert!(msg_of("fixtures/rank_inversion.rs", 21).contains("re-acquisition"));
    assert!(msg_of("fixtures/lane_inversion.rs", 14).contains("inversion"));
    assert!(msg_of("fixtures/orphan_crash_point.rs", 6).contains("not registered"));
    assert!(msg_of(MANIFEST_PATH, 4).contains("does not appear"));
    assert!(msg_of("fixtures/wal_write.rs", 14).contains("byte order"));
}
