//! A deliberately small Rust lexer: enough token structure for the
//! lexical passes (identifiers, punctuation, string literals, line
//! numbers) without pulling a real parser into the offline container.
//!
//! Comments are not tokens; `// morph-lint:` directives are collected
//! separately, keyed by line, so passes can look up escapes for the
//! line a finding occurred on (or the line directly above it).

/// Token kinds the passes care about. Everything the lexer does not
/// recognise structurally becomes `Punct`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `let`, `self`, `lock`, ...).
    Ident,
    /// String literal; `text` holds the *contents* (escapes unresolved).
    Str,
    /// Character literal or lifetime; contents in `text`.
    CharLit,
    /// Numeric literal.
    Num,
    /// Single punctuation character (`.`, `(`, `{`, `;`, `#`, ...).
    Punct(char),
}

#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
}

impl Tok {
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A `// morph-lint: <verb>(<arg>[, reason])` escape comment.
#[derive(Debug, Clone)]
pub struct Directive {
    /// `allow` or `rank`.
    pub verb: String,
    /// First argument: the pass name for `allow`, the lock class for `rank`.
    pub arg: String,
    /// Free-text reason (everything after the first comma), if any.
    pub reason: String,
    pub line: usize,
}

#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub directives: Vec<Directive>,
}

impl Lexed {
    /// Directive on `line` or the line immediately above it (a comment
    /// line dedicated to the escape), matching verb and argument. A
    /// same-line directive wins over one on the line above, so two
    /// adjacent annotated lines each consume their own escape (the
    /// stale-allow audit depends on this).
    pub fn directive_for(&self, line: usize, verb: &str, arg: &str) -> Option<&Directive> {
        self.directives
            .iter()
            .find(|d| d.line == line && d.verb == verb && d.arg == arg)
            .or_else(|| {
                self.directives
                    .iter()
                    .find(|d| d.line + 1 == line && d.verb == verb && d.arg == arg)
            })
    }
}

fn parse_directive(comment: &str, line: usize) -> Option<Directive> {
    let rest = comment.trim().strip_prefix("morph-lint:")?.trim();
    let open = rest.find('(')?;
    let verb = rest[..open].trim().to_string();
    let close = rest.rfind(')')?;
    if close <= open {
        return None;
    }
    let inner = &rest[open + 1..close];
    let (arg, reason) = match inner.find(',') {
        Some(c) => (inner[..c].trim(), inner[c + 1..].trim()),
        None => (inner.trim(), ""),
    };
    Some(Directive {
        verb,
        arg: arg.to_string(),
        reason: reason.to_string(),
        line,
    })
}

pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = b.len();

    let is_ident_start = |c: u8| c.is_ascii_alphabetic() || c == b'_';
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';

    while i < n {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < n && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < n && b[j] != b'\n' {
                    j += 1;
                }
                let text = &src[start..j];
                // `///` docs still parse; the directive prefix filters.
                if let Some(d) = parse_directive(text.trim_start_matches('/'), line) {
                    out.directives.push(d);
                }
                i = j;
            }
            b'/' if i + 1 < n && b[i + 1] == b'*' => {
                // Block comment, possibly nested.
                let mut depth = 1usize;
                let mut j = i + 2;
                while j < n && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < n && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < n && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                i = j;
            }
            b'r' | b'b' if starts_raw_string(b, i) => {
                // r"..."  r#"..."#  br"..."  etc.
                let mut j = i;
                while j < n && (b[j] == b'r' || b[j] == b'b') {
                    j += 1;
                }
                let mut hashes = 0usize;
                while j < n && b[j] == b'#' {
                    hashes += 1;
                    j += 1;
                }
                debug_assert!(j < n && b[j] == b'"');
                j += 1; // opening quote
                let start = j;
                let tok_line = line;
                'raw: while j < n {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                        continue;
                    }
                    if b[j] == b'"' {
                        let mut k = j + 1;
                        let mut seen = 0usize;
                        while k < n && b[k] == b'#' && seen < hashes {
                            seen += 1;
                            k += 1;
                        }
                        if seen == hashes {
                            out.toks.push(Tok {
                                kind: TokKind::Str,
                                text: src[start..j].to_string(),
                                line: tok_line,
                            });
                            i = k;
                            break 'raw;
                        }
                    }
                    j += 1;
                }
                if j >= n {
                    i = n;
                }
            }
            b'"' => {
                let tok_line = line;
                let mut j = i + 1;
                let start = j;
                while j < n {
                    match b[j] {
                        b'\\' => j += 2,
                        b'\n' => {
                            line += 1;
                            j += 1;
                        }
                        b'"' => break,
                        _ => j += 1,
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text: src[start..j.min(n)].to_string(),
                    line: tok_line,
                });
                i = (j + 1).min(n);
            }
            b'\'' => {
                // Lifetime vs char literal: 'a (lifetime) has no closing
                // quote right after the identifier; 'a' and '\n' do.
                if i + 1 < n && b[i + 1] == b'\\' {
                    let mut j = i + 2;
                    while j < n && b[j] != b'\'' {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::CharLit,
                        text: src[i + 1..j.min(n)].to_string(),
                        line,
                    });
                    i = (j + 1).min(n);
                } else if i + 2 < n && is_ident_start(b[i + 1]) && b[i + 2] != b'\'' {
                    // Lifetime: consume the identifier.
                    let mut j = i + 1;
                    while j < n && is_ident(b[j]) {
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::CharLit,
                        text: src[i + 1..j].to_string(),
                        line,
                    });
                    i = j;
                } else {
                    let mut j = i + 1;
                    while j < n && b[j] != b'\'' {
                        if b[j] == b'\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                    out.toks.push(Tok {
                        kind: TokKind::CharLit,
                        text: src[i + 1..j.min(n)].to_string(),
                        line,
                    });
                    i = (j + 1).min(n);
                }
            }
            _ if is_ident_start(c) => {
                let mut j = i + 1;
                while j < n && is_ident(b[j]) {
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i + 1;
                while j < n && (is_ident(b[j]) || b[j] == b'.') {
                    // `1.0` vs `1..x` — stop before a range.
                    if b[j] == b'.' && j + 1 < n && b[j + 1] == b'.' {
                        break;
                    }
                    j += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Num,
                    text: src[i..j].to_string(),
                    line,
                });
                i = j;
            }
            _ => {
                out.toks.push(Tok {
                    kind: TokKind::Punct(c as char),
                    text: (c as char).to_string(),
                    line,
                });
                i += 1;
            }
        }
    }
    out
}

/// `r"`, `r#`, `br"`, `b"` starting a (possibly raw) string literal —
/// but not an identifier that merely begins with `r`/`b`.
fn starts_raw_string(b: &[u8], i: usize) -> bool {
    let n = b.len();
    // Previous char must not extend an identifier (e.g. `for r in ..`).
    if i > 0 && (b[i - 1].is_ascii_alphanumeric() || b[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
        if j >= n {
            return false;
        }
        if b[j] == b'"' {
            return true;
        }
    }
    if j < n && b[j] == b'r' {
        j += 1;
        let mut k = j;
        while k < n && b[k] == b'#' {
            k += 1;
        }
        return k < n && b[k] == b'"';
    }
    false
}
