//! Interprocedural lock-set dataflow (DESIGN.md §12).
//!
//! Two layers. **Fact extraction** runs the lexical guard tracker
//! (the same `let`-binding / `drop(name)` / scope-close discipline as
//! the one-level pass) over every function body in the call graph and
//! records, per function: each lock acquisition with the guard set
//! held at that point, and each call site with the guard set held
//! across it. **Propagation** then flows entry lock-sets through call
//! edges to a fixed point: `Entry(callee) ⊇ HeldAt(call site) ∪
//! Entry(caller)` for every resolvable edge, with first-found
//! provenance so a finding can print the full inter-file call chain
//! from the frame that took the lock down to the acquisition it
//! poisons.
//!
//! Calls that match a manifest `fn` summary (e.g. `crash_point … try`,
//! `log.append`) do **not** create graph edges: the summary *is* the
//! callee's lock behaviour, checked at the call site, and deliberately
//! overrides the graph (that is how the sim hook's documented
//! rank-relaxation stays quiet). Everything the manifest does not
//! summarize flows through the graph.

use std::collections::{HashMap, VecDeque};

use crate::callgraph::CallGraph;
use crate::lexer::TokKind;
use crate::passes::{chain_ending_at, chain_matches};
use crate::{Config, SourceFile};

const LOCK_METHODS: [&str; 6] = ["lock", "read", "write", "try_lock", "try_read", "try_write"];

/// A lock class held by a live guard, with the line it was taken on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HeldLock {
    pub class: usize,
    pub line: usize,
}

/// One blocking or try acquisition inside a function body — either a
/// raw `.lock()/.read()/.write()` site or a manifest `fn` summary call.
#[derive(Debug)]
pub struct AcquireFact {
    pub class: usize,
    pub line: usize,
    pub non_blocking: bool,
    /// Guards lexically held when this acquisition executes.
    pub held: Vec<HeldLock>,
    /// Dotted receiver/call chain, for finding messages.
    pub chain: String,
}

/// One call site that may resolve to workspace functions.
#[derive(Debug)]
pub struct CallFact {
    pub line: usize,
    pub name: String,
    /// `Type` of a `Type::name(…)` path call.
    pub qual_type: Option<String>,
    /// The receiver is exactly `self` (`self.name(…)`), so the callee
    /// is a method of the caller's own impl type.
    pub self_recv: bool,
    /// Guards lexically held across the call.
    pub held: Vec<HeldLock>,
}

/// Raw lock site the manifest cannot attribute to a class.
#[derive(Debug)]
pub struct UnrankedSite {
    pub line: usize,
    pub msg: String,
}

/// Everything the dataflow layers need to know about one function.
#[derive(Debug, Default)]
pub struct FnFacts {
    pub acquires: Vec<AcquireFact>,
    pub calls: Vec<CallFact>,
    pub unranked: Vec<UnrankedSite>,
}

/// Where a class in a function's entry set came from.
#[derive(Debug, Clone, Copy)]
pub enum Prov {
    /// The caller lexically held the class (taken at `acq_line` in the
    /// caller) across the call at `call_line`.
    Direct {
        caller: usize,
        call_line: usize,
        acq_line: usize,
    },
    /// The class was already in the caller's own entry set.
    Inherited { caller: usize, call_line: usize },
}

/// Entry lock-set of each function: class index → provenance.
pub type EntrySets = Vec<HashMap<usize, Prov>>;

struct Guard {
    name: Option<String>,
    class: usize,
    line: usize,
}

/// Extract facts for every function in the graph. A `fn` nested
/// inside another's body is walked as its own function and its token
/// range skipped in the outer walk (the outer guards are not live
/// inside it at runtime).
pub fn extract(cfg: &Config, files: &[SourceFile], graph: &CallGraph) -> Vec<FnFacts> {
    graph
        .fns
        .iter()
        .enumerate()
        .map(|(k, info)| {
            let nested: Vec<(usize, usize)> = graph
                .fns
                .iter()
                .enumerate()
                .filter(|(j, o)| {
                    *j != k
                        && o.file == info.file
                        && o.body.0 > info.body.0
                        && o.body.1 <= info.body.1
                })
                .map(|(_, o)| o.body)
                .collect();
            extract_fn(cfg, &files[info.file], info.body, &nested)
        })
        .collect()
}

fn extract_fn(
    cfg: &Config,
    f: &SourceFile,
    body: (usize, usize),
    nested: &[(usize, usize)],
) -> FnFacts {
    let toks = &f.lexed.toks;
    let m = &cfg.lock_ranks;
    let mut facts = FnFacts::default();
    let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];
    let mut cur_let: Option<String> = None;

    let held_now = |scopes: &[Vec<Guard>]| -> Vec<HeldLock> {
        scopes
            .iter()
            .flatten()
            .map(|g| HeldLock {
                class: g.class,
                line: g.line,
            })
            .collect()
    };

    let mut i = body.0;
    while i < body.1.min(toks.len()) {
        if let Some(&(_, end)) = nested.iter().find(|(s, e)| i >= *s && i < *e) {
            i = end; // jump to the nested fn's closing brace
            continue;
        }
        if f.regions.in_test[i] {
            i += 1;
            continue;
        }
        match &toks[i].kind {
            TokKind::Punct('{') => {
                scopes.push(Vec::new());
                cur_let = None;
            }
            TokKind::Punct('}') => {
                if scopes.len() > 1 {
                    scopes.pop();
                }
                cur_let = None;
            }
            TokKind::Punct(';') => cur_let = None,
            TokKind::Ident if toks[i].text == "let" => {
                cur_let = let_binding_name(toks, i);
            }
            TokKind::Ident if toks[i].text == "drop" => {
                if let (Some(a), Some(b), Some(c)) =
                    (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
                {
                    if a.is_punct('(') && b.kind == TokKind::Ident && c.is_punct(')') {
                        release_named(&mut scopes, &b.text);
                    }
                }
            }
            TokKind::Ident => {
                let name = toks[i].text.as_str();
                let zero_arg = toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
                let is_call = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                let after_dot = i > 0 && toks[i - 1].is_punct('.');
                let is_def = i > 0 && toks[i - 1].is_ident("fn");

                if after_dot && zero_arg && LOCK_METHODS.contains(&name) {
                    let line = toks[i].line;
                    let chain = chain_ending_at(toks, i);
                    let recv = match chain.rsplit_once('.') {
                        Some((head, _)) => head.to_string(),
                        None => chain.clone(),
                    };
                    match resolve_class(cfg, f, line, &recv) {
                        Ok(class) => {
                            facts.acquires.push(AcquireFact {
                                class,
                                line,
                                non_blocking: name.starts_with("try_"),
                                held: held_now(&scopes),
                                chain: chain.clone(),
                            });
                            // `let g = x.lock();` keeps the guard; a
                            // chained use (`x.lock().field…`) is a
                            // statement temporary.
                            let chained = toks.get(i + 3).is_some_and(|t| t.is_punct('.'));
                            if let Some(bind) = cur_let.clone() {
                                if !chained {
                                    push_guard(&mut scopes, Some(bind), class, line);
                                }
                            }
                        }
                        Err(msg) => facts.unranked.push(UnrankedSite { line, msg }),
                    }
                } else if is_call && !is_def {
                    let chain = chain_ending_at(toks, i);
                    if let Some(pat) = m.fns.iter().find(|p| chain_matches(&chain, &p.call)) {
                        // Manifest fn summary: acquisition at the call
                        // site, no graph edge.
                        facts.acquires.push(AcquireFact {
                            class: pat.class,
                            line: toks[i].line,
                            non_blocking: pat.non_blocking,
                            held: held_now(&scopes),
                            chain,
                        });
                        if pat.guard {
                            if let Some(bind) = cur_let.clone() {
                                push_guard(&mut scopes, Some(bind), pat.class, toks[i].line);
                            }
                        }
                    } else {
                        let qual_type = if i >= 3
                            && toks[i - 1].is_punct(':')
                            && toks[i - 2].is_punct(':')
                            && toks[i - 3].kind == TokKind::Ident
                        {
                            Some(toks[i - 3].text.clone())
                        } else {
                            None
                        };
                        facts.calls.push(CallFact {
                            line: toks[i].line,
                            name: name.to_string(),
                            qual_type,
                            self_recv: chain == format!("self.{name}"),
                            held: held_now(&scopes),
                        });
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
    facts
}

/// Class of a raw lock site: an explicit `// morph-lint: rank(class)`
/// annotation wins; otherwise the site patterns keyed by file and
/// receiver suffix.
pub fn resolve_class(
    cfg: &Config,
    f: &SourceFile,
    line: usize,
    recv: &str,
) -> Result<usize, String> {
    let m = &cfg.lock_ranks;
    if let Some(d) = f
        .lexed
        .directives
        .iter()
        .find(|d| (d.line == line || d.line + 1 == line) && d.verb == "rank")
    {
        return m
            .class_idx(&d.arg)
            .ok_or_else(|| format!("rank({}) names an unknown lock class", d.arg));
    }
    m.sites
        .iter()
        .find(|s| f.rel.contains(&s.file_sub) && chain_matches(recv, &s.recv))
        .map(|s| s.class)
        .ok_or_else(|| {
            format!(
                "unranked lock site (receiver `{recv}`): add a `site` pattern to \
                 lock_ranks.txt or a `// morph-lint: rank(<class>)` annotation"
            )
        })
}

/// Resolve one call fact to workspace function indexes. Precision
/// over recall: `Type::name(…)` resolves by qualified name,
/// `self.name(…)` through the caller's own impl type, and anything
/// else only when exactly one workspace function bears the name — a
/// shared name (`apply`, `commit`, `route`) without a receiver type
/// would wire unrelated impls together and fabricate call chains.
/// Every candidate set is additionally filtered through the crate
/// dependency closure: `wal` code cannot call `storage` code, so
/// `BytesMut::freeze` in the codec can never resolve to
/// `Table::freeze` no matter how unique the name is.
pub fn resolve_call(graph: &CallGraph, caller: usize, call: &CallFact) -> Vec<usize> {
    let reachable = |defs: &[usize]| -> Vec<usize> {
        defs.iter()
            .copied()
            .filter(|&t| graph.cross_ok(caller, t))
            .collect()
    };
    if let Some(t) = &call.qual_type {
        let defs = reachable(graph.defs_of_qual(&format!("{t}::{}", call.name)));
        if !defs.is_empty() {
            return defs;
        }
        return unique_or_empty(reachable(graph.resolve_name(&call.name)));
    }
    if call.self_recv {
        if let Some((ty, _)) = graph.fns[caller].qual.rsplit_once("::") {
            let defs = reachable(graph.defs_of_qual(&format!("{ty}::{}", call.name)));
            if !defs.is_empty() {
                return defs;
            }
        }
    }
    unique_or_empty(reachable(graph.resolve_name(&call.name)))
}

fn unique_or_empty(defs: Vec<usize>) -> Vec<usize> {
    if defs.len() == 1 {
        defs
    } else {
        Vec::new()
    }
}

/// Fixed-point propagation of entry lock-sets along call edges.
pub fn propagate(graph: &CallGraph, facts: &[FnFacts]) -> EntrySets {
    let n = graph.fns.len();
    let mut entry: EntrySets = (0..n).map(|_| HashMap::new()).collect();
    let mut queued = vec![true; n];
    let mut work: VecDeque<usize> = (0..n).collect();

    while let Some(fi) = work.pop_front() {
        queued[fi] = false;
        let inherited: Vec<usize> = entry[fi].keys().copied().collect();
        for call in &facts[fi].calls {
            for t in resolve_call(graph, fi, call) {
                if t == fi {
                    continue;
                }
                let mut changed = false;
                for h in &call.held {
                    entry[t].entry(h.class).or_insert_with(|| {
                        changed = true;
                        Prov::Direct {
                            caller: fi,
                            call_line: call.line,
                            acq_line: h.line,
                        }
                    });
                }
                for &c in &inherited {
                    entry[t].entry(c).or_insert_with(|| {
                        changed = true;
                        Prov::Inherited {
                            caller: fi,
                            call_line: call.line,
                        }
                    });
                }
                if changed && !queued[t] {
                    queued[t] = true;
                    work.push_back(t);
                }
            }
        }
    }
    entry
}

/// Human-readable call chain for class `class` arriving at function
/// `fi`'s entry: `\`A::f\` (a.rs:12) → \`B::g\` (b.rs:40) → \`C::h\``,
/// where the first frame is the one lexically holding the lock.
pub fn chain_for(
    entry: &EntrySets,
    graph: &CallGraph,
    files: &[SourceFile],
    fi: usize,
    class: usize,
) -> String {
    let mut frames: Vec<String> = Vec::new();
    let mut cur = fi;
    let mut hops = 0usize;
    loop {
        hops += 1;
        if hops > 64 {
            break;
        }
        let Some(prov) = entry[cur].get(&class) else {
            break;
        };
        match *prov {
            Prov::Direct {
                caller, call_line, ..
            } => {
                frames.push(frame_label(graph, files, caller, call_line));
                break;
            }
            Prov::Inherited { caller, call_line } => {
                frames.push(frame_label(graph, files, caller, call_line));
                cur = caller;
            }
        }
    }
    frames.reverse();
    frames.push(format!("`{}`", graph.fns[fi].qual));
    frames.join(" → ")
}

/// The origin frame of an inherited class at `fi`'s entry: the
/// function that *lexically* holds the lock and the line of the call
/// it makes while holding. Interprocedural findings anchor here — the
/// origin call site is where the fix (drop the guard first, or an
/// `allow` scoped to exactly this chain) belongs, not the shared
/// callee that performs the acquisition for every caller.
pub fn origin_for(entry: &EntrySets, fi: usize, class: usize) -> Option<(usize, usize)> {
    let mut cur = fi;
    for _ in 0..64 {
        match *entry[cur].get(&class)? {
            Prov::Direct {
                caller, call_line, ..
            } => return Some((caller, call_line)),
            Prov::Inherited { caller, .. } => cur = caller,
        }
    }
    None
}

fn frame_label(graph: &CallGraph, files: &[SourceFile], fi: usize, line: usize) -> String {
    let info = &graph.fns[fi];
    format!("`{}` ({}:{})", info.qual, files[info.file].rel, line)
}

fn push_guard(scopes: &mut [Vec<Guard>], name: Option<String>, class: usize, line: usize) {
    if let Some(top) = scopes.last_mut() {
        top.push(Guard { name, class, line });
    }
}

fn release_named(scopes: &mut [Vec<Guard>], name: &str) {
    for scope in scopes.iter_mut().rev() {
        if let Some(pos) = scope.iter().rposition(|g| g.name.as_deref() == Some(name)) {
            scope.remove(pos);
            return;
        }
    }
}

/// Binding name of a `let` statement: the last plain identifier
/// between `let` and `=` (skipping `mut`/`ref` and enum/wrapper
/// constructors), so `let mut g`, `let Some(g)`, `let (n, g)` all
/// yield `g`. Type ascriptions stop the scan at `:`.
fn let_binding_name(toks: &[crate::lexer::Tok], let_idx: usize) -> Option<String> {
    let mut name = None;
    let mut j = let_idx + 1;
    let mut in_type = false;
    while let Some(t) = toks.get(j) {
        match &t.kind {
            TokKind::Punct('=') => break,
            TokKind::Punct(';') | TokKind::Punct('{') => return None,
            TokKind::Punct(':') => {
                in_type = true;
            }
            TokKind::Ident if !in_type => {
                let s = t.text.as_str();
                if !matches!(s, "mut" | "ref" | "Some" | "Ok" | "Err" | "Box") {
                    name = Some(s.to_string());
                }
            }
            _ => {}
        }
        j += 1;
        if j > let_idx + 64 {
            return None;
        }
    }
    name
}
