//! Pass 5: WAL byte order. Recovery correctness rests on "byte order
//! ≡ LSN order" (DESIGN.md §11): bytes reach the backend sink only
//! from the two approved WAL manager functions — `append_serial`
//! (serial mode, under the order lock) and `drain_staged` (group
//! mode, under the backend lock in LSN order). Any other `sink.append`
//! or raw `write_all` in the workspace bypasses that ordering and is
//! flagged. Files that *implement* the `Backend` trait are exempt —
//! they are below the ordering boundary, not callers of it.

use super::chain_ending_at;
use crate::lexer::TokKind;
use crate::{Config, Finding, SourceFile};

pub fn run(cfg: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if cfg
            .wal_backend_impls
            .iter()
            .any(|p| f.rel.ends_with(p.as_str()) || f.rel == *p)
        {
            continue;
        }
        let toks = &f.lexed.toks;
        for (i, t) in toks.iter().enumerate() {
            if f.regions.in_test[i] || t.kind != TokKind::Ident {
                continue;
            }
            if i == 0 || !toks[i - 1].is_punct('.') {
                continue;
            }
            if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            let name = t.text.as_str();
            let offending = match name {
                "append" => {
                    let chain = chain_ending_at(toks, i);
                    chain.ends_with("sink.append") || chain == "sink.append"
                }
                "write_all" => true,
                _ => false,
            };
            if !offending {
                continue;
            }
            let here_fn = f.regions.fn_name(i).unwrap_or("");
            let approved = cfg
                .wal_write_fns
                .iter()
                .any(|(file, func)| f.rel == *file && here_fn == func);
            if !approved {
                out.push(Finding {
                    pass: "wal_bytes",
                    file: f.rel.clone(),
                    line: t.line,
                    key: name.to_string(),
                    msg: format!(
                        "backend byte write (`{name}`) outside the approved WAL append/drain \
                         functions — byte order must equal LSN order (DESIGN.md §11)"
                    ),
                });
            }
        }
    }
    out
}
