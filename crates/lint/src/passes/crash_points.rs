//! Pass 3: crash-point registry. Every `crash_point("…")` literal must
//! be registered in `manifest/crash_points.txt`, every registered
//! point must still exist in non-test code (a bogus registry entry
//! would make the sim kill matrix demand a point that never fires),
//! and the per-point site counts must match so a copy-pasted literal
//! cannot silently double-count a census.
//!
//! Points whose names are built dynamically (the `sync.nba.*` /
//! `sync.nbc.*` families selected per strategy) are covered by the
//! literal-occurrence check: the name must appear as a string literal
//! somewhere in non-test code, wherever the selection table lives.

use std::collections::HashMap;

use crate::lexer::TokKind;
use crate::{Config, Finding, SourceFile};

pub fn run(cfg: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let m = &cfg.crash_points;

    // Duplicate registry entries.
    let mut seen: HashMap<&str, usize> = HashMap::new();
    for p in &m.points {
        if let Some(first) = seen.insert(p.name.as_str(), p.line) {
            out.push(Finding {
                pass: "crash_point",
                file: cfg.crash_manifest_path.clone(),
                line: p.line,
                key: p.name.clone(),
                msg: format!(
                    "duplicate registration of crash point `{}` (first at line {first})",
                    p.name
                ),
            });
        }
    }

    // Literal occurrences per registered name, plus direct
    // `crash_point("…")` calls whose literal is unregistered.
    let mut counts: HashMap<&str, usize> = HashMap::new();
    for f in files {
        let toks = &f.lexed.toks;
        for (i, t) in toks.iter().enumerate() {
            if f.regions.in_test[i] {
                continue;
            }
            if t.kind == TokKind::Str {
                if let Some(p) = m.points.iter().find(|p| p.name == t.text) {
                    *counts.entry(p.name.as_str()).or_insert(0) += 1;
                }
            }
            if t.is_ident("crash_point")
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.kind == TokKind::Str)
            {
                let lit = &toks[i + 2].text;
                if m.get(lit).is_none() {
                    out.push(Finding {
                        pass: "crash_point",
                        file: f.rel.clone(),
                        line: t.line,
                        key: lit.clone(),
                        msg: format!(
                            "crash_point(\"{lit}\") is not registered in {} — the sim kill \
                             matrix would never test it",
                            cfg.crash_manifest_path
                        ),
                    });
                }
            }
        }
    }

    for p in &m.points {
        let n = counts.get(p.name.as_str()).copied().unwrap_or(0);
        if n == 0 {
            out.push(Finding {
                pass: "crash_point",
                file: cfg.crash_manifest_path.clone(),
                line: p.line,
                key: p.name.clone(),
                msg: format!(
                    "registered crash point `{}` does not appear in non-test code — remove \
                     the bogus registry entry or add the crash_point call",
                    p.name
                ),
            });
        } else if n != p.sites {
            out.push(Finding {
                pass: "crash_point",
                file: cfg.crash_manifest_path.clone(),
                line: p.line,
                key: p.name.clone(),
                msg: format!(
                    "crash point `{}`: {} literal site(s) in code but manifest says sites={}",
                    p.name, n, p.sites
                ),
            });
        }
    }

    out
}
