//! Pass 6: atomics ordering protocol against `manifest/atomics.txt`.
//!
//! Every `Atomic*` struct field (and static) declared inside the
//! strict zone (`core`, `wal`, `storage`, `txn`, `engine`) must be
//! registered in the manifest with a protocol role, and every use
//! site must pass an `Ordering` at least as strong as the role's
//! minimum for that site kind:
//!
//! | role    | load    | store   | rmw     | cas ok  | cas err |
//! |---------|---------|---------|---------|---------|---------|
//! | counter | Relaxed | Relaxed | Relaxed | Relaxed | Relaxed |
//! | publish | Acquire | Release | Release | Release | Relaxed |
//! | consume | Acquire | Release | AcqRel  | AcqRel  | Acquire |
//! | seal    | SeqCst  | SeqCst  | SeqCst  | SeqCst  | SeqCst  |
//!
//! Strength is the lattice triple (acquire, release, seqcst); an
//! ordering meets a minimum when it has every bit the minimum has.
//! A deliberately weaker site (e.g. a `Relaxed` re-read of a publish
//! watermark under the very mutex that orders its writers) carries
//! `// morph-lint: allow(atomics, why the ordering is enough)`.
//!
//! An undeclared field, a manifest entry whose field no longer
//! exists, an ambiguous site (same-named fields with different
//! roles and no file match), and a non-literal `Ordering` argument
//! are all findings — the manifest and the code cannot drift apart.

use crate::lexer::TokKind;
use crate::manifest::AtomicRole;
use crate::passes::chain_ending_at;
use crate::{Config, Finding, SourceFile};

const ATOMIC_TYPES: [&str; 9] = [
    "AtomicU64",
    "AtomicUsize",
    "AtomicU32",
    "AtomicU16",
    "AtomicU8",
    "AtomicI64",
    "AtomicIsize",
    "AtomicI32",
    "AtomicBool",
];

const RMW_METHODS: [&str; 10] = [
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_nand",
    "fetch_update",
];

const CAS_METHODS: [&str; 2] = ["compare_exchange", "compare_exchange_weak"];

/// (acquire, release, seqcst) strength triple of an `Ordering` name.
fn strength(name: &str) -> Option<(bool, bool, bool)> {
    match name {
        "Relaxed" => Some((false, false, false)),
        "Acquire" => Some((true, false, false)),
        "Release" => Some((false, true, false)),
        "AcqRel" => Some((true, true, false)),
        "SeqCst" => Some((true, true, true)),
        _ => None,
    }
}

fn meets(given: (bool, bool, bool), min: (bool, bool, bool)) -> bool {
    (!min.0 || given.0) && (!min.1 || given.1) && (!min.2 || given.2)
}

fn min_name(min: (bool, bool, bool)) -> &'static str {
    match min {
        (false, false, false) => "Relaxed",
        (true, false, false) => "Acquire",
        (false, true, false) => "Release",
        (true, true, false) => "AcqRel",
        _ => "SeqCst",
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SiteKind {
    Load,
    Store,
    Rmw,
}

/// Minimum ordering for a role at a site kind; CAS failure orderings
/// are checked against the role's `Load` minimum (`Rmw` for `seal`).
fn role_min(role: AtomicRole, kind: SiteKind) -> (bool, bool, bool) {
    use AtomicRole::*;
    use SiteKind::*;
    match (role, kind) {
        (Counter, _) => (false, false, false),
        (Publish, Load) => (true, false, false),
        (Publish, Store) | (Publish, Rmw) => (false, true, false),
        (Consume, Load) => (true, false, false),
        (Consume, Store) => (false, true, false),
        (Consume, Rmw) => (true, true, false),
        (Seal, _) => (true, true, true),
    }
}

pub fn run(cfg: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    let m = &cfg.atomics;
    let mut entry_used = vec![false; m.entries.len()];

    for f in files {
        if !cfg
            .atomics_zones
            .iter()
            .any(|z| f.rel.starts_with(z.as_str()))
        {
            continue;
        }
        scan_decls(cfg, f, &mut entry_used, &mut out);
        scan_sites(cfg, f, &mut out);
    }

    for (i, e) in m.entries.iter().enumerate() {
        if !entry_used[i] {
            out.push(Finding {
                pass: "atomics",
                file: cfg.atomics_manifest_path.clone(),
                line: e.line,
                key: e.field.clone(),
                msg: format!(
                    "manifest entry `{} {}` matches no atomic declaration in the zone — \
                     remove the stale entry or fix the file substring",
                    e.field, e.file_sub
                ),
            });
        }
    }
    out
}

/// Find `name: Atomic*` / `name: Arc<Atomic*>` struct-field and
/// `static NAME: Atomic*` declarations and require a manifest entry.
fn scan_decls(cfg: &Config, f: &SourceFile, entry_used: &mut [bool], out: &mut Vec<Finding>) {
    let toks = &f.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.regions.in_test[i]
            || t.kind != TokKind::Ident
            || !ATOMIC_TYPES.contains(&t.text.as_str())
        {
            continue;
        }
        // Walk back over wrapper generics (`Arc<`) and path segments
        // (`std::sync::atomic::`) to the field's own single `:`. A
        // `use` import ends the walk at the `use` keyword instead of a
        // colon and falls through the field check below.
        let mut j = i;
        loop {
            if j >= 3
                && toks[j - 1].is_punct(':')
                && toks[j - 2].is_punct(':')
                && toks[j - 3].kind == TokKind::Ident
            {
                j -= 3; // `seg::` path segment
            } else if j >= 2 && toks[j - 1].is_punct('<') && toks[j - 2].kind == TokKind::Ident {
                j -= 2; // `Arc<` wrapper
            } else {
                break;
            }
        }
        if j < 2 || !toks[j - 1].is_punct(':') || toks[j - 2].kind != TokKind::Ident {
            continue; // not `name: …Atomic*`
        }
        let name = &toks[j - 2].text;
        // Field / static position only: the token before the name (or
        // before a `pub` visibility) must open a field list or be
        // `static`; `let` locals and `&Atomic*` params are exempt.
        let mut k = j - 2;
        while k > 0 && (toks[k - 1].is_ident("pub") || toks[k - 1].is_punct(')')) {
            if toks[k - 1].is_punct(')') {
                // `pub(crate)` visibility — skip to its `pub`.
                let mut depth = 0usize;
                let mut p = k - 1;
                loop {
                    if toks[p].is_punct(')') {
                        depth += 1;
                    } else if toks[p].is_punct('(') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    if p == 0 {
                        break;
                    }
                    p -= 1;
                }
                k = p;
            } else {
                k -= 1;
            }
        }
        let positional = k == 0
            || toks[k - 1].is_punct('{')
            || toks[k - 1].is_punct(',')
            || toks[k - 1].is_ident("static");
        if !positional {
            continue;
        }
        let line = toks[j - 2].line;
        let matched: Vec<usize> = cfg
            .atomics
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.field == *name && f.rel.contains(&e.file_sub))
            .map(|(idx, _)| idx)
            .collect();
        if matched.is_empty() {
            out.push(Finding {
                pass: "atomics",
                file: f.rel.clone(),
                line,
                key: name.clone(),
                msg: format!(
                    "atomic field `{name}` is not declared in {} — add \
                     `atomic {name} <file> <publish|consume|counter|seal>`",
                    cfg.atomics_manifest_path
                ),
            });
        }
        for idx in matched {
            entry_used[idx] = true;
        }
    }
}

/// Check the `Ordering` literal(s) of every atomic method call whose
/// receiver field is declared in the manifest.
fn scan_sites(cfg: &Config, f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if f.regions.in_test[i] || t.kind != TokKind::Ident {
            continue;
        }
        if i == 0 || !toks[i - 1].is_punct('.') {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let name = t.text.as_str();
        let kind = if name == "load" {
            SiteKind::Load
        } else if name == "store" {
            SiteKind::Store
        } else if RMW_METHODS.contains(&name) || CAS_METHODS.contains(&name) {
            SiteKind::Rmw
        } else {
            continue;
        };
        let is_cas = CAS_METHODS.contains(&name);

        let chain = chain_ending_at(toks, i);
        let mut segs: Vec<&str> = chain.split('.').collect();
        segs.pop(); // the method itself
        let Some(field_seg) = segs.pop() else {
            continue;
        };
        let field = field_seg.trim_end_matches("()").trim_end_matches("[]");

        let candidates: Vec<&crate::manifest::AtomicEntry> = cfg
            .atomics
            .entries
            .iter()
            .filter(|e| e.field == field)
            .collect();
        if candidates.is_empty() {
            // Not a declared atomic (plain collection `.load()` name
            // collisions land here); the declaration scan is the
            // enforcement point for missing entries.
            continue;
        }
        let line = t.line;
        let role = {
            let local: Vec<_> = candidates
                .iter()
                .filter(|e| f.rel.contains(&e.file_sub))
                .collect();
            if local.len() == 1 {
                local[0].role
            } else if candidates.iter().all(|e| e.role == candidates[0].role) {
                candidates[0].role
            } else {
                out.push(Finding {
                    pass: "atomics",
                    file: f.rel.clone(),
                    line,
                    key: field.to_string(),
                    msg: format!(
                        "ambiguous atomic field `{field}`: multiple manifest roles match and \
                         none is declared for this file — split the entries by file substring"
                    ),
                });
                continue;
            }
        };

        let orderings = ordering_args(toks, i + 1);
        if orderings.is_empty() {
            out.push(Finding {
                pass: "atomics",
                file: f.rel.clone(),
                line,
                key: field.to_string(),
                msg: format!(
                    "atomic `{field}`.{name}: Ordering is not a literal — the protocol \
                     cannot be checked; pass `Ordering::…` directly or annotate \
                     `// morph-lint: allow(atomics, why)`"
                ),
            });
            continue;
        }
        let min = role_min(role, kind);
        let fail_min = if role == AtomicRole::Seal {
            role_min(role, SiteKind::Rmw)
        } else {
            role_min(role, SiteKind::Load)
        };
        for (oi, (oname, ostrength)) in orderings.iter().enumerate() {
            let (required, what) = if is_cas && oi == 1 {
                (fail_min, "failure ordering")
            } else {
                (min, "ordering")
            };
            if !meets(*ostrength, required) {
                out.push(Finding {
                    pass: "atomics",
                    file: f.rel.clone(),
                    line,
                    key: field.to_string(),
                    msg: format!(
                        "atomic `{field}` (role {}) {name} {what} `{oname}` is weaker than \
                         the manifest minimum `{}`",
                        role.name(),
                        min_name(required)
                    ),
                });
            }
        }
    }
}

/// `Ordering` literal names inside the argument list opening at
/// `open_idx` (a `(` token), in argument order. Nested calls are
/// included — closures passed to `fetch_update` name their orderings
/// at the outer level anyway.
fn ordering_args(toks: &[crate::lexer::Tok], open_idx: usize) -> Vec<(String, (bool, bool, bool))> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut k = open_idx;
    while k < toks.len() {
        if toks[k].is_punct('(') {
            depth += 1;
        } else if toks[k].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if toks[k].kind == TokKind::Ident {
            if let Some(s) = strength(&toks[k].text) {
                out.push((toks[k].text.clone(), s));
            }
        }
        k += 1;
    }
    out
}
