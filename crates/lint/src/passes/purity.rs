//! Pass 7: snapshot-path purity. PR 8's reader guarantee —
//! `thread_lock_waits() == 0` under migration + writer fire
//! (DESIGN.md §14) — holds because `begin_snapshot` / `snapshot_read`
//! / `snapshot_scan` (and the lazy-mode interceptor's read path)
//! never touch the lock manager. This pass pins that statically: a
//! breadth-first walk from each configured root over the call graph
//! must not reach any function that blocking-acquires a lock-manager
//! class (`txn.lock_table`, `txn.granular`, `txn.held`), whether as a
//! raw site or through a manifest `fn` summary. Non-blocking peeks
//! (`try_lock`, manifest `try` fns such as `locks().held_keys_in`)
//! are exempt — they cannot wait.
//!
//! When a root can reach an acquire, the finding prints the full call
//! path so the offending edge is obvious. Name resolution is the
//! call-graph's (distinctive workspace names only), so the proof is
//! over the same under-approximated edge set as the interprocedural
//! lock pass — the manifest `fn` summaries cover the std-named seams.

use std::collections::{HashMap, VecDeque};

use crate::callgraph::CallGraph;
use crate::dataflow::{self, FnFacts};
use crate::{Config, Finding, SourceFile};

pub fn run(
    cfg: &Config,
    files: &[SourceFile],
    graph: &CallGraph,
    facts: &[FnFacts],
) -> Vec<Finding> {
    let mut out = Vec::new();
    let m = &cfg.lock_ranks;

    let mut forbidden = Vec::new();
    for name in &cfg.purity_forbidden {
        match m.class_idx(name) {
            Some(c) => forbidden.push(c),
            None => out.push(Finding {
                pass: "purity",
                file: "crates/lint/src/lib.rs".to_string(),
                line: 1,
                key: name.clone(),
                msg: format!("purity config names unknown lock class `{name}`"),
            }),
        }
    }

    for root_qual in &cfg.purity_roots {
        let roots = graph.defs_of_qual(root_qual);
        if roots.is_empty() {
            out.push(Finding {
                pass: "purity",
                file: "crates/lint/src/lib.rs".to_string(),
                line: 1,
                key: root_qual.clone(),
                msg: format!(
                    "purity root `{root_qual}` not found in the workspace — update the \
                     root list if the function moved"
                ),
            });
            continue;
        }
        for &root in roots {
            walk_root(
                cfg, files, graph, facts, &forbidden, root_qual, root, &mut out,
            );
        }
    }
    out
}

#[allow(clippy::too_many_arguments)]
fn walk_root(
    cfg: &Config,
    files: &[SourceFile],
    graph: &CallGraph,
    facts: &[FnFacts],
    forbidden: &[usize],
    root_qual: &str,
    root: usize,
    out: &mut Vec<Finding>,
) {
    let m = &cfg.lock_ranks;
    // parent[v] = (caller, call line) for path reconstruction.
    let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
    let mut queue = VecDeque::new();
    parent.insert(root, (root, 0));
    queue.push_back(root);

    while let Some(v) = queue.pop_front() {
        if let Some(acq) = facts[v]
            .acquires
            .iter()
            .find(|a| !a.non_blocking && forbidden.contains(&a.class))
        {
            let file = &files[graph.fns[v].file];
            let path = path_to(graph, files, &parent, root, v);
            out.push(Finding {
                pass: "purity",
                file: file.rel.clone(),
                line: acq.line,
                key: format!("{root_qual}->{}", m.classes[acq.class].name),
                msg: format!(
                    "snapshot purity violation: `{root_qual}` can reach a blocking \
                     `{}` acquire (`{}`); path: {}; readers must never touch the lock \
                     manager (thread_lock_waits()==0, DESIGN.md §14)",
                    m.classes[acq.class].name, acq.chain, path
                ),
            });
            // One finding per reachable dirty function is enough; keep
            // walking so independent dirty callees all surface.
        }
        for call in &facts[v].calls {
            for t in dataflow::resolve_call(graph, v, call) {
                if let std::collections::hash_map::Entry::Vacant(e) = parent.entry(t) {
                    e.insert((v, call.line));
                    queue.push_back(t);
                }
            }
        }
    }
}

fn path_to(
    graph: &CallGraph,
    files: &[SourceFile],
    parent: &HashMap<usize, (usize, usize)>,
    root: usize,
    mut v: usize,
) -> String {
    let mut frames = Vec::new();
    let mut hops = 0usize;
    while v != root && hops < 64 {
        hops += 1;
        let info = &graph.fns[v];
        let (p, line) = parent[&v];
        frames.push(format!(
            "`{}` ({}:{})",
            info.qual, files[info.file].rel, line
        ));
        v = p;
    }
    frames.push(format!("`{}`", graph.fns[root].qual));
    frames.reverse();
    frames.join(" → ")
}
