//! Pass 2: determinism. Replay-deterministic code (the sim harness
//! and everything it drives on the serial path) must not consult
//! ambient time or entropy — a replayed schedule that branches on
//! `Instant::now()` is not a replay. Legitimate sites (lock-wait
//! deadlines, wall-clock stats that never feed control flow back
//! into replayed state) carry `// morph-lint: allow(nondet, reason)`.

use crate::lexer::TokKind;
use crate::{Config, Finding, SourceFile};

/// Identifiers that are nondeterministic wherever they appear.
const FORBIDDEN: [&str; 6] = [
    "SystemTime",
    "UNIX_EPOCH",
    "thread_rng",
    "from_entropy",
    "OsRng",
    "getrandom",
];

pub fn run(cfg: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if !cfg.det_zones.iter().any(|z| f.rel.starts_with(z.as_str())) {
            continue;
        }
        let toks = &f.lexed.toks;
        for (i, t) in toks.iter().enumerate() {
            if f.regions.in_test[i] || t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text.as_str();
            let hit = if FORBIDDEN.contains(&name) {
                Some(name.to_string())
            } else if name == "Instant"
                && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                && toks.get(i + 3).is_some_and(|t| t.is_ident("now"))
            {
                Some("Instant::now".to_string())
            } else {
                None
            };
            if let Some(what) = hit {
                out.push(Finding {
                    pass: "nondet",
                    file: f.rel.clone(),
                    line: t.line,
                    key: what.clone(),
                    msg: format!(
                        "`{what}` in replay-deterministic code: thread a deterministic \
                         clock/seed through, or annotate `// morph-lint: allow(nondet, why)`"
                    ),
                });
            }
        }
    }
    out
}
