//! Pass 1: lock-order checking against `manifest/lock_ranks.txt`.
//!
//! A lexical guard tracker walks each file: `let`-bound results of
//! `.lock()/.read()/.write()` (and of manifest `fn … guard` calls)
//! become live guards until their scope closes or an explicit
//! `drop(name)`. At every acquisition the live guard set is checked:
//! acquiring a class whose rank is **smaller** than a held class's
//! rank is an inversion (ranks order acquisition, outermost first);
//! acquiring a held class again is a re-acquire unless the class is
//! `multi` (sharded siblings taken in a canonical order).
//!
//! Non-blocking acquisitions (`try_*`, manifest `try` fns) cannot
//! participate in a deadlock cycle's wait edge, so they are tracked
//! as held but never reported as inversions themselves.

use super::{chain_ending_at, chain_matches};
use crate::lexer::TokKind;
use crate::{Config, Finding, SourceFile};

const LOCK_METHODS: [&str; 6] = ["lock", "read", "write", "try_lock", "try_read", "try_write"];

struct Guard {
    name: Option<String>,
    class: usize,
}

pub fn run(cfg: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        run_file(cfg, f, &mut out);
    }
    out
}

fn run_file(cfg: &Config, f: &SourceFile, out: &mut Vec<Finding>) {
    let toks = &f.lexed.toks;
    let m = &cfg.lock_ranks;
    let mut scopes: Vec<Vec<Guard>> = vec![Vec::new()];
    let mut cur_let: Option<String> = None;

    let mut i = 0usize;
    while i < toks.len() {
        if f.regions.in_test[i] {
            i += 1;
            continue;
        }
        match &toks[i].kind {
            TokKind::Punct('{') => {
                scopes.push(Vec::new());
                cur_let = None;
            }
            TokKind::Punct('}') => {
                if scopes.len() > 1 {
                    scopes.pop();
                }
                cur_let = None;
            }
            TokKind::Punct(';') => cur_let = None,
            TokKind::Ident if toks[i].text == "let" => {
                cur_let = let_binding_name(toks, i);
            }
            TokKind::Ident if toks[i].text == "drop" => {
                // `drop(name)` / `mem::drop(name)` releases the guard.
                if let (Some(a), Some(b), Some(c)) =
                    (toks.get(i + 1), toks.get(i + 2), toks.get(i + 3))
                {
                    if a.is_punct('(') && b.kind == TokKind::Ident && c.is_punct(')') {
                        release_named(&mut scopes, &b.text);
                    }
                }
            }
            TokKind::Ident => {
                let name = toks[i].text.as_str();
                let zero_arg = toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(')'));
                let is_call = toks.get(i + 1).is_some_and(|t| t.is_punct('('));
                let after_dot = i > 0 && toks[i - 1].is_punct('.');
                let is_def = i > 0 && toks[i - 1].is_ident("fn");

                if after_dot && zero_arg && LOCK_METHODS.contains(&name) {
                    // Raw lock site.
                    let line = toks[i].line;
                    let chain = chain_ending_at(toks, i);
                    let recv = match chain.rsplit_once('.') {
                        Some((head, _)) => head.to_string(),
                        None => chain.clone(),
                    };
                    let class = resolve_class(cfg, f, line, &recv);
                    let class = match class {
                        Ok(c) => c,
                        Err(msg) => {
                            if !f.allowed(line, "lock_order") {
                                out.push(Finding {
                                    pass: "lock_order",
                                    file: f.rel.clone(),
                                    line,
                                    msg,
                                });
                            }
                            i += 1;
                            continue;
                        }
                    };
                    let non_blocking = name.starts_with("try_");
                    check_acquire(cfg, f, line, class, non_blocking, &scopes, out);
                    // `let g = x.lock();` keeps the guard; a chained use
                    // (`x.lock().field…`) is a statement temporary.
                    let chained = toks.get(i + 3).is_some_and(|t| t.is_punct('.'));
                    if let Some(bind) = cur_let.clone() {
                        if !chained {
                            push_guard(&mut scopes, Some(bind), class);
                        }
                    }
                } else if is_call && !is_def {
                    // One-level call graph: calls into functions the
                    // manifest says acquire a lock class internally.
                    let chain = chain_ending_at(toks, i);
                    if let Some(pat) = m.fns.iter().find(|p| chain_matches(&chain, &p.call)) {
                        let line = toks[i].line;
                        check_acquire(cfg, f, line, pat.class, pat.non_blocking, &scopes, out);
                        if pat.guard {
                            if let Some(bind) = cur_let.clone() {
                                push_guard(&mut scopes, Some(bind), pat.class);
                            }
                        }
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}

/// Class of a raw lock site: an explicit `// morph-lint: rank(class)`
/// annotation wins; otherwise the site patterns keyed by file and
/// receiver suffix.
fn resolve_class(cfg: &Config, f: &SourceFile, line: usize, recv: &str) -> Result<usize, String> {
    let m = &cfg.lock_ranks;
    if let Some(d) = f
        .lexed
        .directives
        .iter()
        .find(|d| (d.line == line || d.line + 1 == line) && d.verb == "rank")
    {
        return m
            .class_idx(&d.arg)
            .ok_or_else(|| format!("rank({}) names an unknown lock class", d.arg));
    }
    m.sites
        .iter()
        .find(|s| f.rel.contains(&s.file_sub) && chain_matches(recv, &s.recv))
        .map(|s| s.class)
        .ok_or_else(|| {
            format!(
                "unranked lock site (receiver `{recv}`): add a `site` pattern to \
                 lock_ranks.txt or a `// morph-lint: rank(<class>)` annotation"
            )
        })
}

fn check_acquire(
    cfg: &Config,
    f: &SourceFile,
    line: usize,
    class: usize,
    non_blocking: bool,
    scopes: &[Vec<Guard>],
    out: &mut Vec<Finding>,
) {
    if non_blocking || f.allowed(line, "lock_order") {
        return;
    }
    let m = &cfg.lock_ranks;
    let new = &m.classes[class];
    for g in scopes.iter().flatten() {
        let held = &m.classes[g.class];
        if held.rank > new.rank {
            out.push(Finding {
                pass: "lock_order",
                file: f.rel.clone(),
                line,
                msg: format!(
                    "lock-order inversion: acquiring `{}` (rank {}) while holding `{}` (rank {})",
                    new.name, new.rank, held.name, held.rank
                ),
            });
        } else if g.class == class && !new.multi {
            out.push(Finding {
                pass: "lock_order",
                file: f.rel.clone(),
                line,
                msg: format!(
                    "re-acquisition of lock class `{}` (rank {}) already held in this scope",
                    new.name, new.rank
                ),
            });
        }
    }
}

fn push_guard(scopes: &mut [Vec<Guard>], name: Option<String>, class: usize) {
    if let Some(top) = scopes.last_mut() {
        top.push(Guard { name, class });
    }
}

fn release_named(scopes: &mut [Vec<Guard>], name: &str) {
    for scope in scopes.iter_mut().rev() {
        if let Some(pos) = scope.iter().rposition(|g| g.name.as_deref() == Some(name)) {
            scope.remove(pos);
            return;
        }
    }
}

/// Binding name of a `let` statement: the last plain identifier
/// between `let` and `=` (skipping `mut`/`ref` and enum/wrapper
/// constructors), so `let mut g`, `let Some(g)`, `let (n, g)` all
/// yield `g`. Type ascriptions stop the scan at `:`.
fn let_binding_name(toks: &[crate::lexer::Tok], let_idx: usize) -> Option<String> {
    let mut name = None;
    let mut j = let_idx + 1;
    let mut in_type = false;
    while let Some(t) = toks.get(j) {
        match &t.kind {
            TokKind::Punct('=') => break,
            TokKind::Punct(';') | TokKind::Punct('{') => return None,
            TokKind::Punct(':') => {
                // `let g: Guard = …` — but `::` paths inside types are
                // handled by staying in type position until `=`.
                in_type = true;
            }
            TokKind::Ident if !in_type => {
                let s = t.text.as_str();
                if !matches!(s, "mut" | "ref" | "Some" | "Ok" | "Err" | "Box") {
                    name = Some(s.to_string());
                }
            }
            _ => {}
        }
        j += 1;
        if j > let_idx + 64 {
            return None;
        }
    }
    name
}
