//! Pass 1: lock-order checking against `manifest/lock_ranks.txt`.
//!
//! Both modes share the lexical guard tracker in [`crate::dataflow`]:
//! `let`-bound results of `.lock()/.read()/.write()` (and of manifest
//! `fn … guard` calls) are live guards until their scope closes or an
//! explicit `drop(name)`. At every acquisition the live guard set is
//! checked: acquiring a class whose rank is **smaller** than a held
//! class's rank is an inversion (ranks order acquisition, outermost
//! first); acquiring a held class again is a re-acquire unless the
//! class is `multi` (sharded siblings taken in a canonical order).
//!
//! Full mode additionally propagates each function's *entry lock-set*
//! through the whole-workspace call graph to a fixed point, so an
//! acquisition three frames beneath a held guard is flagged with the
//! complete inter-file call chain. `--fast` skips the propagation and
//! keeps the historical one-level approximation for pre-commit runs.
//!
//! Non-blocking acquisitions (`try_*`, manifest `try` fns) cannot
//! participate in a deadlock cycle's wait edge, so they are tracked
//! as held but never reported as inversions themselves.

use crate::callgraph::CallGraph;
use crate::dataflow::{self, FnFacts};
use crate::{Config, Finding, SourceFile};

pub fn run(
    cfg: &Config,
    files: &[SourceFile],
    graph: &CallGraph,
    facts: &[FnFacts],
) -> Vec<Finding> {
    let mut out = Vec::new();
    intraprocedural(cfg, files, graph, facts, &mut out);
    if !cfg.fast {
        interprocedural(cfg, files, graph, facts, &mut out);
    }
    out
}

/// Checks every acquisition against the guards lexically held at that
/// point — identical in `--fast` and full mode.
fn intraprocedural(
    cfg: &Config,
    files: &[SourceFile],
    graph: &CallGraph,
    facts: &[FnFacts],
    out: &mut Vec<Finding>,
) {
    let m = &cfg.lock_ranks;
    for (fi, ff) in facts.iter().enumerate() {
        let file = &files[graph.fns[fi].file];
        for u in &ff.unranked {
            out.push(Finding {
                pass: "lock_order",
                file: file.rel.clone(),
                line: u.line,
                key: "unranked".to_string(),
                msg: u.msg.clone(),
            });
        }
        for a in &ff.acquires {
            if a.non_blocking {
                continue;
            }
            let new = &m.classes[a.class];
            for h in &a.held {
                let held = &m.classes[h.class];
                if held.rank > new.rank {
                    out.push(Finding {
                        pass: "lock_order",
                        file: file.rel.clone(),
                        line: a.line,
                        key: format!("{}<-{}", held.name, new.name),
                        msg: format!(
                            "lock-order inversion: acquiring `{}` (rank {}) while holding \
                             `{}` (rank {})",
                            new.name, new.rank, held.name, held.rank
                        ),
                    });
                } else if h.class == a.class && !new.multi {
                    out.push(Finding {
                        pass: "lock_order",
                        file: file.rel.clone(),
                        line: a.line,
                        key: format!("{}x2", new.name),
                        msg: format!(
                            "re-acquisition of lock class `{}` (rank {}) already held in \
                             this scope",
                            new.name, new.rank
                        ),
                    });
                }
            }
        }
    }
}

/// Checks every acquisition against the function's propagated *entry*
/// lock-set: classes held by some caller (any number of frames up)
/// whenever this function can run.
fn interprocedural(
    cfg: &Config,
    files: &[SourceFile],
    graph: &CallGraph,
    facts: &[FnFacts],
    out: &mut Vec<Finding>,
) {
    let m = &cfg.lock_ranks;
    let entry = dataflow::propagate(graph, facts);
    for (fi, ff) in facts.iter().enumerate() {
        if entry[fi].is_empty() {
            continue;
        }
        let file = &files[graph.fns[fi].file];
        let mut held: Vec<usize> = entry[fi].keys().copied().collect();
        held.sort_by_key(|&c| m.classes[c].rank);
        for a in &ff.acquires {
            if a.non_blocking {
                continue;
            }
            let new = &m.classes[a.class];
            for &c in &held {
                // A class both inherited and lexically re-held here is
                // reported by the intraprocedural check already.
                if a.held.iter().any(|h| h.class == c) {
                    continue;
                }
                let held_class = &m.classes[c];
                let chain = dataflow::chain_for(&entry, graph, files, fi, c);
                // Anchor at the origin frame — the call made while the
                // lock is lexically held — so an `allow` there covers
                // exactly this chain, not every caller of the shared
                // callee that performs the acquisition.
                let (anchor_file, anchor_line) = match dataflow::origin_for(&entry, fi, c) {
                    Some((origin, call_line)) => {
                        (files[graph.fns[origin].file].rel.clone(), call_line)
                    }
                    None => (file.rel.clone(), a.line),
                };
                if held_class.rank > new.rank {
                    out.push(Finding {
                        pass: "lock_order",
                        file: anchor_file,
                        line: anchor_line,
                        key: format!("{}<-{}", held_class.name, new.name),
                        msg: format!(
                            "lock-order inversion (interprocedural): `{}` (rank {}) acquired \
                             at {}:{} with `{}` (rank {}) held by a caller; call chain: {}",
                            new.name,
                            new.rank,
                            file.rel,
                            a.line,
                            held_class.name,
                            held_class.rank,
                            chain
                        ),
                    });
                } else if c == a.class && !new.multi {
                    out.push(Finding {
                        pass: "lock_order",
                        file: anchor_file,
                        line: anchor_line,
                        key: format!("{}x2", new.name),
                        msg: format!(
                            "re-acquisition (interprocedural) of lock class `{}` (rank {}) at \
                             {}:{}, already held by a caller; call chain: {}",
                            new.name, new.rank, file.rel, a.line, chain
                        ),
                    });
                }
            }
        }
    }
}
