//! Pass 4: panic audit. `unwrap()/expect()/panic!` in non-test library
//! code either documents a real invariant (then it carries
//! `// morph-lint: allow(panic, why the invariant holds)`) or it is a
//! latent crash on an error path and should return a `DbError`
//! instead. Test modules and the experiment drivers are exempt;
//! assertions (`assert!`/`debug_assert!`) are not flagged — they *are*
//! invariant documentation.

use crate::lexer::TokKind;
use crate::{Config, Finding, SourceFile};

const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

pub fn run(cfg: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut out = Vec::new();
    for f in files {
        if cfg
            .panic_exempt
            .iter()
            .any(|p| f.rel.starts_with(p.as_str()))
        {
            continue;
        }
        let toks = &f.lexed.toks;
        for (i, t) in toks.iter().enumerate() {
            if f.regions.in_test[i] || t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text.as_str();
            let after_dot = i > 0 && toks[i - 1].is_punct('.');
            let what = if after_dot
                && name == "unwrap"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
                && toks.get(i + 2).is_some_and(|n| n.is_punct(')'))
            {
                Some("unwrap()")
            } else if after_dot
                && name == "expect"
                && toks.get(i + 1).is_some_and(|n| n.is_punct('('))
            {
                Some("expect()")
            } else if PANIC_MACROS.contains(&name)
                && toks.get(i + 1).is_some_and(|n| n.is_punct('!'))
            {
                Some("panic-family macro")
            } else {
                None
            };
            if let Some(what) = what {
                out.push(Finding {
                    pass: "panic",
                    file: f.rel.clone(),
                    line: t.line,
                    key: name.to_string(),
                    msg: format!(
                        "{what} in non-test library code: return a DbError or annotate \
                         `// morph-lint: allow(panic, why the invariant holds)`"
                    ),
                });
            }
        }
    }
    out
}
