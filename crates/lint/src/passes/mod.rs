pub mod atomics;
pub mod crash_points;
pub mod lock_order;
pub mod nondet;
pub mod panic_audit;
pub mod purity;
pub mod wal_bytes;

use crate::lexer::{Tok, TokKind};

/// Reconstruct the dotted receiver chain ending at the method/field
/// identifier `toks[i]`, walking left over `.`-separated segments.
/// Calls collapse to `name()` and index expressions to `name[]`, so
/// `self.shards[self.route(&k)].write` becomes `self.shards[].write`
/// and `db.locks().lock` stays `db.locks().lock`. The chain stops at
/// anything else (`::` paths, operators, statement starts).
pub fn chain_ending_at(toks: &[Tok], i: usize) -> String {
    let mut segs: Vec<String> = vec![toks[i].text.clone()];
    let mut j = i; // index of the first token of the chain so far
    loop {
        if j == 0 || !toks[j - 1].is_punct('.') {
            break;
        }
        let mut k = j - 2; // token before the dot
        let mut seg_suffix = "";
        loop {
            match toks.get(k).map(|t| &t.kind) {
                Some(TokKind::Punct(')')) => {
                    let Some(open) = match_back(toks, k, '(', ')') else {
                        return segs_join(segs);
                    };
                    k = match open.checked_sub(1) {
                        Some(v) => v,
                        None => return segs_join(segs),
                    };
                    seg_suffix = "()";
                }
                Some(TokKind::Punct(']')) => {
                    let Some(open) = match_back(toks, k, '[', ']') else {
                        return segs_join(segs);
                    };
                    k = match open.checked_sub(1) {
                        Some(v) => v,
                        None => return segs_join(segs),
                    };
                    seg_suffix = "[]";
                }
                Some(TokKind::Ident) => {
                    segs.push(format!("{}{}", toks[k].text, seg_suffix));
                    j = k;
                    break;
                }
                _ => return segs_join(segs),
            }
        }
    }
    segs_join(segs)
}

fn segs_join(mut segs: Vec<String>) -> String {
    segs.reverse();
    segs.join(".")
}

/// Index of the `open` delimiter matching the `close` at `from`,
/// scanning backwards and counting only that delimiter pair.
fn match_back(toks: &[Tok], from: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0isize;
    let mut k = from;
    loop {
        if toks[k].is_punct(close) {
            depth += 1;
        } else if toks[k].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// `chain` ends with the dotted `pat` on a segment boundary.
pub fn chain_matches(chain: &str, pat: &str) -> bool {
    chain == pat
        || chain
            .strip_suffix(pat)
            .is_some_and(|head| head.ends_with('.'))
}
