//! Lexical region analysis over the token stream: which tokens are
//! test code (`#[cfg(test)]` modules, `#[test]` functions, `tests/`
//! trees are excluded at the walker level), and which named `fn` each
//! token belongs to. Passes use this to skip test code and to scope
//! findings ("inside `drain_staged`").

use crate::lexer::{Tok, TokKind};

#[derive(Debug)]
pub struct Regions {
    /// Per-token: true when the token is inside test-only code.
    pub in_test: Vec<bool>,
    /// Per-token: index into `fn_names` of the innermost enclosing fn.
    pub fn_of: Vec<Option<u32>>,
    pub fn_names: Vec<String>,
}

impl Regions {
    pub fn fn_name(&self, tok_idx: usize) -> Option<&str> {
        self.fn_of[tok_idx].map(|i| self.fn_names[i as usize].as_str())
    }
}

/// Attribute gathered from `# [ ... ]`: the flattened identifier list.
fn attr_idents(toks: &[Tok], open: usize) -> (Vec<&str>, usize) {
    // `open` indexes the `[`; returns idents inside and index past `]`.
    let mut depth = 0usize;
    let mut idents = Vec::new();
    let mut i = open;
    while i < toks.len() {
        match &toks[i].kind {
            TokKind::Punct('[') => depth += 1,
            TokKind::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, i + 1);
                }
            }
            TokKind::Ident => idents.push(toks[i].text.as_str()),
            _ => {}
        }
        i += 1;
    }
    (idents, i)
}

fn is_test_attr(idents: &[&str]) -> bool {
    // #[test], #[bench], #[cfg(test)], #[cfg(all(test, ...))]
    matches!(idents.first(), Some(&"test") | Some(&"bench"))
        || (idents.first() == Some(&"cfg") && idents.contains(&"test"))
}

pub fn analyze(toks: &[Tok]) -> Regions {
    let n = toks.len();
    let mut in_test = vec![false; n];
    let mut fn_of: Vec<Option<u32>> = vec![None; n];
    let mut fn_names: Vec<String> = Vec::new();

    // Stack of (brace_depth_at_open, Option<fn_idx>, test) regions.
    let mut depth = 0usize;
    let mut region_stack: Vec<(usize, Option<u32>, bool)> = Vec::new();
    // Pending item context set by attributes/keywords, applied to the
    // next `{` that opens an item body.
    let mut pending_test_attr = false;
    let mut pending_fn: Option<u32> = None;
    let mut pending_body = false; // saw `fn name(..)` / `mod name`, awaiting `{`
    let mut nest = 0usize; // (..) / [..] nesting, so `[u8; 4]` semicolons don't cancel

    let mut i = 0usize;
    while i < n {
        let cur_test = region_stack.iter().any(|r| r.2) || pending_test_attr;
        let cur_fn = region_stack.iter().rev().find_map(|r| r.1);
        in_test[i] = cur_test;
        fn_of[i] = cur_fn;

        match &toks[i].kind {
            TokKind::Punct('#') if i + 1 < n && toks[i + 1].is_punct('[') => {
                let (idents, next) = attr_idents(toks, i + 1);
                if is_test_attr(&idents) {
                    pending_test_attr = true;
                }
                for j in i..next.min(n) {
                    in_test[j] = cur_test;
                    fn_of[j] = cur_fn;
                }
                i = next;
                continue;
            }
            TokKind::Ident
                if toks[i].text == "fn" && i + 1 < n && toks[i + 1].kind == TokKind::Ident =>
            {
                fn_names.push(toks[i + 1].text.clone());
                pending_fn = Some((fn_names.len() - 1) as u32);
                pending_body = true;
            }
            TokKind::Ident if toks[i].text == "mod" => {
                pending_body = true;
            }
            TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => nest = nest.saturating_sub(1),
            TokKind::Punct(';') if pending_body && nest == 0 => {
                // `fn f();` declaration or `mod m;` — no body follows.
                pending_body = false;
                pending_fn = None;
                pending_test_attr = false;
            }
            TokKind::Punct('{') => {
                if pending_body {
                    region_stack.push((depth, pending_fn, pending_test_attr));
                    pending_body = false;
                    pending_fn = None;
                    pending_test_attr = false;
                }
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if let Some(top) = region_stack.last() {
                    if top.0 == depth {
                        region_stack.pop();
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }

    Regions {
        in_test,
        fn_of,
        fn_names,
    }
}
