//! Whole-workspace call graph (DESIGN.md §12).
//!
//! Walks every lexed file once and records each function definition —
//! with its impl/trait context as a qualified `Type::name` — plus the
//! token range of its body, so the dataflow pass can attribute lock
//! acquisitions and call sites to the function they occur in.
//!
//! Resolution is name-based (this is a lexer, not a type checker):
//! a call `x.foo(…)` or `foo(…)` resolves to every workspace function
//! named `foo`; a path call `Type::foo(…)` resolves to the functions
//! defined inside `impl Type` blocks. Names that collide with common
//! std-library methods (`get`, `insert`, `lock`, `append`, …) are
//! never resolved — edges through those seams are either irrelevant
//! or covered explicitly by a manifest `fn` summary, which takes
//! priority over the graph (see `passes::lock_order`). The result is
//! a deliberately *under*-approximated edge set over distinctive
//! workspace names: precise enough to chase multi-frame inversions,
//! conservative enough to stay false-positive-free without type
//! information.

use std::collections::HashMap;

use crate::lexer::TokKind;
use crate::SourceFile;

/// One workspace function definition.
#[derive(Debug)]
pub struct FnInfo {
    /// Index into the file list handed to [`CallGraph::build`].
    pub file: usize,
    /// Bare name (`snapshot_read`).
    pub name: String,
    /// Qualified name (`Database::snapshot_read`), equal to `name`
    /// for free functions.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range `[start, end)` of the body (the tokens
    /// between the opening `{` and its matching `}`).
    pub body: (usize, usize),
}

/// The call graph: definitions plus name/qualified-name indexes.
#[derive(Debug, Default)]
pub struct CallGraph {
    pub fns: Vec<FnInfo>,
    by_name: HashMap<String, Vec<usize>>,
    by_qual: HashMap<String, Vec<usize>>,
    /// Workspace crate names (`core`, `wal`, …) in index order.
    crate_names: Vec<String>,
    /// Crate index of each source file (None outside `crates/<x>/`).
    file_crate: Vec<Option<usize>>,
    /// Transitive dependency closure: `reach[a][b]` ⇔ crate `a` can
    /// call into crate `b` (includes `a == b`).
    reach: Vec<Vec<bool>>,
}

/// Method and free-function names that are never resolved to
/// workspace definitions: they collide with std-library methods on
/// collections, iterators, locks, strings, and smart pointers, so a
/// name-based edge through them would wire unrelated code together.
/// Load-bearing seams hiding behind such a name (`log.append`,
/// `locks().lock`, `catalog.get`) are covered by manifest `fn`
/// summaries instead, which apply in both `--fast` and full mode.
const UNRESOLVED_NAMES: &[&str] = &[
    // construction / conversion
    "new",
    "default",
    "clone",
    "from",
    "into",
    "try_from",
    "try_into",
    "to_string",
    "to_owned",
    "to_vec",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_deref",
    "as_slice",
    "parse",
    "from_str",
    "build",
    // Option / Result plumbing
    "unwrap",
    "expect",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "ok_or",
    "ok_or_else",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    "map_err",
    "and_then",
    "or_else",
    "take",
    "replace",
    "get_or_insert_with",
    "as_option",
    // collections
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_back",
    "pop_front",
    "append",
    "extend",
    "clear",
    "retain",
    "drain",
    "entry",
    "or_insert",
    "or_insert_with",
    "or_default",
    "contains",
    "contains_key",
    "keys",
    "values",
    "values_mut",
    "len",
    "is_empty",
    "truncate",
    "split_off",
    "reserve",
    "shrink_to_fit",
    "binary_search",
    "binary_search_by",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "dedup",
    "swap_remove",
    "first",
    "last",
    "front",
    "back",
    "range",
    "iter",
    "iter_mut",
    "into_iter",
    "split_at",
    "chunks",
    "windows",
    "concat",
    "join",
    "resize",
    "fill",
    "to_le_bytes",
    "from_le_bytes",
    // iterators
    "next",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "collect",
    "fold",
    "for_each",
    "find",
    "find_map",
    "position",
    "any",
    "all",
    "count",
    "sum",
    "product",
    "min",
    "max",
    "min_by",
    "max_by",
    "min_by_key",
    "max_by_key",
    "rev",
    "zip",
    "chain",
    "enumerate",
    "skip",
    "skip_while",
    "take_while",
    "step_by",
    "peekable",
    "peek",
    "cloned",
    "copied",
    "cycle",
    "by_ref",
    "nth",
    "unzip",
    "partition",
    "last_mut",
    // strings / paths / io
    "trim",
    "trim_start",
    "trim_end",
    "starts_with",
    "ends_with",
    "strip_prefix",
    "strip_suffix",
    "split_whitespace",
    "splitn",
    "lines",
    "chars",
    "bytes",
    "repeat",
    "replace_all",
    "display",
    "exists",
    "is_dir",
    "is_file",
    "extension",
    "file_stem",
    "file_name",
    "read_to_string",
    "write_all",
    "read_exact",
    "flush",
    "sync_all",
    "sync_data",
    "seek",
    "rewind",
    "set_len",
    "metadata",
    "canonicalize",
    // sync / threads / time
    "lock",
    "try_lock",
    "read",
    "write",
    "try_read",
    "try_write",
    "wait",
    "wait_for",
    "wait_while",
    "notify_one",
    "notify_all",
    "spawn",
    "join_handle",
    "scope",
    "park",
    "unpark",
    "elapsed",
    "duration_since",
    "checked_add",
    "checked_sub",
    "checked_mul",
    "saturating_add",
    "saturating_sub",
    "saturating_mul",
    "wrapping_add",
    "wrapping_sub",
    // atomics (the atomics pass owns these)
    "load",
    "store",
    "swap",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    // fmt / cmp / misc
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "index",
    "index_mut",
    "deref",
    "deref_mut",
    "drop",
    "abs",
    "powi",
    "powf",
    "sqrt",
    "floor",
    "ceil",
    "round",
    "clamp",
    "rem_euclid",
    "to_bits",
    "signum",
    "min_assign",
    "max_assign",
    "borrow",
    "borrow_mut",
    "upgrade",
    "downgrade",
    "eprintln",
    "println",
    "print",
    "format",
    "write_fmt",
    "send",
    "recv",
    "try_recv",
    "call",
    "call_once",
    "finish",
    "hasher",
    "update",
    "reset",
    "resolve",
    "emit",
    "size_hint",
    "description",
    "source",
    "status",
];

/// Whether `name` participates in name-based call resolution.
pub fn resolvable(name: &str) -> bool {
    !UNRESOLVED_NAMES.contains(&name)
}

impl CallGraph {
    /// Functions named `name` (empty for blacklisted names).
    pub fn resolve_name(&self, name: &str) -> &[usize] {
        if !resolvable(name) {
            return &[];
        }
        self.by_name.get(name).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Functions defined as `Type::name`; falls back to plain name
    /// resolution when no impl of that type defines one (trait-object
    /// dispatch, re-exports).
    pub fn resolve_qual(&self, ty: &str, name: &str) -> &[usize] {
        let qual = format!("{ty}::{name}");
        match self.by_qual.get(&qual) {
            Some(v) => v.as_slice(),
            None => self.resolve_name(name),
        }
    }

    /// Every definition index for an exact qualified name.
    pub fn defs_of_qual(&self, qual: &str) -> &[usize] {
        self.by_qual.get(qual).map(|v| v.as_slice()).unwrap_or(&[])
    }

    /// Whether a call from `caller`'s crate can reach `target`'s crate
    /// through the workspace dependency graph. Unknown crates (files
    /// outside `crates/<x>/`, or an empty dependency map as in the
    /// fixture harness) resolve permissively.
    pub fn cross_ok(&self, caller: usize, target: usize) -> bool {
        let a = self.file_crate[self.fns[caller].file];
        let b = self.file_crate[self.fns[target].file];
        match (a, b) {
            (Some(a), Some(b)) => self.reach[a][b],
            _ => true,
        }
    }

    /// Build the graph over every non-test function definition.
    /// `crate_deps` carries each workspace member's direct dependencies
    /// (see `Config::crate_deps`); resolution uses its transitive
    /// closure to refuse impossible cross-crate edges.
    pub fn build(files: &[SourceFile], crate_deps: &HashMap<String, Vec<String>>) -> CallGraph {
        let mut g = CallGraph::default();
        for (fi, f) in files.iter().enumerate() {
            collect_fns(fi, f, &mut g);
        }
        for (i, info) in g.fns.iter().enumerate() {
            g.by_name.entry(info.name.clone()).or_default().push(i);
            g.by_qual.entry(info.qual.clone()).or_default().push(i);
        }

        let mut idx_of: HashMap<&str, usize> = HashMap::new();
        for name in crate_deps.keys() {
            let i = g.crate_names.len();
            if idx_of.insert(name.as_str(), i).is_none() {
                g.crate_names.push(name.clone());
            }
        }
        g.file_crate = files
            .iter()
            .map(|f| {
                let rest = f.rel.strip_prefix("crates/")?;
                let name = &rest[..rest.find('/')?];
                idx_of.get(name).copied()
            })
            .collect();
        let n = g.crate_names.len();
        g.reach = vec![vec![false; n]; n];
        for (a, name) in g.crate_names.iter().enumerate() {
            // DFS over direct edges from `a`.
            let mut stack = vec![name.as_str()];
            g.reach[a][a] = true;
            while let Some(cur) = stack.pop() {
                for dep in crate_deps.get(cur).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if let Some(&b) = idx_of.get(dep.as_str()) {
                        if !g.reach[a][b] {
                            g.reach[a][b] = true;
                            stack.push(dep.as_str());
                        }
                    }
                }
            }
        }
        g
    }
}

/// Impl/trait context: the type name a `fn` inside the block belongs
/// to. `impl Foo`, `impl<T> Foo<T>`, `impl Trait for Foo`, and
/// `trait Bar` (default methods) all yield a context.
fn impl_context(toks: &[crate::lexer::Tok], impl_idx: usize) -> Option<String> {
    let n = toks.len();
    let mut i = impl_idx + 1;
    let mut ty: Option<String> = None;
    let mut after_for = false;
    let mut angle = 0usize;
    while i < n {
        match &toks[i].kind {
            TokKind::Punct('<') => angle += 1,
            TokKind::Punct('>') => angle = angle.saturating_sub(1),
            TokKind::Punct('{') | TokKind::Punct(';') if angle == 0 => break,
            TokKind::Ident if angle == 0 => {
                let t = toks[i].text.as_str();
                if t == "for" {
                    after_for = true;
                    ty = None;
                } else if t == "where" {
                    break;
                } else if ty.is_none() || after_for {
                    // First ident of the (possibly dotted) type path;
                    // later path segments (`a::b::Ty`) overwrite so the
                    // final segment wins.
                    ty = Some(t.to_string());
                    after_for = false;
                } else if toks[i - 1].is_punct(':') {
                    ty = Some(t.to_string());
                }
            }
            _ => {}
        }
        i += 1;
        if i > impl_idx + 64 {
            break;
        }
    }
    ty
}

fn collect_fns(fi: usize, f: &SourceFile, g: &mut CallGraph) {
    let toks = &f.lexed.toks;
    let n = toks.len();
    // (depth_at_open, kind) regions; kind: Some(fn index in g.fns)
    // for fn bodies, None for impl/trait/other blocks.
    let mut depth = 0usize;
    let mut stack: Vec<(usize, Option<usize>, Option<String>)> = Vec::new();
    let mut impl_ctx: Vec<(usize, String)> = Vec::new(); // (depth_at_open, type)
    let mut pending_fn: Option<(String, usize)> = None; // (name, line)
    let mut pending_impl: Option<String> = None;
    let mut pending_body = false;
    let mut nest = 0usize; // () / [] nesting

    let mut i = 0usize;
    while i < n {
        match &toks[i].kind {
            TokKind::Ident if toks[i].text == "impl" || toks[i].text == "trait" => {
                pending_impl = impl_context(toks, i);
                pending_body = true;
                pending_fn = None;
            }
            TokKind::Ident
                if toks[i].text == "fn"
                    && i + 1 < n
                    && toks[i + 1].kind == TokKind::Ident
                    && !f.regions.in_test[i] =>
            {
                pending_fn = Some((toks[i + 1].text.clone(), toks[i].line));
                pending_body = true;
            }
            TokKind::Ident if toks[i].text == "mod" => {
                pending_body = true;
                pending_fn = None;
            }
            TokKind::Punct('(') | TokKind::Punct('[') => nest += 1,
            TokKind::Punct(')') | TokKind::Punct(']') => nest = nest.saturating_sub(1),
            TokKind::Punct(';') if nest == 0 => {
                // `fn f(…);` trait declaration or `mod m;` — no body.
                pending_fn = None;
                pending_body = false;
            }
            TokKind::Punct('{') => {
                if pending_body || pending_fn.is_some() {
                    let fn_slot = pending_fn.take().map(|(name, line)| {
                        let ctx = impl_ctx.last().map(|(_, t)| t.as_str());
                        let qual = match ctx {
                            Some(t) => format!("{t}::{name}"),
                            None => name.clone(),
                        };
                        g.fns.push(FnInfo {
                            file: fi,
                            name,
                            qual,
                            line,
                            body: (i + 1, i + 1), // end patched on close
                        });
                        g.fns.len() - 1
                    });
                    if fn_slot.is_none() {
                        if let Some(t) = pending_impl.take() {
                            impl_ctx.push((depth, t));
                        }
                    }
                    stack.push((depth, fn_slot, None));
                    pending_body = false;
                    pending_impl = None;
                }
                depth += 1;
            }
            TokKind::Punct('}') => {
                depth = depth.saturating_sub(1);
                if let Some(top) = stack.last() {
                    if top.0 == depth {
                        if let Some(fn_idx) = top.1 {
                            g.fns[fn_idx].body.1 = i;
                        }
                        stack.pop();
                    }
                }
                if let Some(top) = impl_ctx.last() {
                    if top.0 == depth {
                        impl_ctx.pop();
                    }
                }
            }
            _ => {}
        }
        i += 1;
    }
}
