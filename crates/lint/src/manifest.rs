//! Checked-in manifests the passes are seeded from.
//!
//! `manifest/lock_ranks.txt` — the lock-rank table (pass 1). Grammar,
//! one directive per line, `#` comments:
//!
//! ```text
//! class <name> <rank> [multi]
//! site  <class> <file-substring> <receiver-suffix>
//! fn    <class> <call-suffix> [guard] [try]
//! ```
//!
//! Ranks order *acquisition*: a lock may only be acquired while every
//! lock already held has a **smaller** rank (outermost = smallest).
//! `multi` permits nested same-class acquisition (sharded siblings
//! taken in index order). `site` maps a raw `.lock()/.read()/.write()`
//! receiver to a class; `fn` maps a call (one-level call-graph edge)
//! to the class that callee acquires internally — `guard` if a `let`
//! binding of its result keeps the lock held, `try` if the acquisition
//! is non-blocking (exempt from inversion checks, still tracked).
//!
//! `manifest/crash_points.txt` — the crash-point registry (pass 3 and
//! the sim kill matrix). Grammar:
//!
//! ```text
//! point <name> sites=<n> strategy=<any|bc|nba|nbc> kind=<loop|step> [inject] [optional]
//! ```
//!
//! `manifest/atomics.txt` — the atomics ordering protocol (pass 6).
//! Grammar:
//!
//! ```text
//! atomic <field> <decl-file-substring> <publish|consume|counter|seal>
//! ```
//!
//! The role fixes the minimum `Ordering` per site kind — see
//! `passes::atomics` for the lattice. Every `Atomic*` struct field in
//! the strict zone must be declared, and every declared field must
//! still exist, so the manifest and the code cannot drift apart.

use std::collections::HashMap;

#[derive(Debug, Clone)]
pub struct LockClass {
    pub name: String,
    pub rank: u32,
    pub multi: bool,
}

#[derive(Debug, Clone)]
pub struct SitePattern {
    pub class: usize,
    /// Substring of the repo-relative path this pattern applies to.
    pub file_sub: String,
    /// Dotted receiver suffix, e.g. `shard.map` or `self.shards[]`.
    pub recv: String,
}

#[derive(Debug, Clone)]
pub struct FnPattern {
    pub class: usize,
    /// Dotted call suffix, e.g. `crash_point` or `log.append`.
    pub call: String,
    /// `let`-binding the result keeps the lock held.
    pub guard: bool,
    /// Non-blocking acquisition: tracked but exempt from order checks.
    pub non_blocking: bool,
}

#[derive(Debug, Default)]
pub struct LockRanks {
    pub classes: Vec<LockClass>,
    pub sites: Vec<SitePattern>,
    pub fns: Vec<FnPattern>,
}

impl LockRanks {
    pub fn class_idx(&self, name: &str) -> Option<usize> {
        self.classes.iter().position(|c| c.name == name)
    }

    pub fn parse(src: &str) -> Result<LockRanks, String> {
        let mut m = LockRanks::default();
        let mut ranks_seen: HashMap<u32, String> = HashMap::new();
        for (ln, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let err = |m: String| format!("lock_ranks.txt:{}: {}", ln + 1, m);
            match parts.next() {
                Some("class") => {
                    let name = parts.next().ok_or_else(|| err("missing name".into()))?;
                    let rank: u32 = parts
                        .next()
                        .and_then(|r| r.parse().ok())
                        .ok_or_else(|| err("missing/bad rank".into()))?;
                    let multi = parts.next() == Some("multi");
                    if let Some(prev) = ranks_seen.insert(rank, name.to_string()) {
                        return Err(err(format!("rank {rank} already used by {prev}")));
                    }
                    if m.class_idx(name).is_some() {
                        return Err(err(format!("duplicate class {name}")));
                    }
                    m.classes.push(LockClass {
                        name: name.to_string(),
                        rank,
                        multi,
                    });
                }
                Some("site") => {
                    let class = parts.next().ok_or_else(|| err("missing class".into()))?;
                    let file_sub = parts.next().ok_or_else(|| err("missing file".into()))?;
                    let recv = parts.next().ok_or_else(|| err("missing receiver".into()))?;
                    let class = m
                        .class_idx(class)
                        .ok_or_else(|| err(format!("unknown class {class}")))?;
                    m.sites.push(SitePattern {
                        class,
                        file_sub: file_sub.to_string(),
                        recv: recv.to_string(),
                    });
                }
                Some("fn") => {
                    let class = parts.next().ok_or_else(|| err("missing class".into()))?;
                    let call = parts.next().ok_or_else(|| err("missing call".into()))?;
                    let class = m
                        .class_idx(class)
                        .ok_or_else(|| err(format!("unknown class {class}")))?;
                    let mut guard = false;
                    let mut non_blocking = false;
                    for flag in parts {
                        match flag {
                            "guard" => guard = true,
                            "try" => non_blocking = true,
                            other => return Err(err(format!("unknown flag {other}"))),
                        }
                    }
                    m.fns.push(FnPattern {
                        class,
                        call: call.to_string(),
                        guard,
                        non_blocking,
                    });
                }
                Some(other) => {
                    return Err(format!(
                        "lock_ranks.txt:{}: unknown directive {other}",
                        ln + 1
                    ))
                }
                None => {}
            }
        }
        Ok(m)
    }
}

/// Which sync strategies a crash point can fire under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointStrategy {
    Any,
    Bc,
    Nba,
    Nbc,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PointKind {
    /// Fires many times per run (kill at first/middle/last occurrence).
    Loop,
    /// Fires a bounded number of times (kill at the last occurrence).
    Step,
}

#[derive(Debug, Clone)]
pub struct CrashPoint {
    pub name: String,
    /// Number of `crash_point`/literal sites in non-test code.
    pub sites: usize,
    pub strategy: PointStrategy,
    pub kind: PointKind,
    /// Safe workload-injection point (no table latches held there).
    pub inject: bool,
    /// May legitimately never fire in a census (e.g. abort paths);
    /// exempt from the kill-matrix coverage requirement.
    pub optional: bool,
    /// 1-based line in the manifest file, for findings.
    pub line: usize,
}

#[derive(Debug, Default)]
pub struct CrashManifest {
    pub points: Vec<CrashPoint>,
}

impl CrashManifest {
    pub fn get(&self, name: &str) -> Option<&CrashPoint> {
        self.points.iter().find(|p| p.name == name)
    }

    pub fn parse(src: &str) -> Result<CrashManifest, String> {
        let mut m = CrashManifest::default();
        for (ln, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("crash_points.txt:{}: {}", ln + 1, msg);
            let mut parts = line.split_whitespace();
            if parts.next() != Some("point") {
                return Err(err("expected `point`".into()));
            }
            let name = parts.next().ok_or_else(|| err("missing name".into()))?;
            let mut point = CrashPoint {
                name: name.to_string(),
                sites: 1,
                strategy: PointStrategy::Any,
                kind: PointKind::Step,
                inject: false,
                optional: false,
                line: ln + 1,
            };
            for field in parts {
                if let Some(v) = field.strip_prefix("sites=") {
                    point.sites = v.parse().map_err(|_| err(format!("bad sites count {v}")))?;
                } else if let Some(v) = field.strip_prefix("strategy=") {
                    point.strategy = match v {
                        "any" => PointStrategy::Any,
                        "bc" => PointStrategy::Bc,
                        "nba" => PointStrategy::Nba,
                        "nbc" => PointStrategy::Nbc,
                        other => return Err(err(format!("bad strategy {other}"))),
                    };
                } else if let Some(v) = field.strip_prefix("kind=") {
                    point.kind = match v {
                        "loop" => PointKind::Loop,
                        "step" => PointKind::Step,
                        other => return Err(err(format!("bad kind {other}"))),
                    };
                } else if field == "inject" {
                    point.inject = true;
                } else if field == "optional" {
                    point.optional = true;
                } else {
                    return Err(err(format!("unknown field {field}")));
                }
            }
            m.points.push(point);
        }
        Ok(m)
    }
}

/// Protocol role of an atomic field; each role fixes the minimum
/// `Ordering` the atomics pass accepts per site kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomicRole {
    /// Single-writer published value (watermark, flag): stores release,
    /// loads acquire, RMWs at least release.
    Publish,
    /// Value whose RMWs participate on both sides of the handoff
    /// (fence words, prune floors): like `publish` plus `AcqRel` RMWs.
    Consume,
    /// Statistics / ID allocation: `Relaxed` is fine everywhere.
    Counter,
    /// Single-total-order word (lazy cut-over token): `SeqCst`
    /// everywhere.
    Seal,
}

impl AtomicRole {
    pub fn name(self) -> &'static str {
        match self {
            AtomicRole::Publish => "publish",
            AtomicRole::Consume => "consume",
            AtomicRole::Counter => "counter",
            AtomicRole::Seal => "seal",
        }
    }
}

#[derive(Debug, Clone)]
pub struct AtomicEntry {
    /// Struct-field (or static) identifier.
    pub field: String,
    /// Substring of the repo-relative path of the *declaring* file —
    /// disambiguates same-named fields across crates.
    pub file_sub: String,
    pub role: AtomicRole,
    /// 1-based line in the manifest file, for findings.
    pub line: usize,
}

#[derive(Debug, Default)]
pub struct AtomicsManifest {
    pub entries: Vec<AtomicEntry>,
}

impl AtomicsManifest {
    pub fn parse(src: &str) -> Result<AtomicsManifest, String> {
        let mut m = AtomicsManifest::default();
        for (ln, raw) in src.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let err = |msg: String| format!("atomics.txt:{}: {}", ln + 1, msg);
            let mut parts = line.split_whitespace();
            if parts.next() != Some("atomic") {
                return Err(err("expected `atomic`".into()));
            }
            let field = parts.next().ok_or_else(|| err("missing field".into()))?;
            let file_sub = parts.next().ok_or_else(|| err("missing file".into()))?;
            let role = match parts.next() {
                Some("publish") => AtomicRole::Publish,
                Some("consume") => AtomicRole::Consume,
                Some("counter") => AtomicRole::Counter,
                Some("seal") => AtomicRole::Seal,
                other => return Err(err(format!("bad role {other:?}"))),
            };
            if let Some(extra) = parts.next() {
                return Err(err(format!("unexpected field {extra}")));
            }
            if m.entries
                .iter()
                .any(|e| e.field == field && e.file_sub == file_sub)
            {
                return Err(err(format!("duplicate entry {field} {file_sub}")));
            }
            m.entries.push(AtomicEntry {
                field: field.to_string(),
                file_sub: file_sub.to_string(),
                role,
                line: ln + 1,
            });
        }
        Ok(m)
    }
}
