//! morph-lint: in-repo static analysis for the invariants the
//! concurrency work depends on and no compiler checks (DESIGN.md §12).
//!
//! Five passes, each a module under [`passes`]:
//!
//! 1. `lock_order`  — nested lock acquisitions must follow the
//!    checked-in rank manifest (`manifest/lock_ranks.txt`).
//! 2. `nondet`      — no ambient time/entropy in replay-deterministic
//!    code (sim, core, wal, txn) without an allow escape.
//! 3. `crash_point` — every `crash_point("…")` literal registered in
//!    `manifest/crash_points.txt`, and no bogus registry entries.
//! 4. `panic`       — no `unwrap()/expect()/panic!` in non-test
//!    library code without an allow escape.
//! 5. `wal_bytes`   — backend writes only inside the approved WAL
//!    manager append/drain functions ("byte order ≡ LSN order").
//!
//! Escape grammar: `// morph-lint: allow(<pass>, <reason>)` on the
//! finding's line or the line directly above it; `// morph-lint:
//! rank(<class>)` assigns a lock class to a site the receiver
//! patterns cannot attribute.

pub mod lexer;
pub mod manifest;
pub mod passes;
pub mod scope;

use std::fmt;
use std::path::{Path, PathBuf};

#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: &'static str,
    pub file: String,
    pub line: usize,
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.msg
        )
    }
}

/// One lexed workspace source file.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    pub lexed: lexer::Lexed,
    pub regions: scope::Regions,
}

impl SourceFile {
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let regions = scope::analyze(&lexed.toks);
        SourceFile {
            rel: rel.to_string(),
            lexed,
            regions,
        }
    }

    /// True when an `allow(<pass>)` escape covers `line`.
    pub fn allowed(&self, line: usize, pass: &str) -> bool {
        self.lexed.directive_for(line, "allow", pass).is_some()
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            // `foo_tests.rs` files are `#[cfg(test)] mod foo_tests;`
            // modules — the gate lives at the declaration site, so the
            // file itself cannot show it. Skip them wholesale.
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if !stem.ends_with("_tests") {
                out.push(path);
            }
        }
    }
    Ok(())
}

/// Load every library source file of the workspace: `src/` of the root
/// package and `crates/*/src`. Integration tests, benches, fixtures
/// and the offline dependency shims are intentionally out of scope.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut dirs = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            std::fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read {}: {e}", crates.display()))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    let mut paths = Vec::new();
    for dir in &dirs {
        if dir.is_dir() {
            walk_rs(dir, &mut paths).map_err(|e| format!("walk {}: {e}", dir.display()))?;
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        files.push(SourceFile::from_source(&rel, &src));
    }
    Ok(files)
}

/// Pass configuration resolved from the repo layout. Kept explicit so
/// the fixture tests can point the same passes at synthetic trees.
pub struct Config {
    pub lock_ranks: manifest::LockRanks,
    pub crash_points: manifest::CrashManifest,
    /// Path the crash manifest was loaded from (for findings).
    pub crash_manifest_path: String,
    /// Path prefixes forming the replay-deterministic zone (pass 2).
    pub det_zones: Vec<String>,
    /// Path prefixes exempt from the panic audit (experiment drivers).
    pub panic_exempt: Vec<String>,
    /// (file, function) pairs allowed to write WAL backend bytes.
    pub wal_write_fns: Vec<(String, String)>,
    /// Files exempt from pass 5 because they *implement* the backend.
    pub wal_backend_impls: Vec<String>,
}

impl Config {
    pub fn for_repo(root: &Path) -> Result<Config, String> {
        let ranks_path = root.join("crates/lint/manifest/lock_ranks.txt");
        let points_path = root.join("crates/lint/manifest/crash_points.txt");
        let ranks = std::fs::read_to_string(&ranks_path)
            .map_err(|e| format!("read {}: {e}", ranks_path.display()))?;
        let points = std::fs::read_to_string(&points_path)
            .map_err(|e| format!("read {}: {e}", points_path.display()))?;
        Ok(Config {
            lock_ranks: manifest::LockRanks::parse(&ranks)?,
            crash_points: manifest::CrashManifest::parse(&points)?,
            crash_manifest_path: "crates/lint/manifest/crash_points.txt".to_string(),
            det_zones: vec![
                "crates/sim/src".into(),
                "crates/core/src".into(),
                "crates/wal/src".into(),
                "crates/txn/src".into(),
            ],
            panic_exempt: vec!["crates/bench/src".into()],
            wal_write_fns: vec![
                ("crates/wal/src/manager.rs".into(), "append_serial".into()),
                ("crates/wal/src/manager.rs".into(), "drain_staged".into()),
            ],
            wal_backend_impls: vec![
                "crates/wal/src/file.rs".into(),
                "crates/wal/src/fault.rs".into(),
            ],
        })
    }
}

pub const PASSES: [&str; 5] = ["lock_order", "nondet", "crash_point", "panic", "wal_bytes"];

/// Run all five passes; findings come back sorted by file/line.
pub fn run_all(cfg: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(passes::lock_order::run(cfg, files));
    findings.extend(passes::nondet::run(cfg, files));
    findings.extend(passes::crash_points::run(cfg, files));
    findings.extend(passes::panic_audit::run(cfg, files));
    findings.extend(passes::wal_bytes::run(cfg, files));
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}
