//! morph-lint: in-repo static analysis for the invariants the
//! concurrency work depends on and no compiler checks (DESIGN.md §12).
//!
//! Eight passes, each a module under [`passes`]:
//!
//! 1. `lock_order`  — lock acquisitions must follow the checked-in
//!    rank manifest (`manifest/lock_ranks.txt`); full mode propagates
//!    entry lock-sets through the whole-workspace call graph to a
//!    fixed point ([`callgraph`] + [`dataflow`]), `--fast` keeps the
//!    historical one-level approximation.
//! 2. `nondet`      — no ambient time/entropy in replay-deterministic
//!    code (sim, core, wal, txn) without an allow escape.
//! 3. `crash_point` — every `crash_point("…")` literal registered in
//!    `manifest/crash_points.txt`, and no bogus registry entries.
//! 4. `panic`       — no `unwrap()/expect()/panic!` in non-test
//!    library code without an allow escape.
//! 5. `wal_bytes`   — backend writes only inside the approved WAL
//!    manager append/drain functions ("byte order ≡ LSN order").
//! 6. `atomics`     — every `Atomic*` field declared with a protocol
//!    role in `manifest/atomics.txt`, and every site's `Ordering` at
//!    least the role's minimum for that site kind.
//! 7. `purity`      — snapshot readers (`snapshot_read`/`snapshot_scan`
//!    and the lazy interceptor) cannot reach a blocking lock-manager
//!    acquire through the call graph (full mode only).
//! 8. `stale_allow` — an `allow(…)` escape that no longer suppresses
//!    any finding is itself a finding (full mode only).
//!
//! Escape grammar: `// morph-lint: allow(<pass>, <reason>)` on the
//! finding's line or the line directly above it; `// morph-lint:
//! rank(<class>)` assigns a lock class to a site the receiver
//! patterns cannot attribute. Suppression is applied centrally in
//! [`run_all`], which is what lets the stale-allow audit know which
//! escapes earned their keep.

pub mod callgraph;
pub mod dataflow;
pub mod lexer;
pub mod manifest;
pub mod passes;
pub mod scope;

use std::collections::HashSet;
use std::fmt;
use std::path::{Path, PathBuf};

#[derive(Debug, Clone)]
pub struct Finding {
    pub pass: &'static str,
    pub file: String,
    pub line: usize,
    /// Stable discriminator for machine-readable IDs: the lock chain
    /// key, atomic field, crash-point name, … — whatever makes the
    /// finding unique at its (pass, file, line).
    pub key: String,
    pub msg: String,
}

impl Finding {
    /// Stable identifier for `--json` artifacts and cross-PR diffing.
    pub fn id(&self) -> String {
        format!("{}@{}:{}#{}", self.pass, self.file, self.line, self.key)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.pass, self.msg
        )
    }
}

/// One lexed workspace source file.
pub struct SourceFile {
    /// Repo-relative path with `/` separators.
    pub rel: String,
    pub lexed: lexer::Lexed,
    pub regions: scope::Regions,
}

impl SourceFile {
    pub fn from_source(rel: &str, src: &str) -> SourceFile {
        let lexed = lexer::lex(src);
        let regions = scope::analyze(&lexed.toks);
        SourceFile {
            rel: rel.to_string(),
            lexed,
            regions,
        }
    }

    /// True when an `allow(<pass>)` escape covers `line`.
    pub fn allowed(&self, line: usize, pass: &str) -> bool {
        self.lexed.directive_for(line, "allow", pass).is_some()
    }
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            // `foo_tests.rs` files are `#[cfg(test)] mod foo_tests;`
            // modules — the gate lives at the declaration site, so the
            // file itself cannot show it. Skip them wholesale.
            let stem = path.file_stem().and_then(|s| s.to_str()).unwrap_or("");
            if !stem.ends_with("_tests") {
                out.push(path);
            }
        }
    }
    Ok(())
}

/// Load every library source file of the workspace: `src/` of the root
/// package and `crates/*/src`. Integration tests, benches, fixtures
/// and the offline dependency shims are intentionally out of scope.
pub fn load_workspace(root: &Path) -> Result<Vec<SourceFile>, String> {
    let mut dirs = vec![root.join("src")];
    let crates = root.join("crates");
    if crates.is_dir() {
        let entries =
            std::fs::read_dir(&crates).map_err(|e| format!("read {}: {e}", crates.display()))?;
        for entry in entries {
            let entry = entry.map_err(|e| format!("read {}: {e}", crates.display()))?;
            let src = entry.path().join("src");
            if src.is_dir() {
                dirs.push(src);
            }
        }
    }
    let mut paths = Vec::new();
    for dir in &dirs {
        if dir.is_dir() {
            walk_rs(dir, &mut paths).map_err(|e| format!("walk {}: {e}", dir.display()))?;
        }
    }
    paths.sort();
    let mut files = Vec::new();
    for path in paths {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let src =
            std::fs::read_to_string(&path).map_err(|e| format!("read {}: {e}", path.display()))?;
        files.push(SourceFile::from_source(&rel, &src));
    }
    Ok(files)
}

/// Pass configuration resolved from the repo layout. Kept explicit so
/// the fixture tests can point the same passes at synthetic trees.
pub struct Config {
    pub lock_ranks: manifest::LockRanks,
    pub crash_points: manifest::CrashManifest,
    /// Path the crash manifest was loaded from (for findings).
    pub crash_manifest_path: String,
    /// Path prefixes forming the replay-deterministic zone (pass 2).
    pub det_zones: Vec<String>,
    /// Path prefixes exempt from the panic audit (experiment drivers).
    pub panic_exempt: Vec<String>,
    /// (file, function) pairs allowed to write WAL backend bytes.
    pub wal_write_fns: Vec<(String, String)>,
    /// Files exempt from pass 5 because they *implement* the backend.
    pub wal_backend_impls: Vec<String>,
    /// The atomics protocol manifest (pass 6).
    pub atomics: manifest::AtomicsManifest,
    /// Path the atomics manifest was loaded from (for findings).
    pub atomics_manifest_path: String,
    /// Path prefixes forming the strict atomics zone: every `Atomic*`
    /// field declared there must be in the manifest.
    pub atomics_zones: Vec<String>,
    /// Qualified names (`Type::fn`) of the snapshot-path roots the
    /// purity pass proves lock-manager-free.
    pub purity_roots: Vec<String>,
    /// Lock-class names whose blocking acquisition marks a function
    /// dirty for the purity pass.
    pub purity_forbidden: Vec<String>,
    /// `--fast` pre-commit mode: skip the interprocedural fixed point,
    /// the purity proof, and the stale-allow audit.
    pub fast: bool,
    /// Workspace crate dependency edges (`core` → `[storage, wal, …]`),
    /// parsed from the member `Cargo.toml`s. Call resolution refuses
    /// cross-crate edges the dependency graph cannot carry — a `wal`
    /// function cannot call into `storage`, so a name collision across
    /// that boundary is provably a different function.
    pub crate_deps: std::collections::HashMap<String, Vec<String>>,
}

impl Config {
    pub fn for_repo(root: &Path) -> Result<Config, String> {
        let ranks_path = root.join("crates/lint/manifest/lock_ranks.txt");
        let points_path = root.join("crates/lint/manifest/crash_points.txt");
        let atomics_path = root.join("crates/lint/manifest/atomics.txt");
        let ranks = std::fs::read_to_string(&ranks_path)
            .map_err(|e| format!("read {}: {e}", ranks_path.display()))?;
        let points = std::fs::read_to_string(&points_path)
            .map_err(|e| format!("read {}: {e}", points_path.display()))?;
        let atomics = std::fs::read_to_string(&atomics_path)
            .map_err(|e| format!("read {}: {e}", atomics_path.display()))?;
        Ok(Config {
            lock_ranks: manifest::LockRanks::parse(&ranks)?,
            crash_points: manifest::CrashManifest::parse(&points)?,
            crash_manifest_path: "crates/lint/manifest/crash_points.txt".to_string(),
            atomics: manifest::AtomicsManifest::parse(&atomics)?,
            atomics_manifest_path: "crates/lint/manifest/atomics.txt".to_string(),
            atomics_zones: vec![
                "crates/core/src".into(),
                "crates/wal/src".into(),
                "crates/storage/src".into(),
                "crates/txn/src".into(),
                "crates/engine/src".into(),
            ],
            purity_roots: vec![
                "Database::begin_snapshot".into(),
                "Database::snapshot_read".into(),
                "Database::snapshot_scan".into(),
                "LazyInterceptor::before_op".into(),
            ],
            purity_forbidden: vec![
                "txn.granular".into(),
                "txn.lock_table".into(),
                "txn.held".into(),
            ],
            fast: false,
            det_zones: vec![
                "crates/sim/src".into(),
                "crates/core/src".into(),
                "crates/wal/src".into(),
                "crates/txn/src".into(),
            ],
            panic_exempt: vec!["crates/bench/src".into()],
            wal_write_fns: vec![
                ("crates/wal/src/manager.rs".into(), "append_serial".into()),
                ("crates/wal/src/manager.rs".into(), "drain_staged".into()),
            ],
            wal_backend_impls: vec![
                "crates/wal/src/file.rs".into(),
                "crates/wal/src/fault.rs".into(),
            ],
            crate_deps: load_crate_deps(root)?,
        })
    }
}

/// Parse the direct workspace-member dependencies of every crate under
/// `crates/` from its `Cargo.toml`: a line `morph-<x>.workspace = true`
/// (or `morph-<x> = { … }`) in the `[dependencies]` section is an edge
/// to the member directory `crates/<x>`. Dev-dependencies are excluded
/// — test code is outside the lint surface anyway.
fn load_crate_deps(root: &Path) -> Result<std::collections::HashMap<String, Vec<String>>, String> {
    let mut deps: std::collections::HashMap<String, Vec<String>> = std::collections::HashMap::new();
    let crates_dir = root.join("crates");
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("read_dir {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir entry: {e}"))?;
        let manifest = entry.path().join("Cargo.toml");
        if !manifest.is_file() {
            continue;
        }
        let name = entry.file_name().to_string_lossy().to_string();
        let text = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        let mut in_deps = false;
        let mut edges = Vec::new();
        for line in text.lines() {
            let line = line.trim();
            if let Some(section) = line.strip_prefix('[') {
                in_deps = section.trim_end_matches(']') == "dependencies";
                continue;
            }
            if !in_deps {
                continue;
            }
            if let Some(rest) = line.strip_prefix("morph-") {
                let dep: String = rest
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                if !dep.is_empty() {
                    edges.push(dep);
                }
            }
        }
        deps.insert(name, edges);
    }
    Ok(deps)
}

pub const PASSES: [&str; 8] = [
    "lock_order",
    "nondet",
    "crash_point",
    "panic",
    "wal_bytes",
    "atomics",
    "purity",
    "stale_allow",
];

/// Run every pass, apply `allow(…)` suppression centrally, then audit
/// the escapes themselves; findings come back sorted by file/line.
pub fn run_all(cfg: &Config, files: &[SourceFile]) -> Vec<Finding> {
    let graph = callgraph::CallGraph::build(files, &cfg.crate_deps);
    let facts = dataflow::extract(cfg, files, &graph);

    let mut findings = Vec::new();
    findings.extend(passes::lock_order::run(cfg, files, &graph, &facts));
    findings.extend(passes::nondet::run(cfg, files));
    findings.extend(passes::crash_points::run(cfg, files));
    findings.extend(passes::panic_audit::run(cfg, files));
    findings.extend(passes::wal_bytes::run(cfg, files));
    findings.extend(passes::atomics::run(cfg, files));
    if !cfg.fast {
        findings.extend(passes::purity::run(cfg, files, &graph, &facts));
    }

    // Central suppression: an `allow(<pass>)` on the finding's line or
    // the line above swallows it — and is thereby marked *used*.
    let mut used: HashSet<(usize, usize, String)> = HashSet::new();
    findings.retain(|fd| {
        let Some(fi) = files.iter().position(|f| f.rel == fd.file) else {
            return true; // manifest-side findings cannot be suppressed
        };
        match files[fi].lexed.directive_for(fd.line, "allow", fd.pass) {
            Some(d) => {
                used.insert((fi, d.line, d.arg.clone()));
                false
            }
            None => true,
        }
    });

    // Stale-allow audit (full mode only: `--fast` legitimately skips
    // the passes some escapes exist for).
    if !cfg.fast {
        for (fi, f) in files.iter().enumerate() {
            for d in &f.lexed.directives {
                if d.verb != "allow" || !PASSES.contains(&d.arg.as_str()) {
                    continue;
                }
                if !used.contains(&(fi, d.line, d.arg.clone())) {
                    findings.push(Finding {
                        pass: "stale_allow",
                        file: f.rel.clone(),
                        line: d.line,
                        key: d.arg.clone(),
                        msg: format!(
                            "stale escape: `allow({})` no longer suppresses any finding — \
                             remove it so the audit trail stays honest",
                            d.arg
                        ),
                    });
                }
            }
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

/// Render findings as a JSON array with stable IDs (no dependencies:
/// hand-rolled, ASCII-escaped).
pub fn to_json(findings: &[Finding]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 || (c as u32) > 0x7e => {
                    for u in c.encode_utf16(&mut [0u16; 2]) {
                        out.push_str(&format!("\\u{:04x}", u));
                    }
                }
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "  {{\"id\":\"{}\",\"pass\":\"{}\",\"file\":\"{}\",\"line\":{},\"key\":\"{}\",\"msg\":\"{}\"}}{}\n",
            esc(&f.id()),
            esc(f.pass),
            esc(&f.file),
            f.line,
            esc(&f.key),
            esc(&f.msg),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push(']');
    out
}
