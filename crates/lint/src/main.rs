//! `morph-lint` CLI: run the passes over the workspace and fail on
//! any finding. `cargo run -p morph-lint` from anywhere inside the
//! repo; scripts/ci.sh runs it before the release build.
//!
//! Flags:
//!   --fast         one-level lock pass only (pre-commit speed): skips
//!                  the interprocedural fixed point, the purity proof,
//!                  and the stale-allow audit
//!   --json[=PATH]  machine-readable findings with stable IDs, written
//!                  to PATH (or stdout); human output still printed

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory".to_string());
        }
    }
}

fn run() -> Result<bool, String> {
    let mut fast = false;
    let mut json: Option<Option<String>> = None;
    for arg in std::env::args().skip(1) {
        if arg == "--fast" {
            fast = true;
        } else if arg == "--json" {
            json = Some(None);
        } else if let Some(path) = arg.strip_prefix("--json=") {
            json = Some(Some(path.to_string()));
        } else {
            return Err(format!(
                "unknown flag {arg} (expected --fast / --json[=PATH])"
            ));
        }
    }

    let root = workspace_root()?;
    let mut cfg = morph_lint::Config::for_repo(&root)?;
    cfg.fast = fast;
    let files = morph_lint::load_workspace(&root)?;
    let findings = morph_lint::run_all(&cfg, &files);

    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "morph-lint: {} file(s) scanned, {} finding(s){}",
        files.len(),
        findings.len(),
        if fast { " [fast mode]" } else { "" }
    );
    for pass in morph_lint::PASSES {
        let n = findings.iter().filter(|f| f.pass == pass).count();
        println!("  {pass:<12} {n}");
    }

    if let Some(dest) = json {
        let body = morph_lint::to_json(&findings);
        match dest {
            Some(path) => {
                let path = root.join(&path);
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent)
                        .map_err(|e| format!("mkdir {}: {e}", parent.display()))?;
                }
                std::fs::write(&path, &body)
                    .map_err(|e| format!("write {}: {e}", path.display()))?;
                println!("morph-lint: JSON artifact written to {}", path.display());
            }
            None => println!("{body}"),
        }
    }
    Ok(findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("morph-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
