//! `morph-lint` CLI: run the five passes over the workspace and fail
//! on any finding. `cargo run -p morph-lint` from anywhere inside the
//! repo; scripts/ci.sh runs it between clippy and the sim sweeps.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> Result<PathBuf, String> {
    let mut dir = std::env::current_dir().map_err(|e| format!("cwd: {e}"))?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            let text = std::fs::read_to_string(&manifest)
                .map_err(|e| format!("read {}: {e}", manifest.display()))?;
            if text.contains("[workspace]") {
                return Ok(dir);
            }
        }
        if !dir.pop() {
            return Err("no workspace Cargo.toml above the current directory".to_string());
        }
    }
}

fn run() -> Result<bool, String> {
    let root = workspace_root()?;
    let cfg = morph_lint::Config::for_repo(&root)?;
    let files = morph_lint::load_workspace(&root)?;
    let findings = morph_lint::run_all(&cfg, &files);

    for finding in &findings {
        println!("{finding}");
    }
    println!(
        "morph-lint: {} file(s) scanned, {} finding(s)",
        files.len(),
        findings.len()
    );
    for pass in morph_lint::PASSES {
        let n = findings.iter().filter(|f| f.pass == pass).count();
        println!("  {pass:<12} {n}");
    }
    Ok(findings.is_empty())
}

fn main() -> ExitCode {
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("morph-lint: error: {e}");
            ExitCode::FAILURE
        }
    }
}
