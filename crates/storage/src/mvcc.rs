//! Multi-version storage primitives: version chains, the commit table
//! that decides visibility, and the live-snapshot tracker that drives
//! version garbage collection.
//!
//! # Version chains
//!
//! Each table shard keeps, next to its row heap, a map from primary
//! key to a chain of [`VersionEntry`] pre-images, stored *oldest
//! first* (writers push at the tail, readers walk `.iter().rev()`).
//! The inline row in the heap is always the newest state and is never
//! duplicated in the chain — the unversioned hot path pays nothing.
//! A `data: None` entry is a tombstone: at that point in history the
//! key did not exist (delete, or the old key of a primary-key move).
//!
//! # Visibility
//!
//! A snapshot is just an LSN `s` (the log tail at acquisition). A
//! version written by `writer` at `lsn` is visible at `s` iff
//!
//! * `writer == SYSTEM` and `lsn <= s` — engine-internal writes
//!   (recovery replay, CLR compensation, propagation) are ordered by
//!   their log position alone;
//! * `writer` committed at `c` and `c <= s`;
//! * `writer` aborted — never visible (its pre-image entry below it
//!   in the chain, pushed by the compensating CLR, is what readers
//!   see);
//! * `writer` has no commit-table entry: visible iff `lsn` is below
//!   the prune **floor** (see below); otherwise the writer is still
//!   active and invisible.
//!
//! # The prune floor
//!
//! The commit table cannot grow forever. [`CommitTable::prune`]
//! removes every outcome whose end LSN is at or below the GC
//! watermark `W` and records `W` as the *floor*. The floor rule —
//! "missing entry is visible iff its `lsn < floor`" — is sound
//! because `W` is computed as the minimum of (a) the oldest live
//! snapshot, (b) the first LSN of the oldest active transaction and
//! (c) the WAL durability watermark:
//!
//! * a pruned *committed* outcome had `c <= W`, so every surviving
//!   snapshot `s >= W >= c` must see it — and its version LSNs are
//!   `< c <= floor`, so the floor rule says visible;
//! * every *active* transaction has operation LSNs `>= first_lsn >=
//!   W = floor`, so the floor rule keeps it invisible;
//! * a pruned *aborted* outcome is never consulted: the compensating
//!   CLR pushed a `SYSTEM` entry above the aborted one with
//!   `clr_lsn < abort_end <= W <= s`, which every surviving snapshot
//!   resolves first.

use crate::row::Row;
use morph_common::{Lsn, TxnId};
use parking_lot::{Mutex, RwLock};
use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The engine-internal writer id: recovery replay, CLR compensation,
/// log propagation and every write made while versioning is disabled.
/// User transaction ids start at 1, so 0 is free.
pub const SYSTEM: TxnId = TxnId(0);

/// One archived version of a row: the pre-image displaced by a newer
/// write, or a tombstone marking that the key did not exist.
#[derive(Clone, Debug)]
pub struct VersionEntry {
    /// LSN of the operation that *created* this version (the archived
    /// row's own stamp for pre-images; the deleting operation's LSN
    /// for tombstones).
    pub lsn: Lsn,
    /// Transaction that created this version ([`SYSTEM`] for
    /// engine-internal writes).
    pub writer: TxnId,
    /// The archived row, or `None` for a tombstone.
    pub data: Option<Row>,
}

/// A version chain: oldest entry first (push at the tail).
pub type VersionChain = Vec<VersionEntry>;

/// Recorded fate of a finished transaction.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TxnOutcome {
    /// Committed; the LSN is the Commit record's.
    Committed(Lsn),
    /// Rolled back; the LSN is the AbortEnd record's (prune bound).
    Aborted(Lsn),
}

/// The commit table: transaction id → outcome, plus the prune floor.
///
/// Writers record outcomes at commit/abort; readers consult it for
/// every visibility decision. Entries below the GC watermark are
/// pruned in bulk (see the module docs for why that is sound).
#[derive(Default)]
pub struct CommitTable {
    outcomes: RwLock<HashMap<TxnId, TxnOutcome>>,
    /// Every outcome with end LSN `<= floor` has been pruned; a
    /// missing entry with a version LSN below the floor is therefore
    /// a committed one.
    floor: AtomicU64,
}

impl CommitTable {
    /// Empty table (floor 0: nothing pruned yet).
    pub fn new() -> CommitTable {
        CommitTable::default()
    }

    /// Record a commit at `commit_lsn`.
    pub fn record_commit(&self, txn: TxnId, commit_lsn: Lsn) {
        self.outcomes
            .write()
            .insert(txn, TxnOutcome::Committed(commit_lsn));
    }

    /// Record a completed rollback (`end_lsn` = the AbortEnd record).
    pub fn record_abort(&self, txn: TxnId, end_lsn: Lsn) {
        self.outcomes
            .write()
            .insert(txn, TxnOutcome::Aborted(end_lsn));
    }

    /// Current prune floor.
    pub fn floor(&self) -> Lsn {
        Lsn(self.floor.load(Ordering::Acquire))
    }

    /// Whether a version written by `writer` at `lsn` is visible to a
    /// snapshot taken at `snapshot` (see the module docs).
    pub fn is_visible(&self, writer: TxnId, lsn: Lsn, snapshot: Lsn) -> bool {
        if writer == SYSTEM {
            return lsn <= snapshot;
        }
        match self.outcomes.read().get(&writer) {
            Some(TxnOutcome::Committed(c)) => *c <= snapshot,
            Some(TxnOutcome::Aborted(_)) => false,
            None => lsn < self.floor(),
        }
    }

    /// Drop every outcome whose end LSN is `<= watermark` and raise
    /// the floor to the watermark. Returns the number of outcomes
    /// pruned. The caller must guarantee the watermark discipline
    /// described in the module docs.
    pub fn prune(&self, watermark: Lsn) -> usize {
        let mut g = self.outcomes.write();
        let before = g.len();
        g.retain(|_, o| match o {
            TxnOutcome::Committed(l) | TxnOutcome::Aborted(l) => *l > watermark,
        });
        let pruned = before - g.len();
        // Monotone raise under the write lock (prunes serialize here).
        self.floor.fetch_max(watermark.0, Ordering::AcqRel);
        pruned
    }

    /// Number of outcomes currently recorded (tests / introspection).
    pub fn len(&self) -> usize {
        self.outcomes.read().len()
    }

    /// Whether no outcomes are recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Registry of live snapshots, keyed by snapshot LSN with a refcount
/// (many read transactions may share an acquisition LSN). Its minimum
/// is one leg of the GC watermark: no version visible at or after the
/// oldest live snapshot is ever reclaimed.
#[derive(Default)]
pub struct SnapshotTracker {
    live: Mutex<BTreeMap<u64, usize>>,
}

impl SnapshotTracker {
    /// Empty tracker.
    pub fn new() -> SnapshotTracker {
        SnapshotTracker::default()
    }

    /// Register a live snapshot at `lsn`.
    pub fn register(&self, lsn: Lsn) {
        *self.live.lock().entry(lsn.0).or_insert(0) += 1;
    }

    /// Release one registration at `lsn`.
    pub fn release(&self, lsn: Lsn) {
        let mut g = self.live.lock();
        if let Some(n) = g.get_mut(&lsn.0) {
            *n -= 1;
            if *n == 0 {
                g.remove(&lsn.0);
            }
        }
    }

    /// Oldest live snapshot, if any.
    pub fn oldest(&self) -> Option<Lsn> {
        self.live.lock().keys().next().copied().map(Lsn)
    }

    /// Number of live snapshot registrations (tests / introspection).
    pub fn live_count(&self) -> usize {
        self.live.lock().values().sum()
    }
}

/// A read snapshot: an LSN plus its tracker registration, released on
/// drop so a reader that dies on any path cannot pin GC forever.
pub struct Snapshot {
    lsn: Lsn,
    tracker: Arc<SnapshotTracker>,
}

impl Snapshot {
    /// Register a snapshot at `lsn` with `tracker`.
    pub fn register(tracker: Arc<SnapshotTracker>, lsn: Lsn) -> Snapshot {
        tracker.register(lsn);
        Snapshot { lsn, tracker }
    }

    /// The snapshot LSN: this reader sees exactly the state committed
    /// at or before it.
    pub fn lsn(&self) -> Lsn {
        self.lsn
    }
}

impl Drop for Snapshot {
    fn drop(&mut self) {
        self.tracker.release(self.lsn);
    }
}

impl std::fmt::Debug for Snapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Snapshot").field("lsn", &self.lsn).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn visibility_follows_commit_lsn() {
        let ct = CommitTable::new();
        ct.record_commit(TxnId(7), Lsn(10));
        assert!(ct.is_visible(TxnId(7), Lsn(5), Lsn(10)));
        assert!(ct.is_visible(TxnId(7), Lsn(5), Lsn(11)));
        assert!(!ct.is_visible(TxnId(7), Lsn(5), Lsn(9)));
    }

    #[test]
    fn aborted_and_active_writers_invisible() {
        let ct = CommitTable::new();
        ct.record_abort(TxnId(3), Lsn(20));
        assert!(!ct.is_visible(TxnId(3), Lsn(5), Lsn(100)));
        // Active (no entry, floor 0): invisible.
        assert!(!ct.is_visible(TxnId(4), Lsn(5), Lsn(100)));
    }

    #[test]
    fn system_writer_ordered_by_lsn() {
        let ct = CommitTable::new();
        assert!(ct.is_visible(SYSTEM, Lsn(5), Lsn(5)));
        assert!(!ct.is_visible(SYSTEM, Lsn(6), Lsn(5)));
    }

    #[test]
    fn prune_raises_floor_and_preserves_visibility() {
        let ct = CommitTable::new();
        ct.record_commit(TxnId(1), Lsn(10));
        ct.record_commit(TxnId(2), Lsn(30));
        assert_eq!(ct.prune(Lsn(20)), 1);
        assert_eq!(ct.floor(), Lsn(20));
        // Pruned committed writer: version LSNs < commit <= floor, so
        // the floor rule keeps it visible to surviving snapshots.
        assert!(ct.is_visible(TxnId(1), Lsn(8), Lsn(25)));
        // Unpruned entry still consults the real commit LSN.
        assert!(!ct.is_visible(TxnId(2), Lsn(25), Lsn(25)));
        assert!(ct.is_visible(TxnId(2), Lsn(25), Lsn(30)));
        // Active transactions begun after the prune stay invisible:
        // their LSNs sit above the floor.
        assert!(!ct.is_visible(TxnId(9), Lsn(21), Lsn(25)));
    }

    #[test]
    fn snapshot_tracker_refcounts() {
        let tr = Arc::new(SnapshotTracker::new());
        assert_eq!(tr.oldest(), None);
        let a = Snapshot::register(Arc::clone(&tr), Lsn(5));
        let b = Snapshot::register(Arc::clone(&tr), Lsn(5));
        let c = Snapshot::register(Arc::clone(&tr), Lsn(9));
        assert_eq!(tr.oldest(), Some(Lsn(5)));
        assert_eq!(tr.live_count(), 3);
        drop(a);
        assert_eq!(tr.oldest(), Some(Lsn(5)), "refcounted twin still live");
        drop(b);
        assert_eq!(tr.oldest(), Some(Lsn(9)));
        assert_eq!(c.lsn(), Lsn(9));
        drop(c);
        assert_eq!(tr.oldest(), None);
    }
}
