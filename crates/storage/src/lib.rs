//! # morph-storage
//!
//! Main-memory storage engine: per-table B-tree heaps keyed by primary
//! key, secondary indexes, a catalog, and the *fuzzy scan* primitive
//! the transformation framework builds on.
//!
//! The paper's prototype (§6) "keeps all data in main memory", arguing
//! this is realistic for the telecom-class databases that need
//! non-blocking schema changes; this crate makes the same choice. What
//! matters for the reproduction is the *contention structure*: physical
//! operations take a short per-table latch, transaction-level record
//! locks live above (in `morph-txn`), and the fuzzy scan reads *without
//! transaction locks* in small latched chunks so that concurrent
//! writers interleave with the copy — producing the genuinely
//! inconsistent "initial image" that log propagation then repairs.
//!
//! Tables also carry the paper-specific row metadata: a per-row LSN
//! (state identifier for split propagation, §5.2), the S-record
//! reference **counter** (§5), and the **C/U consistency flag** (§5.3).

pub mod catalog;
pub mod index;
pub mod mvcc;
pub mod residual;
pub mod row;
pub mod table;

pub use catalog::Catalog;
pub use index::SecondaryIndex;
pub use mvcc::{CommitTable, Snapshot, SnapshotTracker, VersionEntry, SYSTEM};
pub use residual::{Claim, ClaimGuard, ResidualSet};
pub use row::{ConsistencyFlag, Row};
pub use table::{
    shard_stride, FuzzyScanner, SnapshotScanner, Table, TableExclusiveLatch, TableSharedLatch,
    TableState, WriteSession, TABLE_SHARDS,
};
