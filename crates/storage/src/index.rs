//! Secondary indexes.
//!
//! The preparation step of a transformation creates the indexes the
//! propagation rules rely on (§4.1): an index on the join attributes of
//! the transformed table, and one on the S-key attributes, providing
//! "fast lookup on all T-records that are affected by an operation on
//! an S-record". This module implements those as ordinary non-unique
//! B-tree secondary indexes mapping an index key to the set of primary
//! keys carrying it.

use morph_common::{DbError, DbResult, Key, Value};
use std::collections::{BTreeMap, BTreeSet};

/// A secondary index over one or more columns.
#[derive(Debug)]
pub struct SecondaryIndex {
    /// Index name (unique within the table).
    pub name: String,
    /// Indexed column positions, in key order.
    pub cols: Vec<usize>,
    /// Whether a UNIQUE constraint is enforced. The paper warns (§4.1)
    /// that unique constraints on S-attributes of a FOJ target "should
    /// be avoided since a record in S is likely to occur multiple times
    /// in T" — violating one aborts the transformation.
    pub unique: bool,
    map: BTreeMap<Key, BTreeSet<Key>>,
}

impl SecondaryIndex {
    /// Create an empty index.
    pub fn new(name: &str, cols: Vec<usize>, unique: bool) -> SecondaryIndex {
        SecondaryIndex {
            name: name.to_owned(),
            cols,
            unique,
            map: BTreeMap::new(),
        }
    }

    /// The index key of a row.
    pub fn key_of(&self, row: &[Value]) -> Key {
        Key::project(row, &self.cols)
    }

    /// Register `pk` under the index key of `row`. Enforces uniqueness
    /// if declared.
    pub fn insert(&mut self, row: &[Value], pk: &Key) -> DbResult<()> {
        let ik = self.key_of(row);
        let set = self.map.entry(ik.clone()).or_default();
        if self.unique && !set.is_empty() && !set.contains(pk) {
            // Roll back the entry we may have just created.
            if set.is_empty() {
                self.map.remove(&ik);
            }
            return Err(DbError::UniqueViolation {
                index: self.name.clone(),
                key: format!("{ik:?}"),
            });
        }
        set.insert(pk.clone());
        Ok(())
    }

    /// Remove `pk` from under the index key of `row`.
    pub fn remove(&mut self, row: &[Value], pk: &Key) {
        let ik = self.key_of(row);
        if let Some(set) = self.map.get_mut(&ik) {
            set.remove(pk);
            if set.is_empty() {
                self.map.remove(&ik);
            }
        }
    }

    /// All primary keys whose rows carry index key `ik`.
    pub fn lookup(&self, ik: &Key) -> Vec<Key> {
        self.map
            .get(ik)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Borrowed view of the primary-key set under `ik` (allocation-free
    /// probe for the hot propagation-rule path).
    pub fn pk_set(&self, ik: &Key) -> Option<&BTreeSet<Key>> {
        self.map.get(ik)
    }

    /// Whether any row carries index key `ik`.
    pub fn contains(&self, ik: &Key) -> bool {
        self.map.contains_key(ik)
    }

    /// Number of rows carrying index key `ik`.
    pub fn cardinality(&self, ik: &Key) -> usize {
        self.map.get(ik).map_or(0, BTreeSet::len)
    }

    /// Number of distinct index keys.
    pub fn distinct_keys(&self) -> usize {
        self.map.len()
    }

    /// Whether a row image belongs under index key `ik` — the snapshot
    /// visibility re-check. The index itself tracks inline rows only;
    /// a snapshot probe resolves candidate primary keys to the version
    /// visible at the reader's snapshot and must then confirm that the
    /// *resolved* values still carry the probed index key (the inline
    /// row may have been re-indexed since the snapshot was taken).
    pub fn covers(&self, resolved: &[Value], ik: &Key) -> bool {
        self.key_of(resolved) == *ik
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(pk: i64, j: i64) -> Vec<Value> {
        vec![Value::Int(pk), Value::Int(j)]
    }

    #[test]
    fn insert_lookup_remove() {
        let mut idx = SecondaryIndex::new("j", vec![1], false);
        idx.insert(&row(1, 10), &Key::single(1)).unwrap();
        idx.insert(&row(2, 10), &Key::single(2)).unwrap();
        idx.insert(&row(3, 20), &Key::single(3)).unwrap();

        assert_eq!(
            idx.lookup(&Key::single(10)),
            vec![Key::single(1), Key::single(2)]
        );
        assert_eq!(idx.cardinality(&Key::single(10)), 2);
        assert_eq!(idx.distinct_keys(), 2);

        idx.remove(&row(1, 10), &Key::single(1));
        assert_eq!(idx.lookup(&Key::single(10)), vec![Key::single(2)]);
        idx.remove(&row(2, 10), &Key::single(2));
        assert!(!idx.contains(&Key::single(10)));
        assert_eq!(idx.distinct_keys(), 1);
    }

    #[test]
    fn unique_violation_detected() {
        let mut idx = SecondaryIndex::new("u", vec![1], true);
        idx.insert(&row(1, 10), &Key::single(1)).unwrap();
        let err = idx.insert(&row(2, 10), &Key::single(2)).unwrap_err();
        assert!(matches!(err, DbError::UniqueViolation { .. }));
        // Same pk re-registering is idempotent, not a violation.
        idx.insert(&row(1, 10), &Key::single(1)).unwrap();
    }

    #[test]
    fn remove_missing_is_noop() {
        let mut idx = SecondaryIndex::new("j", vec![1], false);
        idx.remove(&row(1, 10), &Key::single(1));
        assert_eq!(idx.distinct_keys(), 0);
    }

    #[test]
    fn null_index_keys_group_together() {
        // FOJ null-extended rows all share the NULL index key, which is
        // how rule lookups find t_null_x records.
        let mut idx = SecondaryIndex::new("j", vec![1], false);
        idx.insert(&[Value::Int(1), Value::Null], &Key::single(1))
            .unwrap();
        idx.insert(&[Value::Int(2), Value::Null], &Key::single(2))
            .unwrap();
        assert_eq!(idx.cardinality(&Key::single(Value::Null)), 2);
    }

    #[test]
    fn composite_index_keys() {
        let mut idx = SecondaryIndex::new("c", vec![0, 1], false);
        idx.insert(&row(1, 10), &Key::single(1)).unwrap();
        assert!(idx.contains(&Key::new([Value::Int(1), Value::Int(10)])));
        assert!(!idx.contains(&Key::new([Value::Int(10), Value::Int(1)])));
    }
}
