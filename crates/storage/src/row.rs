//! Stored rows and their transformation metadata.

use morph_common::{Lsn, TxnId, Value};

/// The C/U consistency flag of §5.3: transformed S-records whose
/// contributing T-rows are known to agree carry `Consistent`; records
/// that might disagree carry `Unknown` until the consistency checker
/// certifies them.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConsistencyFlag {
    /// Known to be consistent ("C" in the paper).
    Consistent,
    /// Possibly inconsistent / not yet checked ("U" in the paper).
    Unknown,
}

/// Which halves of a full-outer-join result row are populated.
///
/// A FOJ row is the join of (up to) one R-row and one S-row; rows
/// without a join match are NULL-extended (joined with the special
/// `r_null` / `s_null` records, §4.1). NULL attribute values alone
/// cannot distinguish "joined with `s_null`" from "joined with an
/// S-row whose non-key attributes are NULL", so the engine tracks
/// presence explicitly, the way a real implementation would tag the
/// physical record header.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Presence {
    /// The R-part (left input) is populated.
    pub left: bool,
    /// The S-part (right input) is populated.
    pub right: bool,
}

impl Presence {
    /// Both halves present — every ordinary (non-transformed) row.
    pub const BOTH: Presence = Presence {
        left: true,
        right: true,
    };
}

impl Default for Presence {
    fn default() -> Self {
        Presence::BOTH
    }
}

/// A stored row: attribute values plus the metadata the transformation
/// framework needs.
#[derive(Clone, Debug)]
pub struct Row {
    /// Attribute values, positionally matching the table schema.
    pub values: Vec<Value>,
    /// State identifier: LSN of the last logged operation applied to
    /// this row. For rows of a FOJ-transformed table this is *not* a
    /// valid state identifier (§4.2) and the FOJ rules ignore it; the
    /// split rules (§5.2) read and stamp it.
    pub lsn: Lsn,
    /// Reference counter for split S-records (§5): number of T-rows
    /// currently contributing this S-part. 1 for ordinary rows.
    pub counter: u32,
    /// C/U flag for split-with-possibly-inconsistent-data (§5.3).
    pub flag: ConsistencyFlag,
    /// FOJ half-presence (see [`Presence`]). `BOTH` for ordinary rows.
    pub presence: Presence,
    /// MVCC visibility stamp: the transaction that produced this
    /// version. `TxnId(0)` (the engine's SYSTEM id) for rows written
    /// while versioning is disabled or by engine-internal paths; such
    /// versions are visible purely by LSN order.
    pub writer: TxnId,
}

// The writer stamp is visibility bookkeeping, not row identity: two
// rows with identical data and state identifier are equal regardless
// of which transaction produced them (the sim oracles and the
// parallel-equivalence proptests compare rows across databases whose
// transaction ids differ).
impl PartialEq for Row {
    fn eq(&self, other: &Row) -> bool {
        self.values == other.values
            && self.lsn == other.lsn
            && self.counter == other.counter
            && self.flag == other.flag
            && self.presence == other.presence
    }
}

impl Eq for Row {}

impl Row {
    /// An ordinary row: counter 1, consistent, both halves present.
    pub fn new(values: Vec<Value>, lsn: Lsn) -> Row {
        Row {
            values,
            lsn,
            counter: 1,
            flag: ConsistencyFlag::Consistent,
            presence: Presence::BOTH,
            writer: TxnId(0),
        }
    }

    /// Apply sparse column updates in place, returning the previous
    /// values of the touched columns (for undo logging).
    pub fn apply_updates(&mut self, cols: &[(usize, Value)]) -> Vec<(usize, Value)> {
        let mut old = Vec::with_capacity(cols.len());
        for (i, v) in cols {
            old.push((*i, std::mem::replace(&mut self.values[*i], v.clone())));
        }
        old
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_row_defaults() {
        let r = Row::new(vec![Value::Int(1)], Lsn(5));
        assert_eq!(r.counter, 1);
        assert_eq!(r.flag, ConsistencyFlag::Consistent);
        assert_eq!(r.lsn, Lsn(5));
    }

    #[test]
    fn apply_updates_returns_old_values() {
        let mut r = Row::new(vec![Value::Int(1), Value::str("a"), Value::Null], Lsn(1));
        let old = r.apply_updates(&[(1, Value::str("b")), (2, Value::Int(9))]);
        assert_eq!(old, vec![(1, Value::str("a")), (2, Value::Null)]);
        assert_eq!(
            r.values,
            vec![Value::Int(1), Value::str("b"), Value::Int(9)]
        );
    }

    #[test]
    fn apply_empty_update_is_noop() {
        let mut r = Row::new(vec![Value::Int(1)], Lsn(1));
        assert!(r.apply_updates(&[]).is_empty());
        assert_eq!(r.values, vec![Value::Int(1)]);
    }
}
