//! Tables: primary-key B-tree heaps with secondary indexes, short
//! physical latches, freeze states and the fuzzy scan.

use crate::index::SecondaryIndex;
use crate::row::Row;
use morph_common::{DbError, DbResult, Key, Lsn, Schema, TableId, TxnId, Value};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeMap, HashSet};
use std::ops::Bound;
use std::sync::Arc;

/// Access state of a table.
///
/// After a non-blocking synchronization the source tables are *frozen*:
/// only the transactions that were active at synchronization time (and
/// are now rolling back, or — under non-blocking commit — running to
/// completion) may still touch them (§3.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableState {
    /// Normal operation.
    Active,
    /// Only the listed transactions may operate on the table.
    Frozen { allowed: HashSet<TxnId> },
    /// The table is logically dropped; no transaction may touch it.
    Dropped,
}

struct TableInner {
    rows: BTreeMap<Key, Row>,
    indexes: Vec<SecondaryIndex>,
}

impl TableInner {
    /// Validate + constraint-check an insert; returns the key without
    /// mutating anything (so a fallible logging closure can run between
    /// the checks and the mutation).
    fn check_insert(&self, schema: &Schema, values: &[Value]) -> DbResult<Key> {
        schema.validate(values)?;
        let key = schema.key_of(values);
        if self.rows.contains_key(&key) {
            return Err(DbError::DuplicateKey(format!("{key:?}")));
        }
        for idx in &self.indexes {
            if idx.unique && idx.cardinality(&idx.key_of(values)) > 0 {
                return Err(DbError::UniqueViolation {
                    index: idx.name.clone(),
                    key: format!("{:?}", idx.key_of(values)),
                });
            }
        }
        Ok(key)
    }

    fn insert_unchecked(&mut self, key: Key, row: Row) -> Key {
        for idx in &mut self.indexes {
            idx.insert(&row.values, &key)
                .expect("uniqueness pre-checked");
        }
        self.rows.insert(key.clone(), row);
        key
    }

    fn insert_with(
        &mut self,
        schema: &Schema,
        values: Vec<Value>,
        mk_lsn: impl FnOnce() -> DbResult<Lsn>,
    ) -> DbResult<Key> {
        let key = self.check_insert(schema, &values)?;
        let lsn = mk_lsn()?;
        Ok(self.insert_unchecked(key, Row::new(values, lsn)))
    }

    /// Insert a row with explicit metadata in one pass (counter, flag,
    /// presence and LSN are taken from `row` verbatim).
    fn insert_row(&mut self, schema: &Schema, row: Row) -> DbResult<Key> {
        let key = self.check_insert(schema, &row.values)?;
        Ok(self.insert_unchecked(key, row))
    }

    fn delete_with(&mut self, key: &Key, log: impl FnOnce(&Row) -> DbResult<()>) -> DbResult<Row> {
        if !self.rows.contains_key(key) {
            return Err(DbError::KeyNotFound(format!("{key:?}")));
        }
        log(&self.rows[key])?;
        let row = self.rows.remove(key).expect("checked above");
        for idx in &mut self.indexes {
            idx.remove(&row.values, key);
        }
        Ok(row)
    }

    fn update_with(
        &mut self,
        pkey_cols: &[usize],
        arity: usize,
        key: &Key,
        cols: &[(usize, Value)],
        mk_lsn: impl FnOnce(&UpdateOutcome) -> DbResult<Lsn>,
    ) -> DbResult<UpdateOutcome> {
        for (i, _) in cols {
            if *i >= arity {
                return Err(DbError::ArityMismatch {
                    expected: arity,
                    got: *i + 1,
                });
            }
        }
        let row = self
            .rows
            .get(key)
            .ok_or_else(|| DbError::KeyNotFound(format!("{key:?}")))?;
        let old_lsn = row.lsn;

        let mut new_values = row.values.clone();
        for (i, v) in cols {
            new_values[*i] = v.clone();
        }
        let new_key = Key::project(&new_values, pkey_cols);

        if new_key != *key && self.rows.contains_key(&new_key) {
            return Err(DbError::DuplicateKey(format!("{new_key:?}")));
        }
        // Unique-index pre-check for the new image.
        for idx in &self.indexes {
            if idx.unique {
                let new_ik = idx.key_of(&new_values);
                let old_ik = idx.key_of(&self.rows[key].values);
                if new_ik != old_ik && idx.cardinality(&new_ik) > 0 {
                    return Err(DbError::UniqueViolation {
                        index: idx.name.clone(),
                        key: format!("{new_ik:?}"),
                    });
                }
            }
        }

        // Compute the full outcome (pre-images included) before any
        // mutation, so a closure error is side-effect free.
        let old_cols: Vec<(usize, Value)> = {
            let row = &self.rows[key];
            cols.iter()
                .map(|(i, _)| (*i, row.values[*i].clone()))
                .collect()
        };
        let outcome = UpdateOutcome {
            old_cols,
            old_key: key.clone(),
            new_key: new_key.clone(),
            old_lsn,
        };
        let lsn = mk_lsn(&outcome)?;

        let mut row = self.rows.remove(key).expect("checked above");
        for idx in &mut self.indexes {
            idx.remove(&row.values, key);
        }
        row.apply_updates(cols);
        row.lsn = lsn;
        for idx in &mut self.indexes {
            idx.insert(&row.values, &new_key)
                .expect("uniqueness pre-checked");
        }
        self.rows.insert(new_key, row);

        Ok(outcome)
    }

    fn index_rows(&self, idx: usize, ik: &Key) -> Vec<(Key, Row)> {
        self.indexes[idx]
            .lookup(ik)
            .into_iter()
            .filter_map(|pk| self.rows.get(&pk).map(|r| (pk.clone(), r.clone())))
            .collect()
    }
}

/// Outcome of an update, reporting key movement and the pre-images
/// needed for undo logging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Pre-update values of the touched columns.
    pub old_cols: Vec<(usize, Value)>,
    /// Key before the update.
    pub old_key: Key,
    /// Key after the update (differs if a primary-key column changed).
    pub new_key: Key,
    /// Row LSN before the update.
    pub old_lsn: Lsn,
}

/// A main-memory table.
///
/// All physical operations take a short write latch on the row heap;
/// [`Table::latch_exclusive`] exposes the same latch to the
/// synchronization step, which holds it across the final log
/// propagation iteration (§3.4) — this is what "latching the source
/// tables" means in this engine.
pub struct Table {
    id: TableId,
    name: RwLock<String>,
    schema: RwLock<Schema>,
    state: RwLock<TableState>,
    inner: RwLock<TableInner>,
}

impl Table {
    /// Create an empty table.
    pub fn new(id: TableId, name: &str, schema: Schema) -> Table {
        Table {
            id,
            name: RwLock::new(name.to_owned()),
            schema: RwLock::new(schema),
            state: RwLock::new(TableState::Active),
            inner: RwLock::new(TableInner {
                rows: BTreeMap::new(),
                indexes: Vec::new(),
            }),
        }
    }

    /// Stable identifier.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Current name (tables can be renamed; §5.2 rename-in-place).
    pub fn name(&self) -> String {
        self.name.read().clone()
    }

    pub(crate) fn set_name(&self, name: &str) {
        *self.name.write() = name.to_owned();
    }

    /// A clone of the current schema.
    pub fn schema(&self) -> Schema {
        self.schema.read().clone()
    }

    // --- access state -------------------------------------------------

    /// Current access state.
    pub fn state(&self) -> TableState {
        self.state.read().clone()
    }

    /// Freeze the table for everyone but `allowed` (§3.4).
    pub fn freeze(&self, allowed: HashSet<TxnId>) {
        *self.state.write() = TableState::Frozen { allowed };
    }

    /// Remove one transaction from the frozen allow-list (it finished
    /// rolling back / committing). Returns `true` when the allow-list
    /// is now empty, i.e. the table can be physically dropped.
    pub fn retire_allowed(&self, txn: TxnId) -> bool {
        let mut st = self.state.write();
        if let TableState::Frozen { allowed } = &mut *st {
            allowed.remove(&txn);
            allowed.is_empty()
        } else {
            false
        }
    }

    /// Mark the table dropped.
    pub fn mark_dropped(&self) {
        *self.state.write() = TableState::Dropped;
    }

    /// Reactivate a frozen table (transformation aborted).
    pub fn reactivate(&self) {
        *self.state.write() = TableState::Active;
    }

    /// Check that `txn` may operate on this table in its current state.
    pub fn check_access(&self, txn: TxnId) -> DbResult<()> {
        match &*self.state.read() {
            TableState::Active => Ok(()),
            TableState::Frozen { allowed } if allowed.contains(&txn) => Ok(()),
            TableState::Frozen { .. } | TableState::Dropped => Err(DbError::TableFrozen(self.id)),
        }
    }

    // --- indexes ------------------------------------------------------

    /// Create a secondary index over the named columns. Existing rows
    /// are indexed immediately (the preparation step creates indexes on
    /// empty transformed tables, so this is cheap there).
    pub fn add_index(&self, name: &str, columns: &[&str], unique: bool) -> DbResult<usize> {
        let schema = self.schema.read();
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            cols.push(schema.require(c)?);
        }
        drop(schema);
        let mut inner = self.inner.write();
        if inner.indexes.iter().any(|i| i.name == name) {
            return Err(DbError::InvalidSchema(format!(
                "index {name:?} already exists"
            )));
        }
        let mut idx = SecondaryIndex::new(name, cols, unique);
        for (pk, row) in &inner.rows {
            idx.insert(&row.values, pk)?;
        }
        inner.indexes.push(idx);
        Ok(inner.indexes.len() - 1)
    }

    /// Position of an index by name.
    pub fn index_pos(&self, name: &str) -> Option<usize> {
        self.inner
            .read()
            .indexes
            .iter()
            .position(|i| i.name == name)
    }

    /// Primary keys of rows whose index key equals `ik`.
    pub fn index_lookup(&self, idx: usize, ik: &Key) -> Vec<Key> {
        self.inner.read().indexes[idx].lookup(ik)
    }

    /// Number of rows under index key `ik`.
    pub fn index_cardinality(&self, idx: usize, ik: &Key) -> usize {
        self.inner.read().indexes[idx].cardinality(ik)
    }

    /// Rows (with their primary keys) whose index key equals `ik`,
    /// fetched atomically under one latch acquisition — the consistency
    /// checker and the propagation rules use this so that a row cannot
    /// vanish between the index probe and the row fetch.
    pub fn index_rows(&self, idx: usize, ik: &Key) -> Vec<(Key, Row)> {
        self.inner.read().index_rows(idx, ik)
    }

    // --- physical row operations ---------------------------------------

    /// Insert a full row (ordinary path: counter 1, consistent flag).
    pub fn insert(&self, values: Vec<Value>, lsn: Lsn) -> DbResult<Key> {
        self.insert_row(Row::new(values, lsn))
    }

    /// Insert with the row's LSN produced *under the table latch* by
    /// `mk_lsn` — the engine appends the log record inside the closure,
    /// making "apply + log + stamp" atomic with respect to fuzzy scans
    /// and the consistency checker. The closure is fallible so the
    /// engine can re-check table access state under the latch (closing
    /// the race against a concurrent synchronization freeze);
    /// validation, constraint checks and the closure all run before
    /// anything is mutated, so on failure nothing is logged or applied.
    pub fn insert_with(
        &self,
        values: Vec<Value>,
        mk_lsn: impl FnOnce() -> DbResult<Lsn>,
    ) -> DbResult<Key> {
        let schema = self.schema.read();
        self.inner.write().insert_with(&schema, values, mk_lsn)
    }

    /// Insert a row with explicit metadata (used by the propagator,
    /// which controls counters, flags and LSN stamping itself). One
    /// pass under one latch acquisition; the metadata is taken from
    /// `row` verbatim.
    pub fn insert_row(&self, row: Row) -> DbResult<Key> {
        let schema = self.schema.read();
        self.inner.write().insert_row(&schema, row)
    }

    /// Delete by primary key, returning the removed row.
    pub fn delete(&self, key: &Key) -> DbResult<Row> {
        self.delete_with(key, |_| Ok(()))
    }

    /// Delete with a fallible logging closure run under the latch after
    /// the row is found (receives the pre-image for undo logging) and
    /// before it is removed; a closure error leaves the row untouched.
    pub fn delete_with(&self, key: &Key, log: impl FnOnce(&Row) -> DbResult<()>) -> DbResult<Row> {
        self.inner.write().delete_with(key, log)
    }

    /// Sparse-column update by primary key. Handles primary-key column
    /// changes by moving the row. `new_lsn` becomes the row's state
    /// identifier.
    pub fn update(
        &self,
        key: &Key,
        cols: &[(usize, Value)],
        new_lsn: Lsn,
    ) -> DbResult<UpdateOutcome> {
        self.update_with(key, cols, |_| Ok(new_lsn))
    }

    /// Update with the new LSN produced under the latch by `mk_lsn`,
    /// which receives the update plan (old column values, key movement,
    /// previous LSN) so the engine can append redo+undo information to
    /// the log atomically with the physical change. The closure runs
    /// before anything is mutated; on error the row is untouched.
    pub fn update_with(
        &self,
        key: &Key,
        cols: &[(usize, Value)],
        mk_lsn: impl FnOnce(&UpdateOutcome) -> DbResult<Lsn>,
    ) -> DbResult<UpdateOutcome> {
        let schema = self.schema.read();
        let pkey_cols = schema.pkey().to_vec();
        let arity = schema.arity();
        drop(schema);
        self.inner
            .write()
            .update_with(&pkey_cols, arity, key, cols, mk_lsn)
    }

    /// Mutate a row in place under the latch (propagator-only path for
    /// counter/flag/LSN maintenance that must not move the row).
    ///
    /// Returns `None` if the key does not exist. The closure must not
    /// change columns that participate in the primary key or any index.
    pub fn with_row_mut<R>(&self, key: &Key, f: impl FnOnce(&mut Row) -> R) -> Option<R> {
        let mut inner = self.inner.write();
        inner.rows.get_mut(key).map(f)
    }

    /// Clone of the row at `key`.
    pub fn get(&self, key: &Key) -> Option<Row> {
        self.inner.read().rows.get(key).cloned()
    }

    /// Whether a row with `key` exists.
    pub fn contains(&self, key: &Key) -> bool {
        self.inner.read().rows.contains_key(key)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.read().rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consistent snapshot of all rows (takes the read latch once; test
    /// and verification helper, not used on hot paths).
    pub fn snapshot(&self) -> Vec<(Key, Row)> {
        self.inner
            .read()
            .rows
            .iter()
            .map(|(k, r)| (k.clone(), r.clone()))
            .collect()
    }

    // --- latches --------------------------------------------------------

    /// Shared latch: blocks physical writes while held (used by the
    /// consistency checker's lock-free read of contributing rows).
    pub fn latch_shared(&self) -> RwLockReadGuard<'_, impl Sized> {
        self.inner.read()
    }

    /// Exclusive latch: pauses *all* physical operations while held —
    /// the §3.4 synchronization latch.
    pub fn latch_exclusive(&self) -> RwLockWriteGuard<'_, impl Sized> {
        self.inner.write()
    }

    /// Open a write session: one exclusive latch acquisition amortized
    /// over a whole batch of physical operations. The batched log
    /// propagator drains a group of records through one session instead
    /// of paying a latch round trip per record.
    ///
    /// The session snapshots the schema at open; concurrent schema
    /// surgery (`project_columns`) on a table with an open session is
    /// excluded by the latch itself. While a session is open every
    /// access to this table from the owning thread must go through the
    /// session — the latch is not re-entrant.
    pub fn write_session(&self) -> WriteSession<'_> {
        let schema = self.schema.read().clone();
        let pkey = schema.pkey().to_vec();
        let arity = schema.arity();
        WriteSession {
            schema,
            pkey,
            arity,
            inner: self.inner.write(),
        }
    }

    // --- fuzzy scan ------------------------------------------------------

    /// Begin a fuzzy scan: chunked, lock-free (transaction-wise)
    /// iteration in primary-key order. Writers interleave between
    /// chunks, so the result may mix states — by design (§2.2, §3.2).
    pub fn fuzzy_scan(self: &Arc<Self>, chunk_size: usize) -> FuzzyScanner {
        FuzzyScanner {
            table: Arc::clone(self),
            after: None,
            chunk_size: chunk_size.max(1),
        }
    }

    // --- schema surgery (rename-in-place split variant, §5.2) -----------

    /// Project the table down to `keep` columns (positions in current
    /// schema order), rewriting rows and rebuilding indexes. The
    /// primary key must be contained in `keep`. Indexes referencing
    /// dropped columns are themselves dropped.
    pub fn project_columns(&self, keep: &[usize]) -> DbResult<()> {
        let old_schema = self.schema.read().clone();
        if !old_schema.covers_pkey(keep) {
            return Err(DbError::InvalidSchema(
                "cannot drop primary-key columns".into(),
            ));
        }
        let mut b = Schema::builder();
        for &i in keep {
            let c = old_schema
                .columns()
                .get(i)
                .ok_or_else(|| DbError::InvalidSchema(format!("no column {i}")))?;
            b = if c.nullable {
                b.nullable(&c.name, c.ty)
            } else {
                b.column(&c.name, c.ty)
            };
        }
        let pkey_names: Vec<String> = old_schema
            .pkey()
            .iter()
            .map(|&p| old_schema.columns()[p].name.clone())
            .collect();
        let pkey_refs: Vec<&str> = pkey_names.iter().map(String::as_str).collect();
        let new_schema = b.primary_key(&pkey_refs).build()?;

        let mut inner = self.inner.write();
        let remap: Vec<usize> = keep.to_vec();
        // Rebuild surviving indexes with remapped column positions.
        let mut new_indexes = Vec::new();
        for idx in &inner.indexes {
            if let Some(new_cols) = idx
                .cols
                .iter()
                .map(|c| remap.iter().position(|k| k == c))
                .collect::<Option<Vec<_>>>()
            {
                new_indexes.push(SecondaryIndex::new(&idx.name, new_cols, idx.unique));
            }
        }
        let old_rows = std::mem::take(&mut inner.rows);
        for (_, mut row) in old_rows {
            row.values = remap.iter().map(|&i| row.values[i].clone()).collect();
            let key = new_schema.key_of(&row.values);
            for idx in &mut new_indexes {
                idx.insert(&row.values, &key)?;
            }
            inner.rows.insert(key, row);
        }
        inner.indexes = new_indexes;
        drop(inner);
        *self.schema.write() = new_schema;
        Ok(())
    }
}

/// An open write session on one table: the exclusive latch held across
/// many physical operations (see [`Table::write_session`]).
///
/// The method surface mirrors [`Table`]'s propagator-facing operations
/// (`insert_row`, `delete`, `update`, `with_row_mut`, reads and index
/// probes) so rule code can be written once against either.
pub struct WriteSession<'a> {
    schema: Schema,
    pkey: Vec<usize>,
    arity: usize,
    inner: RwLockWriteGuard<'a, TableInner>,
}

impl WriteSession<'_> {
    /// Schema snapshot taken when the session was opened.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Insert a full row (ordinary metadata: counter 1, consistent).
    pub fn insert(&mut self, values: Vec<Value>, lsn: Lsn) -> DbResult<Key> {
        self.inner.insert_row(&self.schema, Row::new(values, lsn))
    }

    /// Insert a row with explicit metadata.
    pub fn insert_row(&mut self, row: Row) -> DbResult<Key> {
        self.inner.insert_row(&self.schema, row)
    }

    /// Delete by primary key, returning the removed row.
    pub fn delete(&mut self, key: &Key) -> DbResult<Row> {
        self.inner.delete_with(key, |_| Ok(()))
    }

    /// Sparse-column update by primary key (moves the row on a
    /// primary-key change).
    pub fn update(
        &mut self,
        key: &Key,
        cols: &[(usize, Value)],
        new_lsn: Lsn,
    ) -> DbResult<UpdateOutcome> {
        self.inner
            .update_with(&self.pkey, self.arity, key, cols, |_| Ok(new_lsn))
    }

    /// Mutate a row in place (counter/flag/LSN maintenance; must not
    /// change key or indexed columns).
    pub fn with_row_mut<R>(&mut self, key: &Key, f: impl FnOnce(&mut Row) -> R) -> Option<R> {
        self.inner.rows.get_mut(key).map(f)
    }

    /// Clone of the row at `key`.
    pub fn get(&self, key: &Key) -> Option<Row> {
        self.inner.rows.get(key).cloned()
    }

    /// Whether a row with `key` exists.
    pub fn contains(&self, key: &Key) -> bool {
        self.inner.rows.contains_key(key)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.inner.rows.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.inner.rows.is_empty()
    }

    /// Primary keys of rows whose index key equals `ik`.
    pub fn index_lookup(&self, idx: usize, ik: &Key) -> Vec<Key> {
        self.inner.indexes[idx].lookup(ik)
    }

    /// Number of rows under index key `ik`.
    pub fn index_cardinality(&self, idx: usize, ik: &Key) -> usize {
        self.inner.indexes[idx].cardinality(ik)
    }

    /// Rows (with primary keys) whose index key equals `ik`.
    pub fn index_rows(&self, idx: usize, ik: &Key) -> Vec<(Key, Row)> {
        self.inner.index_rows(idx, ik)
    }
}

/// Chunked fuzzy scanner (see [`Table::fuzzy_scan`]).
pub struct FuzzyScanner {
    table: Arc<Table>,
    after: Option<Key>,
    chunk_size: usize,
}

impl FuzzyScanner {
    /// Next chunk of rows, or an empty vector when the scan is done.
    pub fn next_chunk(&mut self) -> Vec<(Key, Row)> {
        let inner = self.table.inner.read();
        let range = match &self.after {
            None => inner.rows.range::<Key, _>(..),
            Some(k) => inner
                .rows
                .range::<Key, _>((Bound::Excluded(k.clone()), Bound::Unbounded)),
        };
        let chunk: Vec<(Key, Row)> = range
            .take(self.chunk_size)
            .map(|(k, r)| (k.clone(), r.clone()))
            .collect();
        if let Some((k, _)) = chunk.last() {
            self.after = Some(k.clone());
        }
        chunk
    }

    /// Drain the remaining chunks into one vector.
    pub fn collect_all(mut self) -> Vec<(Key, Row)> {
        let mut out = Vec::new();
        loop {
            let chunk = self.next_chunk();
            if chunk.is_empty() {
                return out;
            }
            out.extend(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::ColumnType;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", ColumnType::Int)
            .column("j", ColumnType::Int)
            .nullable("payload", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    fn table() -> Arc<Table> {
        Arc::new(Table::new(TableId(1), "t", schema()))
    }

    fn row(id: i64, j: i64) -> Vec<Value> {
        vec![Value::Int(id), Value::Int(j), Value::str(format!("p{id}"))]
    }

    #[test]
    fn insert_get_delete() {
        let t = table();
        let k = t.insert(row(1, 10), Lsn(1)).unwrap();
        assert_eq!(k, Key::single(1));
        assert_eq!(t.get(&k).unwrap().values, row(1, 10));
        assert_eq!(t.len(), 1);
        assert!(matches!(
            t.insert(row(1, 99), Lsn(2)),
            Err(DbError::DuplicateKey(_))
        ));
        let old = t.delete(&k).unwrap();
        assert_eq!(old.values, row(1, 10));
        assert!(t.is_empty());
        assert!(matches!(t.delete(&k), Err(DbError::KeyNotFound(_))));
    }

    #[test]
    fn update_plain_and_lsn_stamp() {
        let t = table();
        let k = t.insert(row(1, 10), Lsn(1)).unwrap();
        let out = t.update(&k, &[(2, Value::str("new"))], Lsn(5)).unwrap();
        assert_eq!(out.old_cols, vec![(2, Value::str("p1"))]);
        assert_eq!(out.old_key, out.new_key);
        assert_eq!(out.old_lsn, Lsn(1));
        let r = t.get(&k).unwrap();
        assert_eq!(r.lsn, Lsn(5));
        assert_eq!(r.values[2], Value::str("new"));
    }

    #[test]
    fn update_moves_row_on_pkey_change() {
        let t = table();
        let k = t.insert(row(1, 10), Lsn(1)).unwrap();
        let out = t.update(&k, &[(0, Value::Int(2))], Lsn(2)).unwrap();
        assert_eq!(out.new_key, Key::single(2));
        assert!(t.get(&Key::single(1)).is_none());
        assert!(t.get(&Key::single(2)).is_some());
    }

    #[test]
    fn update_pkey_collision_rejected() {
        let t = table();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        t.insert(row(2, 20), Lsn(2)).unwrap();
        assert!(matches!(
            t.update(&Key::single(1), &[(0, Value::Int(2))], Lsn(3)),
            Err(DbError::DuplicateKey(_))
        ));
        // Nothing changed.
        assert_eq!(t.get(&Key::single(1)).unwrap().values, row(1, 10));
    }

    #[test]
    fn update_out_of_range_column_rejected() {
        let t = table();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        assert!(matches!(
            t.update(&Key::single(1), &[(9, Value::Int(0))], Lsn(2)),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn secondary_index_tracks_all_mutations() {
        let t = table();
        let j = t.add_index("j_idx", &["j"], false).unwrap();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        t.insert(row(2, 10), Lsn(2)).unwrap();
        t.insert(row(3, 30), Lsn(3)).unwrap();
        assert_eq!(t.index_lookup(j, &Key::single(10)).len(), 2);

        // Update join attribute: moves index entry.
        t.update(&Key::single(1), &[(1, Value::Int(30))], Lsn(4))
            .unwrap();
        assert_eq!(t.index_lookup(j, &Key::single(10)), vec![Key::single(2)]);
        assert_eq!(t.index_cardinality(j, &Key::single(30)), 2);

        // Delete removes entries.
        t.delete(&Key::single(3)).unwrap();
        assert_eq!(t.index_lookup(j, &Key::single(30)), vec![Key::single(1)]);
    }

    #[test]
    fn index_on_existing_rows() {
        let t = table();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        t.insert(row(2, 10), Lsn(2)).unwrap();
        let j = t.add_index("j_idx", &["j"], false).unwrap();
        assert_eq!(t.index_cardinality(j, &Key::single(10)), 2);
        assert!(t.add_index("j_idx", &["j"], false).is_err());
        assert!(t.add_index("bad", &["nope"], false).is_err());
    }

    #[test]
    fn unique_index_enforced_on_insert_and_update() {
        let t = table();
        t.add_index("u", &["j"], true).unwrap();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        assert!(matches!(
            t.insert(row(2, 10), Lsn(2)),
            Err(DbError::UniqueViolation { .. })
        ));
        assert_eq!(t.len(), 1, "failed insert must not leave residue");
        t.insert(row(2, 20), Lsn(2)).unwrap();
        assert!(matches!(
            t.update(&Key::single(2), &[(1, Value::Int(10))], Lsn(3)),
            Err(DbError::UniqueViolation { .. })
        ));
        // Updating a row's unique value to itself is fine.
        t.update(&Key::single(2), &[(1, Value::Int(20))], Lsn(4))
            .unwrap();
    }

    #[test]
    fn freeze_gates_access() {
        let t = table();
        assert!(t.check_access(TxnId(1)).is_ok());
        t.freeze([TxnId(1)].into_iter().collect());
        assert!(t.check_access(TxnId(1)).is_ok());
        assert!(matches!(
            t.check_access(TxnId(2)),
            Err(DbError::TableFrozen(_))
        ));
        assert!(t.retire_allowed(TxnId(1)));
        t.mark_dropped();
        assert!(t.check_access(TxnId(1)).is_err());
        t.reactivate();
        assert!(t.check_access(TxnId(2)).is_ok());
    }

    #[test]
    fn fuzzy_scan_sees_interleaved_writes_loosely() {
        let t = table();
        for i in 0..100 {
            t.insert(row(i, i % 7), Lsn(i as u64 + 1)).unwrap();
        }
        let mut scan = t.fuzzy_scan(10);
        let first = scan.next_chunk();
        assert_eq!(first.len(), 10);
        // A writer interleaves: deletes a row ahead of the cursor and
        // inserts one behind it.
        t.delete(&Key::single(50)).unwrap();
        t.insert(row(3000, 0), Lsn(200)).unwrap(); // ahead (large key)
        let rest: Vec<_> = std::iter::from_fn(|| {
            let c = scan.next_chunk();
            if c.is_empty() {
                None
            } else {
                Some(c)
            }
        })
        .flatten()
        .collect();
        let keys: Vec<i64> = rest.iter().filter_map(|(k, _)| k.0[0].as_int()).collect();
        assert!(!keys.contains(&50), "deleted-ahead row must not appear");
        assert!(keys.contains(&3000), "inserted-ahead row appears");
    }

    #[test]
    fn fuzzy_scan_collect_all_matches_snapshot_when_quiescent() {
        let t = table();
        for i in 0..37 {
            t.insert(row(i, 0), Lsn(1)).unwrap();
        }
        let scanned = t.fuzzy_scan(8).collect_all();
        assert_eq!(scanned.len(), 37);
        assert_eq!(scanned, t.snapshot());
    }

    #[test]
    fn with_row_mut_edits_metadata() {
        let t = table();
        let k = t.insert(row(1, 10), Lsn(1)).unwrap();
        let got = t.with_row_mut(&k, |r| {
            r.counter = 7;
            r.counter
        });
        assert_eq!(got, Some(7));
        assert_eq!(t.get(&k).unwrap().counter, 7);
        assert_eq!(t.with_row_mut(&Key::single(99), |_| ()), None);
    }

    #[test]
    fn project_columns_rewrites_rows_and_schema() {
        let t = table();
        t.add_index("j_idx", &["j"], false).unwrap();
        t.add_index("p_idx", &["payload"], false).unwrap();
        for i in 0..5 {
            t.insert(row(i, 10 + i), Lsn(1)).unwrap();
        }
        // Keep id + j, drop payload.
        t.project_columns(&[0, 1]).unwrap();
        let s = t.schema();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.position_of("payload"), None);
        assert_eq!(t.get(&Key::single(3)).unwrap().values.len(), 2);
        // Index on a dropped column is gone; on a kept column survives.
        assert!(t.index_pos("p_idx").is_none());
        let j = t.index_pos("j_idx").unwrap();
        assert_eq!(t.index_lookup(j, &Key::single(12)), vec![Key::single(2)]);
    }

    #[test]
    fn project_cannot_drop_pkey() {
        let t = table();
        assert!(t.project_columns(&[1, 2]).is_err());
    }

    #[test]
    fn write_session_batches_ops_under_one_latch() {
        let t = table();
        let j = t.add_index("j_idx", &["j"], false).unwrap();
        {
            let mut s = t.write_session();
            s.insert(row(1, 10), Lsn(1)).unwrap();
            s.insert(row(2, 20), Lsn(2)).unwrap();
            s.update(&Key::single(1), &[(1, Value::Int(20))], Lsn(3))
                .unwrap();
            assert_eq!(s.index_lookup(j, &Key::single(20)).len(), 2);
            s.delete(&Key::single(2)).unwrap();
            assert!(s.contains(&Key::single(1)));
            assert_eq!(s.len(), 1);
            assert_eq!(s.get(&Key::single(1)).unwrap().lsn, Lsn(3));
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&Key::single(1)).unwrap().values[1], Value::Int(20));
        assert_eq!(t.index_cardinality(j, &Key::single(20)), 1);
    }

    #[test]
    fn write_session_insert_row_keeps_metadata() {
        let t = table();
        let mut r = Row::new(row(1, 10), Lsn(4));
        r.counter = 3;
        let mut s = t.write_session();
        let k = s.insert_row(r).unwrap();
        let got = s.get(&k).unwrap();
        assert_eq!(got.counter, 3);
        assert_eq!(got.lsn, Lsn(4));
    }

    #[test]
    fn exclusive_latch_blocks_writer() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let t = table();
        t.insert(row(1, 1), Lsn(1)).unwrap();
        let latch = t.latch_exclusive();
        let done = Arc::new(AtomicBool::new(false));
        let (t2, done2) = (Arc::clone(&t), Arc::clone(&done));
        let h = std::thread::spawn(move || {
            t2.insert(row(2, 2), Lsn(2)).unwrap();
            done2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !done.load(Ordering::SeqCst),
            "writer must be paused by the latch"
        );
        drop(latch);
        h.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        assert_eq!(t.len(), 2);
    }
}
