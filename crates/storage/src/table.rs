//! Tables: primary-key B-tree heaps with secondary indexes, short
//! physical latches, freeze states and the fuzzy scan.
//!
//! # Sharded storage
//!
//! The row heap is partitioned into [`TABLE_SHARDS`] sub-heaps, each
//! its own B-tree under its own latch. A row is routed to a shard by a
//! deterministic hash of its *shard key* — by default the whole
//! primary key, optionally a subset of key positions chosen at
//! preparation time ([`Table::set_shard_key`]) so that rows a
//! propagation rule touches together colocate (a FOJ target routes by
//! the join component, keeping every row of one join group in one
//! shard).
//!
//! Single-key operations latch only the owning shard, scans and
//! whole-table latches compose all shard latches in ascending order,
//! and [`Table::write_session_masked`] opens a session over a strided
//! subset of shards — the storage half of subject-sharded parallel
//! apply: workers on disjoint masks write the same table concurrently
//! without ever sharing a latch.

use crate::index::SecondaryIndex;
use crate::mvcc::{CommitTable, VersionChain, VersionEntry, SYSTEM};
use crate::row::Row;
use morph_common::{DbError, DbResult, Key, Lsn, Schema, TableId, TxnId, Value};
use parking_lot::{RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::collections::{BTreeMap, HashSet};
use std::hash::{Hash, Hasher};
use std::ops::Bound;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Number of storage shards per table. A power of two so that lane
/// strides {1, 2, 4, 8} tile the shard space exactly.
pub const TABLE_SHARDS: usize = 8;

/// Largest stride that tiles the shard space and does not exceed `n`
/// (the usable worker/lane count for a requested parallelism of `n`).
pub fn shard_stride(n: usize) -> usize {
    let mut s = 1;
    while s * 2 <= n.min(TABLE_SHARDS) {
        s *= 2;
    }
    s
}

/// Deterministic routing hash: the same values route to the same shard
/// in every process (SipHash with fixed keys), which keeps crash-sim
/// replays byte-identical.
fn route_hash(values: &[Value], positions: Option<&[usize]>) -> usize {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    match positions {
        None => {
            for v in values {
                v.hash(&mut h);
            }
        }
        Some(pos) => {
            for &p in pos {
                values[p].hash(&mut h);
            }
        }
    }
    (h.finish() % TABLE_SHARDS as u64) as usize
}

/// Access state of a table.
///
/// After a non-blocking synchronization the source tables are *frozen*:
/// only the transactions that were active at synchronization time (and
/// are now rolling back, or — under non-blocking commit — running to
/// completion) may still touch them (§3.4).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TableState {
    /// Normal operation.
    Active,
    /// Only the listed transactions may operate on the table.
    Frozen { allowed: HashSet<TxnId> },
    /// The table is logically dropped; no transaction may touch it.
    Dropped,
}

/// One storage shard: a slice of the row heap plus the matching slice
/// of every secondary index (a row's index entries live in the shard
/// that owns the row) and, when versioning is enabled, the archived
/// version chains for keys this shard owns.
struct TableShard {
    rows: BTreeMap<Key, Row>,
    indexes: Vec<SecondaryIndex>,
    /// Pre-images displaced by versioned writes, oldest first. The
    /// inline row in `rows` is the newest state and never appears
    /// here; a key present here but absent from `rows` was deleted
    /// (its chain ends in a tombstone).
    versions: BTreeMap<Key, VersionChain>,
}

impl TableShard {
    /// Validate + constraint-check an insert; returns the key without
    /// mutating anything (so a fallible logging closure can run between
    /// the checks and the mutation). Uniqueness is checked within this
    /// shard only — callers that hold more shards extend the check.
    fn check_insert(&self, schema: &Schema, values: &[Value]) -> DbResult<Key> {
        schema.validate(values)?;
        let key = schema.key_of(values);
        if self.rows.contains_key(&key) {
            return Err(DbError::DuplicateKey(format!("{key:?}")));
        }
        for idx in &self.indexes {
            if idx.unique && idx.cardinality(&idx.key_of(values)) > 0 {
                return Err(DbError::UniqueViolation {
                    index: idx.name.clone(),
                    key: format!("{:?}", idx.key_of(values)),
                });
            }
        }
        Ok(key)
    }

    fn insert_unchecked(&mut self, key: Key, row: Row) -> Key {
        for idx in &mut self.indexes {
            idx.insert(&row.values, &key)
                .expect("uniqueness pre-checked"); // morph-lint: allow(panic, uniqueness was checked earlier in the same latched section)
        }
        self.rows.insert(key.clone(), row);
        key
    }

    fn insert_with(
        &mut self,
        schema: &Schema,
        values: Vec<Value>,
        writer: TxnId,
        mk_lsn: impl FnOnce() -> DbResult<Lsn>,
    ) -> DbResult<Key> {
        let key = self.check_insert(schema, &values)?;
        let lsn = mk_lsn()?;
        let mut row = Row::new(values, lsn);
        row.writer = writer;
        Ok(self.insert_unchecked(key, row))
    }

    /// Insert a row with explicit metadata in one pass (counter, flag,
    /// presence and LSN are taken from `row` verbatim).
    fn insert_row(&mut self, schema: &Schema, row: Row) -> DbResult<Key> {
        let key = self.check_insert(schema, &row.values)?;
        Ok(self.insert_unchecked(key, row))
    }

    fn delete_with(&mut self, key: &Key, log: impl FnOnce(&Row) -> DbResult<()>) -> DbResult<Row> {
        if !self.rows.contains_key(key) {
            return Err(DbError::KeyNotFound(format!("{key:?}")));
        }
        log(&self.rows[key])?;
        let row = self.rows.remove(key).expect("checked above"); // morph-lint: allow(panic, presence was checked earlier in the same latched section)
        for idx in &mut self.indexes {
            idx.remove(&row.values, key);
        }
        Ok(row)
    }

    fn index_rows_into(&self, idx: usize, ik: &Key, out: &mut Vec<(Key, Row)>) {
        if let Some(set) = self.indexes[idx].pk_set(ik) {
            for pk in set {
                if let Some(r) = self.rows.get(pk) {
                    out.push((pk.clone(), r.clone()));
                }
            }
        }
    }
}

/// Shared core of the update path. `new_shard` is `Some` when a
/// primary-key change moves the row to a different shard (both shard
/// latches are then held by the caller). Unique-index pre-checks that
/// need cross-shard visibility are the caller's responsibility; the
/// local unique check against the destination shard happens here.
///
/// `ver` is `Some(writer)` when the write must maintain version
/// chains: the displaced inline state is archived at the old key (plus
/// a tombstone there if the key moves) and the new inline row is
/// stamped with `writer`. `None` leaves chains and writer stamps
/// untouched (versioning disabled, or a transformation-internal write
/// below the snapshot horizon).
#[allow(clippy::too_many_arguments)]
fn update_core(
    old_shard: &mut TableShard,
    new_shard: Option<&mut TableShard>,
    pkey_cols: &[usize],
    arity: usize,
    key: &Key,
    cols: &[(usize, Value)],
    ver: Option<TxnId>,
    mk_lsn: impl FnOnce(&UpdateOutcome) -> DbResult<Lsn>,
) -> DbResult<UpdateOutcome> {
    for (i, _) in cols {
        if *i >= arity {
            return Err(DbError::ArityMismatch {
                expected: arity,
                got: *i + 1,
            });
        }
    }
    let row = old_shard
        .rows
        .get(key)
        .ok_or_else(|| DbError::KeyNotFound(format!("{key:?}")))?;
    let old_lsn = row.lsn;

    let mut new_values = row.values.clone();
    for (i, v) in cols {
        new_values[*i] = v.clone();
    }
    let new_key = Key::project(&new_values, pkey_cols);

    if new_key != *key {
        let target = new_shard.as_deref().unwrap_or(&*old_shard);
        if target.rows.contains_key(&new_key) {
            return Err(DbError::DuplicateKey(format!("{new_key:?}")));
        }
    }
    // Unique-index pre-check for the new image, within the shards at
    // hand (cross-shard uniqueness is pre-checked by full-table paths).
    for idx in &old_shard.indexes {
        if idx.unique {
            let new_ik = idx.key_of(&new_values);
            let old_ik = idx.key_of(&old_shard.rows[key].values);
            if new_ik != old_ik && idx.cardinality(&new_ik) > 0 {
                return Err(DbError::UniqueViolation {
                    index: idx.name.clone(),
                    key: format!("{new_ik:?}"),
                });
            }
        }
    }

    // Compute the full outcome (pre-images included) before any
    // mutation, so a closure error is side-effect free.
    let old_cols: Vec<(usize, Value)> = {
        let row = &old_shard.rows[key];
        cols.iter()
            .map(|(i, _)| (*i, row.values[*i].clone()))
            .collect()
    };
    let outcome = UpdateOutcome {
        old_cols,
        old_key: key.clone(),
        new_key: new_key.clone(),
        old_lsn,
    };
    let lsn = mk_lsn(&outcome)?;

    let mut row = old_shard.rows.remove(key).expect("checked above"); // morph-lint: allow(panic, presence was checked earlier in the same latched section)
    for idx in &mut old_shard.indexes {
        idx.remove(&row.values, key);
    }
    if let Some(writer) = ver {
        let chain = old_shard.versions.entry(key.clone()).or_default();
        chain.push(VersionEntry {
            lsn: row.lsn,
            writer: row.writer,
            data: Some(row.clone()),
        });
        if new_key != *key {
            // The old key ceases to exist as of this operation.
            chain.push(VersionEntry {
                lsn,
                writer,
                data: None,
            });
        }
    }
    row.apply_updates(cols);
    row.lsn = lsn;
    if let Some(writer) = ver {
        row.writer = writer;
    }
    let target = match new_shard {
        Some(t) => t,
        None => old_shard,
    };
    for idx in &mut target.indexes {
        idx.insert(&row.values, &new_key)
            .expect("uniqueness pre-checked"); // morph-lint: allow(panic, uniqueness was checked earlier in the same latched section)
    }
    target.rows.insert(new_key, row);

    Ok(outcome)
}

/// Outcome of an update, reporting key movement and the pre-images
/// needed for undo logging.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateOutcome {
    /// Pre-update values of the touched columns.
    pub old_cols: Vec<(usize, Value)>,
    /// Key before the update.
    pub old_key: Key,
    /// Key after the update (differs if a primary-key column changed).
    pub new_key: Key,
    /// Row LSN before the update.
    pub old_lsn: Lsn,
}

/// A main-memory table.
///
/// All physical operations take a short write latch on the owning row
/// shard; [`Table::latch_exclusive`] composes every shard latch, which
/// the synchronization step holds across the final log propagation
/// iteration (§3.4) — this is what "latching the source tables" means
/// in this engine.
pub struct Table {
    id: TableId,
    name: RwLock<String>,
    schema: RwLock<Schema>,
    state: RwLock<TableState>,
    /// Positions *within the primary key* whose values route a row to
    /// its shard; `None` routes by the whole key.
    shard_key: RwLock<Option<Vec<usize>>>,
    /// Number of unique secondary indexes. Uniqueness needs cross-shard
    /// visibility, so single-key writes fall back to the all-shard path
    /// while this is non-zero.
    unique_indexes: AtomicUsize,
    /// Whether single-key writes maintain version chains (MVCC). Off by
    /// default: the unversioned engine pays nothing for the feature.
    versioning: AtomicBool,
    shards: [RwLock<TableShard>; TABLE_SHARDS],
}

impl Table {
    /// Create an empty table.
    pub fn new(id: TableId, name: &str, schema: Schema) -> Table {
        Table {
            id,
            name: RwLock::new(name.to_owned()),
            schema: RwLock::new(schema),
            state: RwLock::new(TableState::Active),
            shard_key: RwLock::new(None),
            unique_indexes: AtomicUsize::new(0),
            versioning: AtomicBool::new(false),
            shards: std::array::from_fn(|_| {
                RwLock::new(TableShard {
                    rows: BTreeMap::new(),
                    indexes: Vec::new(),
                    versions: BTreeMap::new(),
                })
            }),
        }
    }

    /// Stable identifier.
    pub fn id(&self) -> TableId {
        self.id
    }

    /// Current name (tables can be renamed; §5.2 rename-in-place).
    pub fn name(&self) -> String {
        self.name.read().clone()
    }

    pub(crate) fn set_name(&self, name: &str) {
        *self.name.write() = name.to_owned();
    }

    /// A clone of the current schema.
    pub fn schema(&self) -> Schema {
        self.schema.read().clone()
    }

    // --- versioning -----------------------------------------------------

    /// Turn on version-chain maintenance for single-key writes. Never
    /// turned back off: chains whose entries predate enablement simply
    /// don't exist, and the inline rows' `SYSTEM` stamps make them
    /// visible to every snapshot by LSN order alone.
    pub fn enable_versioning(&self) {
        self.versioning.store(true, Ordering::Release);
    }

    /// Whether versioned writes maintain chains.
    pub fn versioning_enabled(&self) -> bool {
        self.versioning.load(Ordering::Acquire)
    }

    /// Total archived version entries across all shards (GC accounting
    /// and tests; takes each shard latch once).
    pub fn version_count(&self) -> usize {
        self.all_read()
            .iter()
            .map(|g| g.versions.values().map(Vec::len).sum::<usize>())
            .sum()
    }

    // --- shard routing -------------------------------------------------

    /// Route rows to shards by the values at `positions` *within the
    /// primary key* instead of the whole key. Must be called while the
    /// table is empty (preparation time): rows are never re-homed.
    ///
    /// Choosing the columns a transformation's rules cluster on (the
    /// join component of a FOJ target) makes every row such a rule can
    /// touch live in one shard, which is what lets masked write
    /// sessions apply disjoint rule groups concurrently.
    pub fn set_shard_key(&self, positions: Vec<usize>) -> DbResult<()> {
        let key_len = self.schema.read().pkey().len();
        if positions.iter().any(|&p| p >= key_len) {
            return Err(DbError::InvalidSchema(format!(
                "shard-key position out of range (key arity {key_len})"
            )));
        }
        if !self.is_empty() {
            return Err(DbError::InvalidSchema(
                "shard key must be configured on an empty table".into(),
            ));
        }
        *self.shard_key.write() = Some(positions);
        Ok(())
    }

    /// The shard a row with this primary key lives in.
    pub fn shard_of_key(&self, key: &Key) -> usize {
        route_hash(&key.0, self.shard_key.read().as_deref())
    }

    /// The shard selected by the routing-component values alone (the
    /// values at the shard-key positions, in their configured order).
    /// Operators use this to assign log records to apply lanes without
    /// materializing target keys.
    pub fn shard_of_component(&self, component: &[Value]) -> usize {
        route_hash(component, None)
    }

    fn route(&self, key: &Key) -> usize {
        self.shard_of_key(key)
    }

    fn all_read(&self) -> [RwLockReadGuard<'_, TableShard>; TABLE_SHARDS] {
        std::array::from_fn(|i| self.shards[i].read())
    }

    fn all_write(&self) -> [RwLockWriteGuard<'_, TableShard>; TABLE_SHARDS] {
        std::array::from_fn(|i| self.shards[i].write())
    }

    // --- access state -------------------------------------------------

    /// Current access state.
    pub fn state(&self) -> TableState {
        self.state.read().clone()
    }

    /// Freeze the table for everyone but `allowed` (§3.4).
    pub fn freeze(&self, allowed: HashSet<TxnId>) {
        *self.state.write() = TableState::Frozen { allowed };
    }

    /// Remove one transaction from the frozen allow-list (it finished
    /// rolling back / committing). Returns `true` when the allow-list
    /// is now empty, i.e. the table can be physically dropped.
    pub fn retire_allowed(&self, txn: TxnId) -> bool {
        let mut st = self.state.write();
        if let TableState::Frozen { allowed } = &mut *st {
            allowed.remove(&txn);
            allowed.is_empty()
        } else {
            false
        }
    }

    /// Mark the table dropped.
    pub fn mark_dropped(&self) {
        *self.state.write() = TableState::Dropped;
    }

    /// Reactivate a frozen table (transformation aborted).
    pub fn reactivate(&self) {
        *self.state.write() = TableState::Active;
    }

    /// Check that `txn` may operate on this table in its current state.
    pub fn check_access(&self, txn: TxnId) -> DbResult<()> {
        match &*self.state.read() {
            TableState::Active => Ok(()),
            TableState::Frozen { allowed } if allowed.contains(&txn) => Ok(()),
            TableState::Frozen { .. } | TableState::Dropped => Err(DbError::TableFrozen(self.id)),
        }
    }

    // --- indexes ------------------------------------------------------

    /// Create a secondary index over the named columns. Existing rows
    /// are indexed immediately (the preparation step creates indexes on
    /// empty transformed tables, so this is cheap there). Each shard
    /// holds the index slice for its own rows.
    pub fn add_index(&self, name: &str, columns: &[&str], unique: bool) -> DbResult<usize> {
        let schema = self.schema.read();
        let mut cols = Vec::with_capacity(columns.len());
        for c in columns {
            cols.push(schema.require(c)?);
        }
        drop(schema);
        let mut guards = self.all_write();
        if guards[0].indexes.iter().any(|i| i.name == name) {
            return Err(DbError::InvalidSchema(format!(
                "index {name:?} already exists"
            )));
        }
        for g in &mut guards {
            let mut idx = SecondaryIndex::new(name, cols.clone(), unique);
            for (pk, row) in &g.rows {
                idx.insert(&row.values, pk)?;
            }
            g.indexes.push(idx);
        }
        if unique {
            self.unique_indexes.fetch_add(1, Ordering::Relaxed);
        }
        Ok(guards[0].indexes.len() - 1)
    }

    /// Position of an index by name.
    pub fn index_pos(&self, name: &str) -> Option<usize> {
        self.shards[0]
            .read()
            .indexes
            .iter()
            .position(|i| i.name == name)
    }

    /// Primary keys of rows whose index key equals `ik`, in key order.
    pub fn index_lookup(&self, idx: usize, ik: &Key) -> Vec<Key> {
        let guards = self.all_read();
        let mut out: Vec<Key> = Vec::new();
        for g in &guards {
            if let Some(set) = g.indexes[idx].pk_set(ik) {
                out.extend(set.iter().cloned());
            }
        }
        out.sort();
        out
    }

    /// Number of rows under index key `ik`.
    pub fn index_cardinality(&self, idx: usize, ik: &Key) -> usize {
        self.all_read()
            .iter()
            .map(|g| g.indexes[idx].cardinality(ik))
            .sum()
    }

    /// Rows (with their primary keys) whose index key equals `ik`,
    /// fetched atomically under one composite latch acquisition — the
    /// consistency checker and the propagation rules use this so that a
    /// row cannot vanish between the index probe and the row fetch.
    pub fn index_rows(&self, idx: usize, ik: &Key) -> Vec<(Key, Row)> {
        let guards = self.all_read();
        let mut out: Vec<(Key, Row)> = Vec::new();
        for g in &guards {
            g.index_rows_into(idx, ik, &mut out);
        }
        if out.len() > 1 {
            out.sort_by(|a, b| a.0.cmp(&b.0));
        }
        out
    }

    // --- physical row operations ---------------------------------------

    /// Insert a full row (ordinary path: counter 1, consistent flag).
    pub fn insert(&self, values: Vec<Value>, lsn: Lsn) -> DbResult<Key> {
        self.insert_row(Row::new(values, lsn))
    }

    /// Insert with the row's LSN produced *under the shard latch* by
    /// `mk_lsn` — the engine appends the log record inside the closure,
    /// making "apply + log + stamp" atomic with respect to fuzzy scans
    /// and the consistency checker. The closure is fallible so the
    /// engine can re-check table access state under the latch (closing
    /// the race against a concurrent synchronization freeze);
    /// validation, constraint checks and the closure all run before
    /// anything is mutated, so on failure nothing is logged or applied.
    pub fn insert_with(
        &self,
        values: Vec<Value>,
        mk_lsn: impl FnOnce() -> DbResult<Lsn>,
    ) -> DbResult<Key> {
        self.insert_with_writer(values, SYSTEM, mk_lsn)
    }

    /// [`Table::insert_with`] with an explicit writing transaction for
    /// MVCC visibility. While versioning is disabled the stamp is
    /// forced to `SYSTEM` — rows written before a later
    /// [`Table::enable_versioning`] must stay visible by LSN order
    /// (their writers are not in any commit table).
    pub fn insert_with_writer(
        &self,
        values: Vec<Value>,
        writer: TxnId,
        mk_lsn: impl FnOnce() -> DbResult<Lsn>,
    ) -> DbResult<Key> {
        let writer = if self.versioning_enabled() {
            writer
        } else {
            SYSTEM
        };
        let schema = self.schema.read();
        schema.validate(&values)?;
        if self.unique_indexes.load(Ordering::Relaxed) == 0 {
            let key = schema.key_of(&values);
            let mut g = self.shards[self.route(&key)].write();
            g.insert_with(&schema, values, writer, mk_lsn)
        } else {
            // Unique constraints need cross-shard visibility: take the
            // composite latch (rare path; production transformations
            // only create non-unique indexes).
            let key = schema.key_of(&values);
            let target = self.route(&key);
            let mut guards = self.all_write();
            for (i, g) in guards.iter().enumerate() {
                if i == target {
                    g.check_insert(&schema, &values)?;
                } else {
                    for idx in &g.indexes {
                        if idx.unique && idx.cardinality(&idx.key_of(&values)) > 0 {
                            return Err(DbError::UniqueViolation {
                                index: idx.name.clone(),
                                key: format!("{:?}", idx.key_of(&values)),
                            });
                        }
                    }
                }
            }
            let lsn = mk_lsn()?;
            let mut row = Row::new(values, lsn);
            row.writer = writer;
            Ok(guards[target].insert_unchecked(key, row))
        }
    }

    /// Insert a row with explicit metadata (used by the propagator,
    /// which controls counters, flags and LSN stamping itself). One
    /// pass under one shard-latch acquisition; the metadata is taken
    /// from `row` verbatim.
    pub fn insert_row(&self, row: Row) -> DbResult<Key> {
        let schema = self.schema.read();
        schema.validate(&row.values)?;
        if self.unique_indexes.load(Ordering::Relaxed) == 0 {
            let key = schema.key_of(&row.values);
            let mut g = self.shards[self.route(&key)].write();
            g.insert_row(&schema, row)
        } else {
            let key = schema.key_of(&row.values);
            let target = self.route(&key);
            let mut guards = self.all_write();
            for (i, g) in guards.iter().enumerate() {
                if i != target {
                    for idx in &g.indexes {
                        if idx.unique && idx.cardinality(&idx.key_of(&row.values)) > 0 {
                            return Err(DbError::UniqueViolation {
                                index: idx.name.clone(),
                                key: format!("{:?}", idx.key_of(&row.values)),
                            });
                        }
                    }
                }
            }
            guards[target].insert_row(&schema, row)
        }
    }

    /// Delete by primary key, returning the removed row.
    ///
    /// This is the *unversioned* delete: on a versioned table it also
    /// erases the key's archived history (a chain without the context
    /// of a logged tombstone would resurrect stale versions for
    /// snapshot readers). Transactional deletes that must preserve
    /// history go through [`Table::delete_with_writer`].
    pub fn delete(&self, key: &Key) -> DbResult<Row> {
        self.delete_with(key, |_| Ok(()))
    }

    /// Delete with a fallible logging closure run under the latch after
    /// the row is found (receives the pre-image for undo logging) and
    /// before it is removed; a closure error leaves the row untouched.
    /// Unversioned — see [`Table::delete`].
    pub fn delete_with(&self, key: &Key, log: impl FnOnce(&Row) -> DbResult<()>) -> DbResult<Row> {
        let mut g = self.shards[self.route(key)].write();
        let row = g.delete_with(key, log)?;
        if self.versioning_enabled() {
            g.versions.remove(key);
        }
        Ok(row)
    }

    /// Versioned delete: archives the pre-image and a tombstone stamped
    /// with the deleting operation's LSN (produced under the latch by
    /// `log`, which sees the pre-image for undo logging). Snapshots
    /// older than the tombstone keep seeing the row; newer ones see it
    /// absent. Falls back to plain removal while versioning is off.
    pub fn delete_with_writer(
        &self,
        key: &Key,
        writer: TxnId,
        log: impl FnOnce(&Row) -> DbResult<Lsn>,
    ) -> DbResult<Row> {
        let mut g = self.shards[self.route(key)].write();
        if !g.rows.contains_key(key) {
            return Err(DbError::KeyNotFound(format!("{key:?}")));
        }
        let lsn = log(&g.rows[key])?;
        let row = g.rows.remove(key).expect("checked above"); // morph-lint: allow(panic, presence was checked earlier in the same latched section)
        for idx in &mut g.indexes {
            idx.remove(&row.values, key);
        }
        if self.versioning_enabled() {
            let chain = g.versions.entry(key.clone()).or_default();
            chain.push(VersionEntry {
                lsn: row.lsn,
                writer: row.writer,
                data: Some(row.clone()),
            });
            chain.push(VersionEntry {
                lsn,
                writer,
                data: None,
            });
        }
        Ok(row)
    }

    /// Sparse-column update by primary key. Handles primary-key column
    /// changes by moving the row. `new_lsn` becomes the row's state
    /// identifier.
    pub fn update(
        &self,
        key: &Key,
        cols: &[(usize, Value)],
        new_lsn: Lsn,
    ) -> DbResult<UpdateOutcome> {
        self.update_with(key, cols, |_| Ok(new_lsn))
    }

    /// Update with the new LSN produced under the latch by `mk_lsn`,
    /// which receives the update plan (old column values, key movement,
    /// previous LSN) so the engine can append redo+undo information to
    /// the log atomically with the physical change. The closure runs
    /// before anything is mutated; on error the row is untouched.
    pub fn update_with(
        &self,
        key: &Key,
        cols: &[(usize, Value)],
        mk_lsn: impl FnOnce(&UpdateOutcome) -> DbResult<Lsn>,
    ) -> DbResult<UpdateOutcome> {
        self.update_with_writer(key, cols, SYSTEM, mk_lsn)
    }

    /// [`Table::update_with`] with an explicit writing transaction.
    /// When versioning is on, the displaced state is archived and the
    /// new inline row is stamped with `writer` (see [`update_core`]);
    /// otherwise identical to [`Table::update_with`].
    pub fn update_with_writer(
        &self,
        key: &Key,
        cols: &[(usize, Value)],
        writer: TxnId,
        mk_lsn: impl FnOnce(&UpdateOutcome) -> DbResult<Lsn>,
    ) -> DbResult<UpdateOutcome> {
        let ver = if self.versioning_enabled() {
            Some(writer)
        } else {
            None
        };
        let schema = self.schema.read();
        let pkey_cols = schema.pkey().to_vec();
        let arity = schema.arity();
        drop(schema);

        if self.unique_indexes.load(Ordering::Relaxed) > 0 {
            // Composite-latch path: cross-shard unique pre-check, then
            // the shared core over split-borrowed shards.
            let mut guards = self.all_write();
            let s_old = self.route(key);
            let (new_key, new_values) = {
                let row = guards[s_old]
                    .rows
                    .get(key)
                    .ok_or_else(|| DbError::KeyNotFound(format!("{key:?}")))?;
                let mut nv = row.values.clone();
                for (i, v) in cols {
                    if *i >= arity {
                        return Err(DbError::ArityMismatch {
                            expected: arity,
                            got: *i + 1,
                        });
                    }
                    nv[*i] = v.clone();
                }
                (Key::project(&nv, &pkey_cols), nv)
            };
            let old_values = guards[s_old].rows[key].values.clone();
            for (i, g) in guards.iter().enumerate() {
                if i == s_old {
                    continue; // local check happens in update_core
                }
                for idx in &g.indexes {
                    if idx.unique {
                        let new_ik = idx.key_of(&new_values);
                        if new_ik != idx.key_of(&old_values) && idx.cardinality(&new_ik) > 0 {
                            return Err(DbError::UniqueViolation {
                                index: idx.name.clone(),
                                key: format!("{new_ik:?}"),
                            });
                        }
                    }
                }
            }
            let s_new = self.route(&new_key);
            let (old_shard, new_shard) = split_pair(&mut guards, s_old, s_new);
            return update_core(
                old_shard, new_shard, &pkey_cols, arity, key, cols, ver, mk_lsn,
            );
        }

        // Fast path: no primary-key column is touched, so the key (and
        // with it the shard) cannot change — one shard latch suffices.
        if !cols.iter().any(|(i, _)| pkey_cols.contains(i)) {
            let mut g = self.shards[self.route(key)].write();
            return update_core(&mut g, None, &pkey_cols, arity, key, cols, ver, mk_lsn);
        }
        // A key column changes: the row may move shards. Take the
        // composite latch and split-borrow source and destination.
        let mut guards = self.all_write();
        let s_old = self.route(key);
        let s_new = {
            let row = guards[s_old]
                .rows
                .get(key)
                .ok_or_else(|| DbError::KeyNotFound(format!("{key:?}")))?;
            let mut nv = row.values.clone();
            for (i, v) in cols {
                if *i >= arity {
                    return Err(DbError::ArityMismatch {
                        expected: arity,
                        got: *i + 1,
                    });
                }
                nv[*i] = v.clone();
            }
            self.route(&Key::project(&nv, &pkey_cols))
        };
        let (old_shard, new_shard) = split_pair(&mut guards, s_old, s_new);
        update_core(
            old_shard, new_shard, &pkey_cols, arity, key, cols, ver, mk_lsn,
        )
    }

    /// Mutate a row in place under the latch (propagator-only path for
    /// counter/flag/LSN maintenance that must not move the row).
    ///
    /// Returns `None` if the key does not exist. The closure must not
    /// change columns that participate in the primary key or any index.
    pub fn with_row_mut<R>(&self, key: &Key, f: impl FnOnce(&mut Row) -> R) -> Option<R> {
        let mut g = self.shards[self.route(key)].write();
        g.rows.get_mut(key).map(f)
    }

    /// Clone of the row at `key`.
    pub fn get(&self, key: &Key) -> Option<Row> {
        self.shards[self.route(key)].read().rows.get(key).cloned()
    }

    /// Whether a row with `key` exists.
    pub fn contains(&self, key: &Key) -> bool {
        self.shards[self.route(key)].read().rows.contains_key(key)
    }

    /// Number of rows (atomic across shards).
    pub fn len(&self) -> usize {
        self.all_read().iter().map(|g| g.rows.len()).sum()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Consistent snapshot of all rows in key order (takes every shard
    /// latch once; test and verification helper, not a hot path).
    pub fn snapshot(&self) -> Vec<(Key, Row)> {
        let guards = self.all_read();
        let mut out: Vec<(Key, Row)> = guards
            .iter()
            .flat_map(|g| g.rows.iter().map(|(k, r)| (k.clone(), r.clone())))
            .collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    // --- snapshot reads (MVCC) ------------------------------------------

    /// The row at `key` as visible to a snapshot taken at `snapshot`:
    /// the inline row if its version is visible, otherwise the newest
    /// visible archived version (`None` when that is a tombstone or no
    /// version qualifies). Takes only the owning shard's *read* latch —
    /// no transaction locks, ever.
    pub fn snapshot_get(&self, key: &Key, snapshot: Lsn, commit: &CommitTable) -> Option<Row> {
        let g = self.shards[self.route(key)].read();
        resolve_at(&g, key, snapshot, commit)
    }

    /// Rows visible at `snapshot` whose index key equals `ik`, in key
    /// order. Indexes are unversioned (they track inline rows only), so
    /// the probe unions the current index entries with the shard's
    /// archived keys, resolves every candidate through the snapshot and
    /// re-checks index-key equality on the resolved values.
    pub fn snapshot_index_rows(
        &self,
        idx: usize,
        ik: &Key,
        snapshot: Lsn,
        commit: &CommitTable,
    ) -> Vec<(Key, Row)> {
        let guards = self.all_read();
        let mut out: Vec<(Key, Row)> = Vec::new();
        for g in &guards {
            let mut cands: Vec<&Key> = g.indexes[idx].pk_set(ik).into_iter().flatten().collect();
            cands.extend(g.versions.keys());
            cands.sort();
            cands.dedup();
            for pk in cands {
                if let Some(r) = resolve_at(g, pk, snapshot, commit) {
                    if g.indexes[idx].covers(&r.values, ik) {
                        out.push((pk.clone(), r));
                    }
                }
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    /// Begin a snapshot scan: chunked iteration in global primary-key
    /// order over the table *as of* `snapshot`. Unlike the fuzzy scan
    /// this is one consistent cut — concurrent writers keep committing,
    /// but their effects are invisible to the scan. Lock-free like the
    /// fuzzy scan: only short shard read latches per chunk.
    pub fn snapshot_scan(
        self: &Arc<Self>,
        chunk_size: usize,
        snapshot: Lsn,
        commit: Arc<CommitTable>,
    ) -> SnapshotScanner {
        SnapshotScanner {
            table: Arc::clone(self),
            commit,
            snapshot,
            shards: (0..TABLE_SHARDS).collect(),
            after: None,
            chunk_size: chunk_size.max(1),
        }
    }

    /// Snapshot scan over one shard partition (`s % parts == part`),
    /// the snapshot-mode analogue of [`Table::fuzzy_scan_partition`].
    pub fn snapshot_scan_partition(
        self: &Arc<Self>,
        chunk_size: usize,
        part: usize,
        parts: usize,
        snapshot: Lsn,
        commit: Arc<CommitTable>,
    ) -> SnapshotScanner {
        let parts = shard_stride(parts.max(1));
        SnapshotScanner {
            table: Arc::clone(self),
            commit,
            snapshot,
            shards: (0..TABLE_SHARDS)
                .filter(|s| s % parts == part % parts)
                .collect(),
            after: None,
            chunk_size: chunk_size.max(1),
        }
    }

    // --- version GC -----------------------------------------------------

    /// Reclaim archived versions that no snapshot at or after
    /// `watermark` can ever resolve; returns the number of entries
    /// dropped. Per chain (newest first, with the inline row as the
    /// implicit top): once a version visible at the watermark is found,
    /// everything older is unreachable — every surviving snapshot
    /// resolves at or above it. A chain whose watermark-visible answer
    /// is "absent" (visible tombstone, no newer state) is dropped
    /// whole. The caller supplies a sound watermark: no older live
    /// snapshot, no active transaction with an older first LSN.
    pub fn gc_versions(&self, watermark: Lsn, commit: &CommitTable) -> u64 {
        let mut reclaimed = 0u64;
        for i in 0..self.shards.len() {
            let mut g = self.shards[i].write();
            let TableShard { rows, versions, .. } = &mut *g;
            versions.retain(|key, chain| {
                let inline_visible = rows
                    .get(key)
                    .is_some_and(|r| commit.is_visible(r.writer, r.lsn, watermark));
                if inline_visible {
                    // Every surviving snapshot resolves the inline row.
                    reclaimed += chain.len() as u64;
                    return false;
                }
                if let Some(pos) = chain
                    .iter()
                    .rposition(|e| commit.is_visible(e.writer, e.lsn, watermark))
                {
                    if pos == chain.len() - 1
                        && chain[pos].data.is_none()
                        && !rows.contains_key(key)
                    {
                        reclaimed += chain.len() as u64;
                        return false;
                    }
                    reclaimed += pos as u64;
                    chain.drain(..pos);
                }
                true
            });
        }
        reclaimed
    }

    // --- latches --------------------------------------------------------

    /// Shared latch over every shard: blocks physical writes while held
    /// (used by the consistency checker's lock-free read of
    /// contributing rows).
    pub fn latch_shared(&self) -> TableSharedLatch<'_> {
        TableSharedLatch {
            _guards: self.all_read(),
        }
    }

    /// Exclusive latch over every shard: pauses *all* physical
    /// operations while held — the §3.4 synchronization latch.
    pub fn latch_exclusive(&self) -> TableExclusiveLatch<'_> {
        TableExclusiveLatch {
            _guards: self.all_write(),
        }
    }

    /// Open a write session: the composite exclusive latch amortized
    /// over a whole batch of physical operations. The batched log
    /// propagator drains a group of records through one session instead
    /// of paying a latch round trip per record.
    ///
    /// The session snapshots the schema at open; concurrent schema
    /// surgery (`project_columns`) on a table with an open session is
    /// excluded by the latches themselves. While a session is open
    /// every access to this table from the owning thread must go
    /// through the session — the latches are not re-entrant.
    pub fn write_session(&self) -> WriteSession<'_> {
        self.write_session_masked(1, 0)
    }

    /// Open a write session over the shards `s` with
    /// `s % stride == offset` only. Sessions with the same stride and
    /// different offsets hold disjoint latch sets, so parallel apply
    /// lanes can write the same table concurrently. Operations that
    /// route outside the mask fail with an internal error rather than
    /// touching unlatched state — lane classification bugs surface as
    /// hard errors, not silent corruption.
    ///
    /// `stride` must tile the shard space (see [`shard_stride`]).
    pub fn write_session_masked(&self, stride: usize, offset: usize) -> WriteSession<'_> {
        let stride = shard_stride(stride.max(1));
        let offset = offset % stride;
        let schema = self.schema.read().clone();
        let pkey = schema.pkey().to_vec();
        let arity = schema.arity();
        let shard_key = self.shard_key.read().clone();
        let versioning = self.versioning_enabled();
        let guards: Vec<Option<RwLockWriteGuard<'_, TableShard>>> = (0..TABLE_SHARDS)
            .map(|s| {
                if s % stride == offset {
                    Some(self.shards[s].write())
                } else {
                    None
                }
            })
            .collect();
        WriteSession {
            schema,
            pkey,
            arity,
            shard_key,
            versioning,
            guards,
        }
    }

    // --- fuzzy scan ------------------------------------------------------

    /// Begin a fuzzy scan: chunked, lock-free (transaction-wise)
    /// iteration in primary-key order. Writers interleave between
    /// chunks, so the result may mix states — by design (§2.2, §3.2).
    pub fn fuzzy_scan(self: &Arc<Self>, chunk_size: usize) -> FuzzyScanner {
        FuzzyScanner {
            table: Arc::clone(self),
            shards: (0..TABLE_SHARDS).collect(),
            after: None,
            chunk_size: chunk_size.max(1),
        }
    }

    /// Begin a fuzzy scan over one partition of the key space: the
    /// shards `s` with `s % parts == part`. The `parts` partitions are
    /// disjoint and jointly cover the table, so `parts` workers each
    /// scanning one partition read every row exactly once — the
    /// parallel fuzzy copy. `parts` is normalized via [`shard_stride`].
    pub fn fuzzy_scan_partition(
        self: &Arc<Self>,
        chunk_size: usize,
        part: usize,
        parts: usize,
    ) -> FuzzyScanner {
        let parts = shard_stride(parts.max(1));
        FuzzyScanner {
            table: Arc::clone(self),
            shards: (0..TABLE_SHARDS)
                .filter(|s| s % parts == part % parts)
                .collect(),
            after: None,
            chunk_size: chunk_size.max(1),
        }
    }

    // --- schema surgery (rename-in-place split variant, §5.2) -----------

    /// Project the table down to `keep` columns (positions in current
    /// schema order), rewriting rows and rebuilding indexes. The
    /// primary key must be contained in `keep`. Indexes referencing
    /// dropped columns are themselves dropped.
    pub fn project_columns(&self, keep: &[usize]) -> DbResult<()> {
        let old_schema = self.schema.read().clone();
        if !old_schema.covers_pkey(keep) {
            return Err(DbError::InvalidSchema(
                "cannot drop primary-key columns".into(),
            ));
        }
        let mut b = Schema::builder();
        for &i in keep {
            let c = old_schema
                .columns()
                .get(i)
                .ok_or_else(|| DbError::InvalidSchema(format!("no column {i}")))?;
            b = if c.nullable {
                b.nullable(&c.name, c.ty)
            } else {
                b.column(&c.name, c.ty)
            };
        }
        let pkey_names: Vec<String> = old_schema
            .pkey()
            .iter()
            .map(|&p| old_schema.columns()[p].name.clone())
            .collect();
        let pkey_refs: Vec<&str> = pkey_names.iter().map(String::as_str).collect();
        let new_schema = b.primary_key(&pkey_refs).build()?;

        let mut guards = self.all_write();
        let remap: Vec<usize> = keep.to_vec();
        let mut dropped_unique = 0usize;
        for g in &mut guards {
            // Rebuild surviving indexes with remapped column positions.
            let mut new_indexes = Vec::new();
            for idx in &g.indexes {
                if let Some(new_cols) = idx
                    .cols
                    .iter()
                    .map(|c| remap.iter().position(|k| k == c))
                    .collect::<Option<Vec<_>>>()
                {
                    new_indexes.push(SecondaryIndex::new(&idx.name, new_cols, idx.unique));
                } else if idx.unique {
                    dropped_unique += 1;
                }
            }
            let old_rows = std::mem::take(&mut g.rows);
            for (_, mut row) in old_rows {
                row.values = remap.iter().map(|&i| row.values[i].clone()).collect();
                let key = new_schema.key_of(&row.values);
                for idx in &mut new_indexes {
                    idx.insert(&row.values, &key)?;
                }
                g.rows.insert(key, row);
            }
            g.indexes = new_indexes;
            // Archived versions carry the old schema's shape; after the
            // projection they cannot be resolved against the new one.
            // Schema surgery erases history (snapshots that straddle a
            // cutover see the post-surgery state).
            g.versions.clear();
        }
        // Every shard drops the same index set; count it once.
        if dropped_unique > 0 {
            self.unique_indexes
                .fetch_sub(dropped_unique / TABLE_SHARDS, Ordering::Relaxed);
        }
        drop(guards);
        *self.schema.write() = new_schema;
        Ok(())
    }
}

/// Resolve `key` within one latched shard as of `snapshot`: inline row
/// if visible, else the newest visible archived version (whose `None`
/// data — a tombstone — means "absent at that time").
fn resolve_at(shard: &TableShard, key: &Key, snapshot: Lsn, commit: &CommitTable) -> Option<Row> {
    if let Some(r) = shard.rows.get(key) {
        if commit.is_visible(r.writer, r.lsn, snapshot) {
            return Some(r.clone());
        }
    }
    let chain = shard.versions.get(key)?;
    chain
        .iter()
        .rev()
        .find(|e| commit.is_visible(e.writer, e.lsn, snapshot))
        .and_then(|e| e.data.clone())
}

/// Split-borrow two shards from the composite guard vector. With
/// `a == b` the second borrow is `None` (same-shard update).
fn split_pair<'a, 'g>(
    guards: &'a mut [RwLockWriteGuard<'g, TableShard>],
    a: usize,
    b: usize,
) -> (&'a mut TableShard, Option<&'a mut TableShard>) {
    if a == b {
        (&mut guards[a], None)
    } else if a < b {
        let (lo, hi) = guards.split_at_mut(b);
        (&mut lo[a], Some(&mut hi[0]))
    } else {
        let (lo, hi) = guards.split_at_mut(a);
        (&mut hi[0], Some(&mut lo[b]))
    }
}

/// Composite shared latch over all shards of one table.
pub struct TableSharedLatch<'a> {
    _guards: [RwLockReadGuard<'a, TableShard>; TABLE_SHARDS],
}

/// Composite exclusive latch over all shards of one table.
pub struct TableExclusiveLatch<'a> {
    _guards: [RwLockWriteGuard<'a, TableShard>; TABLE_SHARDS],
}

impl TableExclusiveLatch<'_> {
    /// Every key currently in the table, read through the held latch.
    /// A lazy cutover builds its residual set from this — calling
    /// [`Table::snapshot`] instead would re-acquire the shard locks the
    /// latch already holds and self-deadlock.
    pub fn keys(&self) -> Vec<Key> {
        let mut out: Vec<Key> = self
            ._guards
            .iter()
            .flat_map(|g| g.rows.keys().cloned())
            .collect();
        out.sort();
        out
    }
}

/// An open write session on one table: shard latches held across many
/// physical operations (see [`Table::write_session`] and
/// [`Table::write_session_masked`]).
///
/// The method surface mirrors [`Table`]'s propagator-facing operations
/// (`insert_row`, `delete`, `update`, `with_row_mut`, reads and index
/// probes) so rule code can be written once against either. On a
/// masked session every operation is checked against the mask; index
/// probes see the masked shards only.
pub struct WriteSession<'a> {
    schema: Schema,
    pkey: Vec<usize>,
    arity: usize,
    shard_key: Option<Vec<usize>>,
    /// Snapshot of the table's versioning flag at open. Session writes
    /// do *not* archive versions — they are transformation-internal
    /// physical writes below the snapshot horizon (pre-cutover target
    /// population and propagation) — but on a versioned table a delete
    /// must still erase the key's chain so later snapshot readers
    /// cannot resurrect stale history.
    versioning: bool,
    guards: Vec<Option<RwLockWriteGuard<'a, TableShard>>>,
}

impl WriteSession<'_> {
    /// Schema snapshot taken when the session was opened.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    fn route(&self, key: &Key) -> usize {
        route_hash(&key.0, self.shard_key.as_deref())
    }

    fn shard(&self, s: usize) -> DbResult<&TableShard> {
        self.guards[s]
            .as_deref()
            .ok_or_else(|| DbError::Internal(format!("shard {s} routed outside the session mask")))
    }

    fn shard_mut(&mut self, s: usize) -> DbResult<&mut TableShard> {
        self.guards[s]
            .as_deref_mut()
            .ok_or_else(|| DbError::Internal(format!("shard {s} routed outside the session mask")))
    }

    fn owned(&self) -> impl Iterator<Item = &TableShard> {
        self.guards.iter().filter_map(|g| g.as_deref())
    }

    fn check_unique_owned(&self, values: &[Value], skip: usize) -> DbResult<()> {
        for (s, g) in self.guards.iter().enumerate() {
            let Some(g) = g.as_deref() else { continue };
            if s == skip {
                continue;
            }
            for idx in &g.indexes {
                if idx.unique && idx.cardinality(&idx.key_of(values)) > 0 {
                    return Err(DbError::UniqueViolation {
                        index: idx.name.clone(),
                        key: format!("{:?}", idx.key_of(values)),
                    });
                }
            }
        }
        Ok(())
    }

    /// Insert a full row (ordinary metadata: counter 1, consistent).
    pub fn insert(&mut self, values: Vec<Value>, lsn: Lsn) -> DbResult<Key> {
        self.insert_row(Row::new(values, lsn))
    }

    /// Insert a row with explicit metadata.
    pub fn insert_row(&mut self, row: Row) -> DbResult<Key> {
        self.schema.validate(&row.values)?;
        let key = self.schema.key_of(&row.values);
        let s = self.route(&key);
        self.check_unique_owned(&row.values, s)?;
        let schema = self.schema.clone();
        self.shard_mut(s)?.insert_row(&schema, row)
    }

    /// Delete by primary key, returning the removed row (unversioned;
    /// erases the key's archived history, see the `versioning` field).
    pub fn delete(&mut self, key: &Key) -> DbResult<Row> {
        let s = self.route(key);
        let versioning = self.versioning;
        let shard = self.shard_mut(s)?;
        let row = shard.delete_with(key, |_| Ok(()))?;
        if versioning {
            shard.versions.remove(key);
        }
        Ok(row)
    }

    /// Sparse-column update by primary key (moves the row on a
    /// primary-key change; both the old and the new shard must be
    /// inside the session mask).
    pub fn update(
        &mut self,
        key: &Key,
        cols: &[(usize, Value)],
        new_lsn: Lsn,
    ) -> DbResult<UpdateOutcome> {
        let s_old = self.route(key);
        // Fast path: no primary-key column changes and no index covers
        // a touched column — the row neither moves nor perturbs any
        // index, so it can be mutated in place instead of going
        // through the remove/re-insert machinery. This is the shape of
        // every payload update the propagation rules apply.
        if !cols.iter().any(|(i, _)| self.pkey.contains(i)) {
            for (i, _) in cols {
                if *i >= self.arity {
                    return Err(DbError::ArityMismatch {
                        expected: self.arity,
                        got: *i + 1,
                    });
                }
            }
            let shard = self.shard_mut(s_old)?;
            let untouched_indexes = shard
                .indexes
                .iter()
                .all(|idx| !idx.cols.iter().any(|c| cols.iter().any(|(i, _)| i == c)));
            if untouched_indexes {
                let row = shard
                    .rows
                    .get_mut(key)
                    .ok_or_else(|| DbError::KeyNotFound(format!("{key:?}")))?;
                let outcome = UpdateOutcome {
                    old_cols: cols
                        .iter()
                        .map(|(i, _)| (*i, row.values[*i].clone()))
                        .collect(),
                    old_key: key.clone(),
                    new_key: key.clone(),
                    old_lsn: row.lsn,
                };
                row.apply_updates(cols);
                row.lsn = new_lsn;
                return Ok(outcome);
            }
        }
        let s_new = {
            let shard = self.shard(s_old)?;
            let row = shard
                .rows
                .get(key)
                .ok_or_else(|| DbError::KeyNotFound(format!("{key:?}")))?;
            let mut nv = row.values.clone();
            for (i, v) in cols {
                if *i >= self.arity {
                    return Err(DbError::ArityMismatch {
                        expected: self.arity,
                        got: *i + 1,
                    });
                }
                nv[*i] = v.clone();
            }
            let s_new = self.route(&Key::project(&nv, &self.pkey));
            if self.owned().any(|g| g.indexes.iter().any(|i| i.unique)) {
                let old_values = shard.rows[key].values.clone();
                for (s, g) in self.guards.iter().enumerate() {
                    let Some(g) = g.as_deref() else { continue };
                    if s == s_old {
                        continue;
                    }
                    for idx in &g.indexes {
                        if idx.unique {
                            let new_ik = idx.key_of(&nv);
                            if new_ik != idx.key_of(&old_values) && idx.cardinality(&new_ik) > 0 {
                                return Err(DbError::UniqueViolation {
                                    index: idx.name.clone(),
                                    key: format!("{new_ik:?}"),
                                });
                            }
                        }
                    }
                }
            }
            s_new
        };
        // Both shards must be owned by this session.
        self.shard(s_new)?;
        let pkey = self.pkey.clone();
        let arity = self.arity;
        let (old_shard, new_shard) = split_pair_opt(&mut self.guards, s_old, s_new)?;
        update_core(old_shard, new_shard, &pkey, arity, key, cols, None, |_| {
            Ok(new_lsn)
        })
    }

    /// Mutate a row in place (counter/flag/LSN maintenance; must not
    /// change key or indexed columns).
    pub fn with_row_mut<R>(&mut self, key: &Key, f: impl FnOnce(&mut Row) -> R) -> Option<R> {
        let s = self.route(key);
        self.shard_mut(s).ok()?.rows.get_mut(key).map(f)
    }

    /// Clone of the row at `key`.
    pub fn get(&self, key: &Key) -> Option<Row> {
        let s = self.route(key);
        self.shard(s).ok()?.rows.get(key).cloned()
    }

    /// Read a row by reference, without cloning it. The rules' LSN
    /// gates and single-column reads run once per surviving log
    /// record — a full-row clone there is pure allocator churn.
    pub fn with_row<R>(&self, key: &Key, f: impl FnOnce(&Row) -> R) -> Option<R> {
        let s = self.route(key);
        self.shard(s).ok()?.rows.get(key).map(f)
    }

    /// Whether a row with `key` exists.
    pub fn contains(&self, key: &Key) -> bool {
        let s = self.route(key);
        self.shard(s)
            .map(|g| g.rows.contains_key(key))
            .unwrap_or(false)
    }

    /// Number of rows in the session's shards.
    pub fn len(&self) -> usize {
        self.owned().map(|g| g.rows.len()).sum()
    }

    /// Whether the session's shards hold no rows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Primary keys of rows (within the session's shards) whose index
    /// key equals `ik`, in key order.
    pub fn index_lookup(&self, idx: usize, ik: &Key) -> Vec<Key> {
        let mut out: Vec<Key> = self
            .owned()
            .flat_map(|g| g.indexes[idx].lookup(ik))
            .collect();
        out.sort();
        out
    }

    /// Number of rows (within the session's shards) under index key
    /// `ik`.
    pub fn index_cardinality(&self, idx: usize, ik: &Key) -> usize {
        self.owned().map(|g| g.indexes[idx].cardinality(ik)).sum()
    }

    /// Rows (with primary keys, within the session's shards) whose
    /// index key equals `ik`, in key order.
    pub fn index_rows(&self, idx: usize, ik: &Key) -> Vec<(Key, Row)> {
        let mut out: Vec<(Key, Row)> = Vec::new();
        for g in self.owned() {
            g.index_rows_into(idx, ik, &mut out);
        }
        if out.len() > 1 {
            out.sort_by(|a, b| a.0.cmp(&b.0));
        }
        out
    }
}

/// Split-borrow two (possibly identical) owned shards from a masked
/// guard vector.
fn split_pair_opt<'a, 'g>(
    guards: &'a mut [Option<RwLockWriteGuard<'g, TableShard>>],
    a: usize,
    b: usize,
) -> DbResult<(&'a mut TableShard, Option<&'a mut TableShard>)> {
    let missing =
        |s: usize| DbError::Internal(format!("shard {s} routed outside the session mask"));
    if a == b {
        let g = guards[a].as_deref_mut().ok_or_else(|| missing(a))?;
        Ok((g, None))
    } else {
        let (lo_i, hi_i) = if a < b { (a, b) } else { (b, a) };
        let (lo, hi) = guards.split_at_mut(hi_i);
        let lo_g = lo[lo_i].as_deref_mut().ok_or_else(|| missing(lo_i))?;
        let hi_g = hi[0].as_deref_mut().ok_or_else(|| missing(hi_i))?;
        if a < b {
            Ok((lo_g, Some(hi_g)))
        } else {
            Ok((hi_g, Some(lo_g)))
        }
    }
}

/// Chunked fuzzy scanner (see [`Table::fuzzy_scan`]). Merges the
/// per-shard B-trees on the fly, so chunks come out in global primary
/// key order exactly as they did when the heap was a single tree.
pub struct FuzzyScanner {
    table: Arc<Table>,
    shards: Vec<usize>,
    after: Option<Key>,
    chunk_size: usize,
}

impl FuzzyScanner {
    /// Next chunk of rows, or an empty vector when the scan is done.
    pub fn next_chunk(&mut self) -> Vec<(Key, Row)> {
        let guards: Vec<RwLockReadGuard<'_, TableShard>> = self
            .shards
            .iter()
            .map(|&s| self.table.shards[s].read())
            .collect();
        let mut iters: Vec<_> = guards
            .iter()
            .map(|g| {
                match &self.after {
                    None => g.rows.range::<Key, _>(..),
                    Some(k) => g
                        .rows
                        .range::<Key, _>((Bound::Excluded(k.clone()), Bound::Unbounded)),
                }
                .peekable()
            })
            .collect();
        let mut chunk: Vec<(Key, Row)> = Vec::new();
        while chunk.len() < self.chunk_size {
            let mut best: Option<(usize, &Key)> = None;
            for (i, it) in iters.iter_mut().enumerate() {
                if let Some(&(k, _)) = it.peek() {
                    if best.as_ref().is_none_or(|(_, bk)| k < *bk) {
                        best = Some((i, k));
                    }
                }
            }
            match best {
                None => break,
                Some((i, _)) => {
                    let (k, r) = iters[i].next().expect("peeked above"); // morph-lint: allow(panic, peek on the same iterator just returned Some)
                    chunk.push((k.clone(), r.clone()));
                }
            }
        }
        if let Some((k, _)) = chunk.last() {
            self.after = Some(k.clone());
        }
        chunk
    }

    /// Drain the remaining chunks into one vector.
    pub fn collect_all(mut self) -> Vec<(Key, Row)> {
        let mut out = Vec::new();
        loop {
            let chunk = self.next_chunk();
            if chunk.is_empty() {
                return out;
            }
            out.extend(chunk);
        }
    }
}

/// Chunked snapshot scanner (see [`Table::snapshot_scan`]): the fuzzy
/// scanner's shard-merge walk, extended to candidate keys that exist
/// only as archived history (a key deleted after the snapshot lives in
/// the versions map alone) and filtered through snapshot visibility.
pub struct SnapshotScanner {
    table: Arc<Table>,
    commit: Arc<CommitTable>,
    snapshot: Lsn,
    shards: Vec<usize>,
    after: Option<Key>,
    chunk_size: usize,
}

impl SnapshotScanner {
    /// Next chunk of snapshot-visible rows, or an empty vector when the
    /// scan is done. Chunks come out in global primary-key order.
    pub fn next_chunk(&mut self) -> Vec<(Key, Row)> {
        let guards: Vec<RwLockReadGuard<'_, TableShard>> = self
            .shards
            .iter()
            .map(|&s| self.table.shards[s].read())
            .collect();
        fn ranged<'a, V>(
            map: &'a BTreeMap<Key, V>,
            after: &Option<Key>,
        ) -> std::collections::btree_map::Range<'a, Key, V> {
            match after {
                None => map.range::<Key, _>(..),
                Some(k) => map.range::<Key, _>((Bound::Excluded(k.clone()), Bound::Unbounded)),
            }
        }
        let mut row_iters: Vec<_> = guards
            .iter()
            .map(|g| ranged(&g.rows, &self.after).peekable())
            .collect();
        let mut ver_iters: Vec<_> = guards
            .iter()
            .map(|g| ranged(&g.versions, &self.after).peekable())
            .collect();
        let mut chunk: Vec<(Key, Row)> = Vec::new();
        while chunk.len() < self.chunk_size {
            // Global minimum over both iterator families. A key lives
            // in exactly one shard (routing), so at most one row and
            // one chain iterator can sit at it — both are consumed.
            let mut best: Option<Key> = None;
            for it in row_iters.iter_mut() {
                if let Some(&(k, _)) = it.peek() {
                    if best.as_ref().is_none_or(|b| k < b) {
                        best = Some(k.clone());
                    }
                }
            }
            for it in ver_iters.iter_mut() {
                if let Some(&(k, _)) = it.peek() {
                    if best.as_ref().is_none_or(|b| k < b) {
                        best = Some(k.clone());
                    }
                }
            }
            let Some(key) = best else { break };
            let mut inline: Option<&Row> = None;
            for it in row_iters.iter_mut() {
                if it.peek().is_some_and(|&(k, _)| *k == key) {
                    inline = it.next().map(|(_, r)| r);
                }
            }
            let mut chain: Option<&VersionChain> = None;
            for it in ver_iters.iter_mut() {
                if it.peek().is_some_and(|&(k, _)| *k == key) {
                    chain = it.next().map(|(_, c)| c);
                }
            }
            let resolved = match inline {
                Some(r) if self.commit.is_visible(r.writer, r.lsn, self.snapshot) => {
                    Some(r.clone())
                }
                _ => chain.and_then(|c| {
                    c.iter()
                        .rev()
                        .find(|e| self.commit.is_visible(e.writer, e.lsn, self.snapshot))
                        .and_then(|e| e.data.clone())
                }),
            };
            self.after = Some(key.clone());
            if let Some(r) = resolved {
                chunk.push((key, r));
            }
        }
        chunk
    }

    /// Drain the remaining chunks into one vector.
    pub fn collect_all(mut self) -> Vec<(Key, Row)> {
        let mut out = Vec::new();
        loop {
            let chunk = self.next_chunk();
            if chunk.is_empty() {
                return out;
            }
            out.extend(chunk);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::ColumnType;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", ColumnType::Int)
            .column("j", ColumnType::Int)
            .nullable("payload", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    fn table() -> Arc<Table> {
        Arc::new(Table::new(TableId(1), "t", schema()))
    }

    fn row(id: i64, j: i64) -> Vec<Value> {
        vec![Value::Int(id), Value::Int(j), Value::str(format!("p{id}"))]
    }

    #[test]
    fn insert_get_delete() {
        let t = table();
        let k = t.insert(row(1, 10), Lsn(1)).unwrap();
        assert_eq!(k, Key::single(1));
        assert_eq!(t.get(&k).unwrap().values, row(1, 10));
        assert_eq!(t.len(), 1);
        assert!(matches!(
            t.insert(row(1, 99), Lsn(2)),
            Err(DbError::DuplicateKey(_))
        ));
        let old = t.delete(&k).unwrap();
        assert_eq!(old.values, row(1, 10));
        assert!(t.is_empty());
        assert!(matches!(t.delete(&k), Err(DbError::KeyNotFound(_))));
    }

    #[test]
    fn update_plain_and_lsn_stamp() {
        let t = table();
        let k = t.insert(row(1, 10), Lsn(1)).unwrap();
        let out = t.update(&k, &[(2, Value::str("new"))], Lsn(5)).unwrap();
        assert_eq!(out.old_cols, vec![(2, Value::str("p1"))]);
        assert_eq!(out.old_key, out.new_key);
        assert_eq!(out.old_lsn, Lsn(1));
        let r = t.get(&k).unwrap();
        assert_eq!(r.lsn, Lsn(5));
        assert_eq!(r.values[2], Value::str("new"));
    }

    #[test]
    fn update_moves_row_on_pkey_change() {
        let t = table();
        let k = t.insert(row(1, 10), Lsn(1)).unwrap();
        let out = t.update(&k, &[(0, Value::Int(2))], Lsn(2)).unwrap();
        assert_eq!(out.new_key, Key::single(2));
        assert!(t.get(&Key::single(1)).is_none());
        assert!(t.get(&Key::single(2)).is_some());
    }

    #[test]
    fn update_moves_rows_across_every_shard_pair() {
        // Exhaustively exercise same-shard and cross-shard moves.
        let t = table();
        for i in 0..32i64 {
            t.insert(row(i, 0), Lsn(1)).unwrap();
        }
        for i in 0..32i64 {
            let target = 1000 + i;
            t.update(&Key::single(i), &[(0, Value::Int(target))], Lsn(2))
                .unwrap();
            assert!(t.get(&Key::single(i)).is_none());
            assert_eq!(
                t.get(&Key::single(target)).unwrap().values[0],
                Value::Int(target)
            );
        }
        assert_eq!(t.len(), 32);
    }

    #[test]
    fn update_pkey_collision_rejected() {
        let t = table();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        t.insert(row(2, 20), Lsn(2)).unwrap();
        assert!(matches!(
            t.update(&Key::single(1), &[(0, Value::Int(2))], Lsn(3)),
            Err(DbError::DuplicateKey(_))
        ));
        // Nothing changed.
        assert_eq!(t.get(&Key::single(1)).unwrap().values, row(1, 10));
    }

    #[test]
    fn update_out_of_range_column_rejected() {
        let t = table();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        assert!(matches!(
            t.update(&Key::single(1), &[(9, Value::Int(0))], Lsn(2)),
            Err(DbError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn secondary_index_tracks_all_mutations() {
        let t = table();
        let j = t.add_index("j_idx", &["j"], false).unwrap();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        t.insert(row(2, 10), Lsn(2)).unwrap();
        t.insert(row(3, 30), Lsn(3)).unwrap();
        assert_eq!(t.index_lookup(j, &Key::single(10)).len(), 2);

        // Update join attribute: moves index entry.
        t.update(&Key::single(1), &[(1, Value::Int(30))], Lsn(4))
            .unwrap();
        assert_eq!(t.index_lookup(j, &Key::single(10)), vec![Key::single(2)]);
        assert_eq!(t.index_cardinality(j, &Key::single(30)), 2);

        // Delete removes entries.
        t.delete(&Key::single(3)).unwrap();
        assert_eq!(t.index_lookup(j, &Key::single(30)), vec![Key::single(1)]);
    }

    #[test]
    fn index_on_existing_rows() {
        let t = table();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        t.insert(row(2, 10), Lsn(2)).unwrap();
        let j = t.add_index("j_idx", &["j"], false).unwrap();
        assert_eq!(t.index_cardinality(j, &Key::single(10)), 2);
        assert!(t.add_index("j_idx", &["j"], false).is_err());
        assert!(t.add_index("bad", &["nope"], false).is_err());
    }

    #[test]
    fn unique_index_enforced_on_insert_and_update() {
        let t = table();
        t.add_index("u", &["j"], true).unwrap();
        t.insert(row(1, 10), Lsn(1)).unwrap();
        assert!(matches!(
            t.insert(row(2, 10), Lsn(2)),
            Err(DbError::UniqueViolation { .. })
        ));
        assert_eq!(t.len(), 1, "failed insert must not leave residue");
        t.insert(row(2, 20), Lsn(2)).unwrap();
        assert!(matches!(
            t.update(&Key::single(2), &[(1, Value::Int(10))], Lsn(3)),
            Err(DbError::UniqueViolation { .. })
        ));
        // Updating a row's unique value to itself is fine.
        t.update(&Key::single(2), &[(1, Value::Int(20))], Lsn(4))
            .unwrap();
    }

    #[test]
    fn freeze_gates_access() {
        let t = table();
        assert!(t.check_access(TxnId(1)).is_ok());
        t.freeze([TxnId(1)].into_iter().collect());
        assert!(t.check_access(TxnId(1)).is_ok());
        assert!(matches!(
            t.check_access(TxnId(2)),
            Err(DbError::TableFrozen(_))
        ));
        assert!(t.retire_allowed(TxnId(1)));
        t.mark_dropped();
        assert!(t.check_access(TxnId(1)).is_err());
        t.reactivate();
        assert!(t.check_access(TxnId(2)).is_ok());
    }

    #[test]
    fn fuzzy_scan_sees_interleaved_writes_loosely() {
        let t = table();
        for i in 0..100 {
            t.insert(row(i, i % 7), Lsn(i as u64 + 1)).unwrap();
        }
        let mut scan = t.fuzzy_scan(10);
        let first = scan.next_chunk();
        assert_eq!(first.len(), 10);
        // A writer interleaves: deletes a row ahead of the cursor and
        // inserts one behind it.
        t.delete(&Key::single(50)).unwrap();
        t.insert(row(3000, 0), Lsn(200)).unwrap(); // ahead (large key)
        let rest: Vec<_> = std::iter::from_fn(|| {
            let c = scan.next_chunk();
            if c.is_empty() {
                None
            } else {
                Some(c)
            }
        })
        .flatten()
        .collect();
        let keys: Vec<i64> = rest.iter().filter_map(|(k, _)| k.0[0].as_int()).collect();
        assert!(!keys.contains(&50), "deleted-ahead row must not appear");
        assert!(keys.contains(&3000), "inserted-ahead row appears");
    }

    #[test]
    fn fuzzy_scan_collect_all_matches_snapshot_when_quiescent() {
        let t = table();
        for i in 0..37 {
            t.insert(row(i, 0), Lsn(1)).unwrap();
        }
        let scanned = t.fuzzy_scan(8).collect_all();
        assert_eq!(scanned.len(), 37);
        assert_eq!(scanned, t.snapshot());
    }

    #[test]
    fn fuzzy_scan_is_in_global_key_order() {
        let t = table();
        for i in (0..500).rev() {
            t.insert(row(i, 0), Lsn(1)).unwrap();
        }
        let scanned = t.fuzzy_scan(13).collect_all();
        let keys: Vec<&Key> = scanned.iter().map(|(k, _)| k).collect();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "chunks must merge sorted"
        );
        assert_eq!(scanned.len(), 500);
    }

    #[test]
    fn partitioned_scans_tile_the_table() {
        let t = table();
        for i in 0..200 {
            t.insert(row(i, 0), Lsn(1)).unwrap();
        }
        for parts in [1usize, 2, 4, 8] {
            let mut seen: Vec<(Key, Row)> = Vec::new();
            for p in 0..parts {
                let part = t.fuzzy_scan_partition(16, p, parts).collect_all();
                // Each partition is itself in key order.
                assert!(part.windows(2).all(|w| w[0].0 < w[1].0));
                seen.extend(part);
            }
            seen.sort_by(|a, b| a.0.cmp(&b.0));
            assert_eq!(seen, t.snapshot(), "parts={parts} must cover exactly");
        }
    }

    #[test]
    fn shard_key_routes_by_component() {
        let s = Schema::builder()
            .column("a", ColumnType::Int)
            .column("c", ColumnType::Str)
            .primary_key(&["a", "c"])
            .build()
            .unwrap();
        let t = Arc::new(Table::new(TableId(2), "t", s));
        // Route by the second key component only.
        t.set_shard_key(vec![1]).unwrap();
        for i in 0..64i64 {
            t.insert(
                vec![Value::Int(i), Value::str(format!("g{}", i % 4))],
                Lsn(1),
            )
            .unwrap();
        }
        // All rows of one group share a shard, and the component-only
        // hash agrees with the full-key routing.
        for g in 0..4 {
            let component = [Value::str(format!("g{g}"))];
            let shard = t.shard_of_component(&component);
            for i in 0..64i64 {
                if i % 4 == g {
                    let key = Key::new([Value::Int(i), Value::str(format!("g{g}"))]);
                    assert_eq!(t.shard_of_key(&key), shard);
                }
            }
        }
        // Too late once rows exist.
        assert!(t.set_shard_key(vec![0]).is_err());
        // Out-of-range position rejected.
        let t2 = table();
        assert!(t2.set_shard_key(vec![5]).is_err());
    }

    #[test]
    fn masked_sessions_cover_disjoint_shards() {
        let t = table();
        for i in 0..100i64 {
            t.insert(row(i, 0), Lsn(1)).unwrap();
        }
        let mut covered = 0usize;
        for lane in 0..4 {
            let s = t.write_session_masked(4, lane);
            covered += s.len();
        }
        assert_eq!(covered, 100, "masks must tile the row space");
    }

    #[test]
    fn masked_session_rejects_foreign_keys() {
        let t = table();
        for i in 0..64i64 {
            t.insert(row(i, 0), Lsn(1)).unwrap();
        }
        // Find a key owned by lane 0 and one that is not.
        let own: i64 = (0..64)
            .find(|&i| t.shard_of_key(&Key::single(i)).is_multiple_of(4))
            .unwrap();
        let foreign: i64 = (0..64)
            .find(|&i| !t.shard_of_key(&Key::single(i)).is_multiple_of(4))
            .unwrap();
        let mut s = t.write_session_masked(4, 0);
        assert!(s.get(&Key::single(own)).is_some());
        assert!(s.get(&Key::single(foreign)).is_none());
        assert!(matches!(
            s.delete(&Key::single(foreign)),
            Err(DbError::Internal(_))
        ));
        s.delete(&Key::single(own)).unwrap();
    }

    #[test]
    fn masked_sessions_write_concurrently() {
        // Two lanes insert into the same table at the same time; a
        // full session would deadlock this test.
        let t = table();
        std::thread::scope(|scope| {
            for lane in 0..2 {
                let t = Arc::clone(&t);
                scope.spawn(move || {
                    let mut s = t.write_session_masked(2, lane);
                    for i in 0..2000i64 {
                        let key = Key::single(i);
                        if t.shard_of_key(&key) % 2 == lane {
                            s.insert(row(i, 0), Lsn(1)).unwrap();
                        }
                    }
                });
            }
        });
        assert_eq!(t.len(), 2000);
    }

    #[test]
    fn with_row_mut_edits_metadata() {
        let t = table();
        let k = t.insert(row(1, 10), Lsn(1)).unwrap();
        let got = t.with_row_mut(&k, |r| {
            r.counter = 7;
            r.counter
        });
        assert_eq!(got, Some(7));
        assert_eq!(t.get(&k).unwrap().counter, 7);
        assert_eq!(t.with_row_mut(&Key::single(99), |_| ()), None);
    }

    #[test]
    fn project_columns_rewrites_rows_and_schema() {
        let t = table();
        t.add_index("j_idx", &["j"], false).unwrap();
        t.add_index("p_idx", &["payload"], false).unwrap();
        for i in 0..5 {
            t.insert(row(i, 10 + i), Lsn(1)).unwrap();
        }
        // Keep id + j, drop payload.
        t.project_columns(&[0, 1]).unwrap();
        let s = t.schema();
        assert_eq!(s.arity(), 2);
        assert_eq!(s.position_of("payload"), None);
        assert_eq!(t.get(&Key::single(3)).unwrap().values.len(), 2);
        // Index on a dropped column is gone; on a kept column survives.
        assert!(t.index_pos("p_idx").is_none());
        let j = t.index_pos("j_idx").unwrap();
        assert_eq!(t.index_lookup(j, &Key::single(12)), vec![Key::single(2)]);
    }

    #[test]
    fn project_cannot_drop_pkey() {
        let t = table();
        assert!(t.project_columns(&[1, 2]).is_err());
    }

    #[test]
    fn write_session_batches_ops_under_one_latch() {
        let t = table();
        let j = t.add_index("j_idx", &["j"], false).unwrap();
        {
            let mut s = t.write_session();
            s.insert(row(1, 10), Lsn(1)).unwrap();
            s.insert(row(2, 20), Lsn(2)).unwrap();
            s.update(&Key::single(1), &[(1, Value::Int(20))], Lsn(3))
                .unwrap();
            assert_eq!(s.index_lookup(j, &Key::single(20)).len(), 2);
            s.delete(&Key::single(2)).unwrap();
            assert!(s.contains(&Key::single(1)));
            assert_eq!(s.len(), 1);
            assert_eq!(s.get(&Key::single(1)).unwrap().lsn, Lsn(3));
        }
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(&Key::single(1)).unwrap().values[1], Value::Int(20));
        assert_eq!(t.index_cardinality(j, &Key::single(20)), 1);
    }

    #[test]
    fn write_session_moves_rows_across_shards() {
        let t = table();
        for i in 0..16i64 {
            t.insert(row(i, 0), Lsn(1)).unwrap();
        }
        {
            let mut s = t.write_session();
            for i in 0..16i64 {
                s.update(&Key::single(i), &[(0, Value::Int(100 + i))], Lsn(2))
                    .unwrap();
            }
        }
        assert_eq!(t.len(), 16);
        for i in 0..16i64 {
            assert!(t.get(&Key::single(100 + i)).is_some());
        }
    }

    #[test]
    fn write_session_insert_row_keeps_metadata() {
        let t = table();
        let mut r = Row::new(row(1, 10), Lsn(4));
        r.counter = 3;
        let mut s = t.write_session();
        let k = s.insert_row(r).unwrap();
        let got = s.get(&k).unwrap();
        assert_eq!(got.counter, 3);
        assert_eq!(got.lsn, Lsn(4));
    }

    #[test]
    fn exclusive_latch_blocks_writer() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let t = table();
        t.insert(row(1, 1), Lsn(1)).unwrap();
        let latch = t.latch_exclusive();
        let done = Arc::new(AtomicBool::new(false));
        let (t2, done2) = (Arc::clone(&t), Arc::clone(&done));
        let h = std::thread::spawn(move || {
            t2.insert(row(2, 2), Lsn(2)).unwrap();
            done2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(std::time::Duration::from_millis(30));
        assert!(
            !done.load(Ordering::SeqCst),
            "writer must be paused by the latch"
        );
        drop(latch);
        h.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn shard_stride_tiles() {
        assert_eq!(shard_stride(0), 1);
        assert_eq!(shard_stride(1), 1);
        assert_eq!(shard_stride(2), 2);
        assert_eq!(shard_stride(3), 2);
        assert_eq!(shard_stride(4), 4);
        assert_eq!(shard_stride(7), 4);
        assert_eq!(shard_stride(8), 8);
        assert_eq!(shard_stride(64), TABLE_SHARDS);
    }
}
