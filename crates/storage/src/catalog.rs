//! The catalog: name → table resolution, creation, drop, rename.
//!
//! User transactions resolve tables by *name* on every operation; the
//! synchronization step retargets a name (or drops the source names) so
//! that "new transactions are given access to the new tables only"
//! (§3.4) without the clients changing anything.

use crate::table::Table;
use morph_common::{DbError, DbResult, Schema, TableId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Default)]
struct CatalogInner {
    by_name: HashMap<String, TableId>,
    tables: HashMap<TableId, Arc<Table>>,
    next_id: u32,
}

/// Thread-safe table catalog.
#[derive(Default)]
pub struct Catalog {
    inner: RwLock<CatalogInner>,
    /// Bumped on every structural change (create/drop/rename). Cached
    /// name→table resolutions (the propagator's drain context) are
    /// revalidated against this instead of re-resolving per iteration.
    epoch: AtomicU64,
    /// When set (MVCC enabled on the owning database), every table
    /// created from then on — including transformation targets created
    /// by preparation steps — starts with versioning enabled, so
    /// snapshot readers keep working across a cutover.
    versioning_default: AtomicBool,
}

impl Catalog {
    /// Empty catalog.
    pub fn new() -> Catalog {
        Catalog::default()
    }

    /// Create a table. Fails if the name is taken.
    pub fn create_table(&self, name: &str, schema: Schema) -> DbResult<Arc<Table>> {
        let mut inner = self.inner.write();
        if inner.by_name.contains_key(name) {
            return Err(DbError::TableExists(name.to_owned()));
        }
        inner.next_id += 1;
        let id = TableId(inner.next_id);
        let table = Arc::new(Table::new(id, name, schema));
        if self.versioning_default.load(Ordering::Acquire) {
            table.enable_versioning();
        }
        inner.by_name.insert(name.to_owned(), id);
        inner.tables.insert(id, Arc::clone(&table));
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(table)
    }

    /// Create a table with a specific id (restart recovery rebuilds the
    /// catalog with original ids so log records resolve).
    pub fn create_table_with_id(
        &self,
        id: TableId,
        name: &str,
        schema: Schema,
    ) -> DbResult<Arc<Table>> {
        let mut inner = self.inner.write();
        if inner.by_name.contains_key(name) {
            return Err(DbError::TableExists(name.to_owned()));
        }
        if inner.tables.contains_key(&id) {
            return Err(DbError::TableExists(format!("id {id:?}")));
        }
        let table = Arc::new(Table::new(id, name, schema));
        if self.versioning_default.load(Ordering::Acquire) {
            table.enable_versioning();
        }
        inner.next_id = inner.next_id.max(id.0);
        inner.by_name.insert(name.to_owned(), id);
        inner.tables.insert(id, Arc::clone(&table));
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(table)
    }

    /// Enable versioning on every current table and default it on for
    /// tables created later (the database's MVCC switch).
    pub fn enable_versioning_everywhere(&self) {
        self.versioning_default.store(true, Ordering::Release);
        for t in self.tables() {
            t.enable_versioning();
        }
    }

    /// Handles to all live tables (GC sweeps and the MVCC switch;
    /// collected under one read lock, iterated without it).
    pub fn tables(&self) -> Vec<Arc<Table>> {
        self.inner.read().tables.values().cloned().collect()
    }

    /// Current structural epoch (see the field doc). A cached
    /// resolution made at epoch `e` is valid while `epoch() == e`.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Resolve a table by name.
    pub fn get(&self, name: &str) -> DbResult<Arc<Table>> {
        let inner = self.inner.read();
        let id = inner
            .by_name
            .get(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))?;
        Ok(Arc::clone(&inner.tables[id]))
    }

    /// Resolve a table by id (log records carry ids).
    pub fn get_by_id(&self, id: TableId) -> DbResult<Arc<Table>> {
        self.inner
            .read()
            .tables
            .get(&id)
            .cloned()
            .ok_or(DbError::NoSuchTableId(id))
    }

    /// Whether a name is bound.
    pub fn exists(&self, name: &str) -> bool {
        self.inner.read().by_name.contains_key(name)
    }

    /// Drop a table by name. The `Arc` keeps it alive for transactions
    /// still holding it; the name becomes free immediately.
    pub fn drop_table(&self, name: &str) -> DbResult<Arc<Table>> {
        let mut inner = self.inner.write();
        let id = inner
            .by_name
            .remove(name)
            .ok_or_else(|| DbError::NoSuchTable(name.to_owned()))?;
        let t = inner.tables.remove(&id).expect("name/id maps in sync"); // morph-lint: allow(panic, name and id maps are mutated together under the same catalog lock)
        t.mark_dropped();
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(t)
    }

    /// Rename a table. Fails if `to` is taken.
    pub fn rename(&self, from: &str, to: &str) -> DbResult<()> {
        let mut inner = self.inner.write();
        if inner.by_name.contains_key(to) {
            return Err(DbError::TableExists(to.to_owned()));
        }
        let id = inner
            .by_name
            .remove(from)
            .ok_or_else(|| DbError::NoSuchTable(from.to_owned()))?;
        inner.by_name.insert(to.to_owned(), id);
        inner.tables[&id].set_name(to);
        self.epoch.fetch_add(1, Ordering::Release);
        Ok(())
    }

    /// Names of all tables, sorted (deterministic for tests/tools).
    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.inner.read().by_name.keys().cloned().collect();
        names.sort();
        names
    }

    /// Number of live tables.
    pub fn len(&self) -> usize {
        self.inner.read().tables.len()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::ColumnType;

    fn schema() -> Schema {
        Schema::builder()
            .column("id", ColumnType::Int)
            .primary_key(&["id"])
            .build()
            .unwrap()
    }

    #[test]
    fn create_get_drop() {
        let cat = Catalog::new();
        let t = cat.create_table("a", schema()).unwrap();
        assert_eq!(t.name(), "a");
        assert!(cat.exists("a"));
        assert_eq!(cat.get("a").unwrap().id(), t.id());
        assert_eq!(cat.get_by_id(t.id()).unwrap().name(), "a");
        assert!(matches!(
            cat.create_table("a", schema()),
            Err(DbError::TableExists(_))
        ));
        let dropped = cat.drop_table("a").unwrap();
        assert_eq!(dropped.state(), crate::table::TableState::Dropped);
        assert!(!cat.exists("a"));
        assert!(matches!(cat.get("a"), Err(DbError::NoSuchTable(_))));
        assert!(matches!(
            cat.get_by_id(t.id()),
            Err(DbError::NoSuchTableId(_))
        ));
    }

    #[test]
    fn rename_rebinds_name() {
        let cat = Catalog::new();
        let t = cat.create_table("old", schema()).unwrap();
        cat.create_table("taken", schema()).unwrap();
        assert!(matches!(
            cat.rename("old", "taken"),
            Err(DbError::TableExists(_))
        ));
        cat.rename("old", "new").unwrap();
        assert!(!cat.exists("old"));
        assert_eq!(cat.get("new").unwrap().id(), t.id());
        assert_eq!(t.name(), "new");
        assert!(matches!(
            cat.rename("ghost", "x"),
            Err(DbError::NoSuchTable(_))
        ));
    }

    #[test]
    fn ids_are_unique_and_stable() {
        let cat = Catalog::new();
        let a = cat.create_table("a", schema()).unwrap();
        let b = cat.create_table("b", schema()).unwrap();
        assert_ne!(a.id(), b.id());
        cat.drop_table("a").unwrap();
        let c = cat.create_table("c", schema()).unwrap();
        assert_ne!(b.id(), c.id());
    }

    #[test]
    fn create_with_id_respects_collisions() {
        let cat = Catalog::new();
        cat.create_table_with_id(TableId(7), "a", schema()).unwrap();
        assert!(cat.create_table_with_id(TableId(7), "b", schema()).is_err());
        assert!(cat.create_table_with_id(TableId(8), "a", schema()).is_err());
        // Subsequent auto-ids skip past explicit ones.
        let t = cat.create_table("b", schema()).unwrap();
        assert!(t.id().0 > 7);
    }

    #[test]
    fn epoch_tracks_structural_changes() {
        let cat = Catalog::new();
        let e0 = cat.epoch();
        cat.create_table("a", schema()).unwrap();
        let e1 = cat.epoch();
        assert_ne!(e0, e1);
        // Failed operations do not bump.
        assert!(cat.create_table("a", schema()).is_err());
        assert_eq!(cat.epoch(), e1);
        cat.rename("a", "b").unwrap();
        let e2 = cat.epoch();
        assert_ne!(e1, e2);
        cat.drop_table("b").unwrap();
        assert_ne!(cat.epoch(), e2);
        // Reads do not bump.
        let _ = cat.table_names();
        assert!(!cat.exists("b"));
        let e3 = cat.epoch();
        cat.create_table_with_id(TableId(9), "c", schema()).unwrap();
        assert_ne!(cat.epoch(), e3);
    }

    #[test]
    fn table_names_sorted() {
        let cat = Catalog::new();
        cat.create_table("zeta", schema()).unwrap();
        cat.create_table("alpha", schema()).unwrap();
        assert_eq!(cat.table_names(), vec!["alpha", "zeta"]);
        assert_eq!(cat.len(), 2);
        assert!(!cat.is_empty());
    }
}
