//! Residual-set tracking for lazy (SLSM-style) migrations.
//!
//! After a lazy cutover the source tables are frozen but their records
//! have not been transformed yet. The *residual set* is the set of
//! source keys still awaiting transformation — the per-table "migrated
//! bit", stored as presence in the set rather than a bit on the row so
//! the frozen source pages are never written again.
//!
//! Two actors shrink the set concurrently: the background backfill and
//! on-access transforms racing in from the read/write path. The race is
//! resolved by a **per-key claim**: `claim` atomically moves a key from
//! *pending* to *in-flight* and hands the caller a [`ClaimGuard`]; every
//! other claimant for the same key blocks until the guard is completed
//! (key transformed exactly once) or abandoned (key returns to
//! *pending*, e.g. the transform hit a simulated crash). The residual
//! count only ever decreases on `complete`, so `remaining()` is
//! monotonically non-increasing — the invariant DESIGN.md §15 pins.

use morph_common::{Key, TableId};
use parking_lot::{Condvar, Mutex};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};

#[derive(Default)]
struct Inner {
    /// Keys awaiting transformation, per source table.
    pending: BTreeMap<TableId, BTreeSet<Key>>,
    /// Keys currently being transformed by some claimant.
    in_flight: BTreeSet<(TableId, Key)>,
}

/// The set of source records a lazy migration has not transformed yet.
pub struct ResidualSet {
    inner: Mutex<Inner>,
    cv: Condvar,
    remaining: AtomicUsize,
}

/// Outcome of [`ResidualSet::claim`].
pub enum Claim<'a> {
    /// The caller owns the transform for this key; call
    /// [`ClaimGuard::complete`] once the record is in the targets.
    Transform(ClaimGuard<'a>),
    /// The key is not in the residual set (already transformed — any
    /// in-flight transform by another claimant has been waited out —
    /// or it was never a source key).
    Done,
}

impl ResidualSet {
    /// An empty residual set.
    pub fn new() -> ResidualSet {
        ResidualSet {
            inner: Mutex::new(Inner::default()),
            cv: Condvar::new(),
            remaining: AtomicUsize::new(0),
        }
    }

    /// Record `key` of source `table` as not yet transformed. Called
    /// only while building the set under the cutover latch.
    pub fn track(&self, table: TableId, key: Key) {
        let mut inner = self.inner.lock();
        if inner.pending.entry(table).or_default().insert(key) {
            self.remaining.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Keys still awaiting transformation (pending + in-flight).
    pub fn remaining(&self) -> usize {
        self.remaining.load(Ordering::Relaxed)
    }

    /// Whether every tracked key has completed its transform.
    pub fn is_drained(&self) -> bool {
        self.remaining() == 0
    }

    /// Claim `key` of `table` for transformation. Blocks while another
    /// claimant holds the key in flight; returns [`Claim::Done`] once
    /// the key is no longer pending.
    pub fn claim(&self, table: TableId, key: &Key) -> Claim<'_> {
        let mut inner = self.inner.lock();
        loop {
            if inner
                .pending
                .get_mut(&table)
                .map(|set| set.remove(key))
                .unwrap_or(false)
            {
                inner.in_flight.insert((table, key.clone()));
                return Claim::Transform(ClaimGuard {
                    set: self,
                    table,
                    key: key.clone(),
                    completed: false,
                });
            }
            if !inner.in_flight.contains(&(table, key.clone())) {
                return Claim::Done;
            }
            // Another claimant is transforming this key right now:
            // wait until it completes (key gone) or abandons (key back
            // in pending), then re-examine.
            self.cv.wait(&mut inner);
        }
    }

    /// Claim an arbitrary pending key (backfill order: ascending table,
    /// ascending key). Returns `None` when nothing is pending — note
    /// in-flight keys may still exist; poll [`ResidualSet::is_drained`]
    /// for completion.
    pub fn claim_next(&self) -> Option<ClaimGuard<'_>> {
        let mut inner = self.inner.lock();
        let (table, key) = inner
            .pending
            .iter()
            .find_map(|(t, set)| set.iter().next().map(|k| (*t, k.clone())))?;
        inner.pending.get_mut(&table).map(|set| set.remove(&key));
        inner.in_flight.insert((table, key.clone()));
        Some(ClaimGuard {
            set: self,
            table,
            key,
            completed: false,
        })
    }

    /// Pending keys of one source table (diagnostics / tests).
    pub fn pending_for(&self, table: TableId) -> Vec<Key> {
        let inner = self.inner.lock();
        inner
            .pending
            .get(&table)
            .map(|set| set.iter().cloned().collect())
            .unwrap_or_default()
    }
}

impl Default for ResidualSet {
    fn default() -> Self {
        ResidualSet::new()
    }
}

/// Exclusive ownership of one key's transformation (see
/// [`ResidualSet::claim`]).
pub struct ClaimGuard<'a> {
    set: &'a ResidualSet,
    table: TableId,
    key: Key,
    completed: bool,
}

impl ClaimGuard<'_> {
    /// The claimed source table.
    pub fn table(&self) -> TableId {
        self.table
    }

    /// The claimed source key.
    pub fn key(&self) -> &Key {
        &self.key
    }

    /// Mark the record transformed: the key leaves the residual set
    /// for good and the residual count shrinks.
    pub fn complete(mut self) {
        self.completed = true;
        let mut inner = self.set.inner.lock();
        inner.in_flight.remove(&(self.table, self.key.clone()));
        drop(inner);
        self.set.remaining.fetch_sub(1, Ordering::Relaxed);
        self.set.cv.notify_all();
    }
}

impl Drop for ClaimGuard<'_> {
    fn drop(&mut self) {
        if self.completed {
            return;
        }
        // Abandoned (transform errored / simulated crash): the key
        // returns to pending so recovery or a later access retries it.
        let mut inner = self.set.inner.lock();
        inner.in_flight.remove(&(self.table, self.key.clone()));
        inner
            .pending
            .entry(self.table)
            .or_default()
            .insert(self.key.clone());
        drop(inner);
        self.set.cv.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::Value;

    fn k(i: i64) -> Key {
        Key::single(Value::Int(i))
    }

    #[test]
    fn claim_complete_shrinks_monotonically() {
        let set = ResidualSet::new();
        let t = TableId(1);
        for i in 0..4 {
            set.track(t, k(i));
        }
        assert_eq!(set.remaining(), 4);
        match set.claim(t, &k(2)) {
            Claim::Transform(g) => g.complete(),
            Claim::Done => panic!("expected a fresh claim"),
        }
        assert_eq!(set.remaining(), 3);
        assert!(matches!(set.claim(t, &k(2)), Claim::Done));
        assert_eq!(set.remaining(), 3);
    }

    #[test]
    fn abandoned_claim_returns_to_pending() {
        let set = ResidualSet::new();
        let t = TableId(1);
        set.track(t, k(7));
        match set.claim(t, &k(7)) {
            Claim::Transform(g) => drop(g), // simulated crash mid-transform
            Claim::Done => panic!("expected a fresh claim"),
        }
        assert_eq!(set.remaining(), 1);
        // Retry succeeds.
        match set.claim(t, &k(7)) {
            Claim::Transform(g) => g.complete(),
            Claim::Done => panic!("abandoned key must be claimable again"),
        }
        assert!(set.is_drained());
    }

    #[test]
    fn claim_next_drains_in_order() {
        let set = ResidualSet::new();
        let t = TableId(3);
        for i in [5, 1, 9] {
            set.track(t, k(i));
        }
        let mut seen = Vec::new();
        while let Some(g) = set.claim_next() {
            seen.push(g.key().clone());
            g.complete();
        }
        assert_eq!(seen, vec![k(1), k(5), k(9)]);
        assert!(set.is_drained());
    }

    #[test]
    fn concurrent_claims_transform_exactly_once() {
        use std::sync::atomic::AtomicUsize;
        let set = std::sync::Arc::new(ResidualSet::new());
        let t = TableId(1);
        for i in 0..64 {
            set.track(t, k(i));
        }
        let transforms = AtomicUsize::new(0);
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..64 {
                        if let Claim::Transform(g) = set.claim(t, &k(i)) {
                            transforms.fetch_add(1, Ordering::Relaxed);
                            g.complete();
                        }
                    }
                });
            }
        });
        assert_eq!(transforms.load(Ordering::Relaxed), 64);
        assert!(set.is_drained());
    }
}
