//! The migration orchestrator: a crash-recoverable state machine
//! driving declarative migrations through the §3 pipeline.
//!
//! ## State machine
//!
//! ```text
//!            ┌────────────────────────── per stage ─────────────────────────┐
//! Planned ─▶ │ Preparing ─▶ Copying ─▶ Propagating ─▶ Syncing ─▶ (finish) │ ─▶ CutOver
//!            └──────────────────────────────────────────────────────────────┘
//!                 │              │             │            │
//!                 └──────────────┴─────────────┴────────────┴──▶ Aborted
//! ```
//!
//! Every transition is persisted as a [`LogRecord::MigrationState`]
//! and forced durable *before* the work of the new phase starts, then
//! announced through a named crash point (`orchestrator.<phase>`), so
//! the deterministic crash simulator can kill the orchestrator at
//! every transition and verify recovery.
//!
//! ## Recovery semantics (§3.5 of the paper)
//!
//! Transformations are *not* redo-logged: target-table writes bypass
//! the WAL, so after a crash the recovered database contains the
//! (fully logged) source tables and none of the in-flight targets.
//! The paper's rule — "the schema transformation process must be
//! restarted, beginning with the preparation step" — is therefore the
//! only sound resume policy, and it is what [`Orchestrator::resume`]
//! implements: any job whose latest durable phase is not `Aborted` is
//! re-planned from its persisted spec text and re-executed from
//! scratch against the recovered sources. Even a durably `CutOver`
//! job re-runs — its targets were lost with the crash, and re-running
//! restores exactly what the client was promised. A durable `Aborted`
//! record, by contrast, means the migration was cancelled: resume
//! only makes sure no target stragglers exist and leaves the job
//! dead. What the state records buy is job *discovery* (which
//! migrations were in flight, with their full spec), the
//! aborted-versus-in-flight distinction, and observability.

use crate::spec::{Migration, MigrationSpec};
use morph_common::{DbError, DbResult};
use morph_core::{
    Progress, ProgressHandle, ProgressPhase, TransformJob, TransformOptions, TransformReport,
};
use morph_engine::Database;
use morph_wal::{LogRecord, MigrationPhase};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Front-end for submitting, monitoring and recovering migrations
/// over one [`Database`].
pub struct Orchestrator {
    db: Arc<Database>,
}

/// The latest durable state of a migration job, harvested from a
/// recovered log by [`Orchestrator::scan_states`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RecoveredMigration {
    /// Job id (unique per log lifetime).
    pub job: u64,
    /// Stage index the job had reached.
    pub stage: u32,
    /// Latest durable phase.
    pub phase: MigrationPhase,
    /// The migration program, serialized in the `ALTER TABLE` dialect.
    pub spec_text: String,
}

impl Orchestrator {
    /// Orchestrator over the given database.
    pub fn new(db: Arc<Database>) -> Orchestrator {
        Orchestrator { db }
    }

    /// The database this orchestrator drives.
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Submit a declarative migration. Claims every table the spec
    /// touches (failing with [`DbError::MigrationConflict`] if another
    /// running job overlaps), persists the `Planned` state and starts
    /// the state machine on a background thread.
    pub fn submit(
        &self,
        spec: MigrationSpec,
        options: TransformOptions,
    ) -> DbResult<MigrationHandle> {
        spec.validate()?;
        let id = self.db.migrations().next_job_id();
        self.db.migrations().claim(id, &spec.tables())?;
        Ok(self.launch(id, spec, options))
    }

    /// Parse and submit a migration program in the `ALTER TABLE`
    /// dialect.
    pub fn submit_text(&self, text: &str, options: TransformOptions) -> DbResult<MigrationHandle> {
        self.submit(Migration::parse(text)?, options)
    }

    /// Harvest the latest durable [`RecoveredMigration`] per job from
    /// a recovered record stream, in job-id order.
    pub fn scan_states(records: &[LogRecord]) -> Vec<RecoveredMigration> {
        let mut latest: BTreeMap<u64, RecoveredMigration> = BTreeMap::new();
        for rec in records {
            if let LogRecord::MigrationState {
                job,
                stage,
                phase,
                spec,
            } = rec
            {
                latest.insert(
                    *job,
                    RecoveredMigration {
                        job: *job,
                        stage: *stage,
                        phase: *phase,
                        spec_text: spec.clone(),
                    },
                );
            }
        }
        latest.into_values().collect()
    }

    /// Resume one recovered job on a freshly recovered database (call
    /// after `recover_into`). Non-`Aborted` jobs are re-executed from
    /// their persisted spec, restarting at preparation per §3.5 (see
    /// the module docs for why); `Aborted` jobs only get their target
    /// stragglers dropped and return `None`.
    pub fn resume(
        &self,
        rec: &RecoveredMigration,
        options: TransformOptions,
    ) -> DbResult<Option<MigrationHandle>> {
        let spec = Migration::parse(&rec.spec_text)?;
        self.db.migrations().bump_past(rec.job);
        if rec.phase == MigrationPhase::Aborted {
            for target in spec.stages.iter().flat_map(|s| s.target_tables()) {
                let _ = self.db.catalog().drop_table(&target);
            }
            return Ok(None);
        }
        self.db.migrations().claim(rec.job, &spec.tables())?;
        Ok(Some(self.launch(rec.job, spec, options)))
    }

    /// Scan `records` and resume every recovered job (convenience
    /// wrapper over [`Orchestrator::scan_states`] +
    /// [`Orchestrator::resume`]).
    pub fn recover(
        &self,
        records: &[LogRecord],
        options: &TransformOptions,
    ) -> DbResult<Vec<MigrationHandle>> {
        let mut handles = Vec::new();
        for rec in Self::scan_states(records) {
            if let Some(h) = self.resume(&rec, options.clone())? {
                handles.push(h);
            }
        }
        Ok(handles)
    }

    fn launch(&self, id: u64, spec: MigrationSpec, options: TransformOptions) -> MigrationHandle {
        let abort = Arc::new(AtomicBool::new(false));
        let pause = Arc::new(AtomicBool::new(false));
        let progress = Progress::new();
        let db = Arc::clone(&self.db);
        let abort2 = Arc::clone(&abort);
        let pause2 = Arc::clone(&pause);
        let progress2 = Arc::clone(&progress);
        let join =
            std::thread::spawn(move || run_job(db, id, spec, options, abort2, pause2, progress2));
        MigrationHandle {
            id,
            join,
            abort,
            pause,
            progress,
            started: Instant::now(),
        }
    }
}

/// Handle to a migration running on a background thread.
pub struct MigrationHandle {
    id: u64,
    join: JoinHandle<DbResult<Vec<TransformReport>>>,
    abort: Arc<AtomicBool>,
    pause: Arc<AtomicBool>,
    progress: Arc<Progress>,
    started: Instant,
}

impl MigrationHandle {
    /// The job id (also the key of its WAL state records).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Park the migration at the next propagation-iteration boundary.
    /// Nothing is released while parked (log pin, claims and targets
    /// stay); the wall-clock deadline, if any, keeps ticking.
    pub fn pause(&self) {
        self.pause.store(true, Ordering::Relaxed);
    }

    /// Release a [`MigrationHandle::pause`].
    pub fn resume(&self) {
        self.pause.store(false, Ordering::Relaxed);
    }

    /// Whether a pause is currently requested.
    pub fn is_paused(&self) -> bool {
        self.pause.load(Ordering::Relaxed)
    }

    /// Request an abort: the in-flight stage stops at its next batch
    /// boundary and deletes its targets (§6); already cut-over stages
    /// are final. The durable `Aborted` state is written by the worker.
    pub fn abort(&self) {
        self.abort.store(true, Ordering::Relaxed);
    }

    /// Live progress counters (lock-free reads).
    pub fn progress(&self) -> ProgressHandle {
        ProgressHandle::new(Arc::clone(&self.progress))
    }

    /// Crude remaining-time estimate from the observed propagation
    /// rate and the current backlog; `None` until enough has happened
    /// to extrapolate. Purely informational.
    pub fn eta(&self) -> Option<Duration> {
        let h = self.progress();
        let done = h.records_propagated() + h.rows_copied();
        let secs = self.started.elapsed().as_secs_f64();
        if done == 0 || secs <= 0.0 {
            return None;
        }
        let rate = done as f64 / secs;
        Some(Duration::from_secs_f64(h.backlog() as f64 / rate.max(1e-9)))
    }

    /// Whether the worker thread has finished.
    pub fn is_finished(&self) -> bool {
        self.join.is_finished()
    }

    /// Wait for the migration; returns one report per completed stage.
    pub fn join(self) -> DbResult<Vec<TransformReport>> {
        self.join
            .join()
            .map_err(|_| DbError::Internal("migration worker thread panicked".into()))?
    }
}

/// Persist one state transition and force it durable before the new
/// phase's work starts. The record is transparent to redo/undo (see
/// `morph-wal`): it exists for discovery and observability, not
/// replay.
fn persist(db: &Database, job: u64, stage: u32, phase: MigrationPhase, spec: &str) -> DbResult<()> {
    let lsn = db.log().append(LogRecord::MigrationState {
        job,
        stage,
        phase,
        spec: spec.to_owned(),
    });
    db.log().wait_durable(lsn)
}

/// Worker-thread body: run all stages, then conclude — releasing
/// claims on success, or persisting `Aborted` on a clean failure. A
/// simulated crash is *not* an abort: the "process" is dead, so no
/// further state is written (exactly like a real kill).
fn run_job(
    db: Arc<Database>,
    id: u64,
    spec: MigrationSpec,
    options: TransformOptions,
    abort: Arc<AtomicBool>,
    pause: Arc<AtomicBool>,
    progress: Arc<Progress>,
) -> DbResult<Vec<TransformReport>> {
    let text = spec.to_text();
    match run_stages(&db, id, &spec, &options, &abort, &pause, &progress, &text) {
        Ok(reports) => {
            db.migrations().release(id);
            Ok(reports)
        }
        Err((_, e @ DbError::SimulatedCrash(_))) => Err(e),
        Err((stage, e)) => {
            progress.set_phase(ProgressPhase::Aborted);
            // Best-effort: a failing log backend must not mask the
            // original error.
            let _ = persist(&db, id, stage, MigrationPhase::Aborted, &text);
            db.migrations().release(id);
            db.crash_point("orchestrator.aborted")?;
            Err(e)
        }
    }
}

/// The happy path of the state machine; failures return the stage
/// they happened in so the conclusion can record it.
#[allow(clippy::too_many_arguments)]
fn run_stages(
    db: &Arc<Database>,
    id: u64,
    spec: &MigrationSpec,
    options: &TransformOptions,
    abort: &AtomicBool,
    pause: &AtomicBool,
    progress: &Arc<Progress>,
    text: &str,
) -> Result<Vec<TransformReport>, (u32, DbError)> {
    persist(db, id, 0, MigrationPhase::Planned, text).map_err(|e| (0, e))?;
    db.crash_point("orchestrator.planned").map_err(|e| (0, e))?;
    let mut reports = Vec::with_capacity(spec.stages.len());
    for (i, plan) in spec.stages.iter().enumerate() {
        let stage = i as u32;
        let fail = |e: DbError| (stage, e);
        persist(db, id, stage, MigrationPhase::Preparing, text).map_err(fail)?;
        db.crash_point("orchestrator.preparing").map_err(fail)?;
        let mut job =
            TransformJob::prepare_with_progress(db, plan, options.clone(), Arc::clone(progress))
                .map_err(fail)?;

        persist(db, id, stage, MigrationPhase::Copying, text).map_err(fail)?;
        if let Err(e) = db.crash_point("orchestrator.copying") {
            job.cleanup();
            return Err(fail(e));
        }
        job.copy().map_err(fail)?;

        persist(db, id, stage, MigrationPhase::Propagating, text).map_err(fail)?;
        if let Err(e) = db.crash_point("orchestrator.propagating") {
            job.cleanup();
            return Err(fail(e));
        }
        job.propagate(abort, Some(pause)).map_err(fail)?;

        persist(db, id, stage, MigrationPhase::Syncing, text).map_err(fail)?;
        if let Err(e) = db.crash_point("orchestrator.syncing") {
            job.cleanup();
            return Err(fail(e));
        }
        job.synchronize().map_err(fail)?;
        reports.push(job.finish(abort).map_err(fail)?);
    }
    let last = spec.stages.len().saturating_sub(1) as u32;
    persist(db, id, last, MigrationPhase::CutOver, text).map_err(|e| (last, e))?;
    db.crash_point("orchestrator.cutover")
        .map_err(|e| (last, e))?;
    Ok(reports)
}
