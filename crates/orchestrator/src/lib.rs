//! # morph-orchestrator — declarative migrations, orchestrated
//!
//! The front door to schema changes: instead of hand-driving the
//! §3 pipeline (`morph-core`), clients describe *what* should change —
//! fluently via [`Migration`] builders or textually in a small
//! `ALTER TABLE` dialect — and the [`Orchestrator`] drives the rest as
//! an explicit, crash-recoverable state machine:
//!
//! ```text
//! Planned → Preparing → Copying → Propagating → Syncing → CutOver
//!                └──────────┴──────────┴──────────┴→ Aborted
//! ```
//!
//! Each transition is persisted through the WAL
//! (`LogRecord::MigrationState`) before the next phase's work begins,
//! so a crashed orchestrator can rediscover in-flight jobs at recovery
//! and restart them from preparation — the only sound policy given
//! that target writes bypass the log (paper §3.5). Running jobs expose
//! lock-free progress counters, an ETA, pause/resume, and
//! abort-with-cleanup through [`MigrationHandle`]; concurrent
//! migrations over disjoint table sets proceed in parallel while
//! overlapping ones are rejected up front via the engine's
//! migration registry.
//!
//! Grammar of the text dialect (one statement per stage, `;`-separated):
//!
//! ```text
//! ALTER TABLE src SPLIT INTO r (cols...) AND s (split_col -> dep_cols...)
//!     [IN PLACE] [CHECK CONSISTENCY]
//! ALTER TABLE r JOIN s INTO t ON r.col = s.col [MANY TO MANY]
//! ALTER TABLE r UNION s INTO t
//! ```

pub mod orchestrator;
pub mod parser;
pub mod sharded;
pub mod spec;

pub use orchestrator::{MigrationHandle, Orchestrator, RecoveredMigration};
pub use parser::parse;
pub use sharded::{start_lazy_sharded, submit_sharded, ShardedLazyMigration, ShardedMigration};
pub use spec::{Migration, MigrationBuilder, MigrationSpec};
