//! Sharded execution plan: one declarative migration fanned out as N
//! independent per-shard jobs.
//!
//! A [`ShardedDatabase`] is shared-nothing — each shard owns its
//! storage, WAL, lock manager and MVCC state — so a migration of a
//! co-partitioned table decomposes into N completely independent
//! migrations, one per shard, each with its own crash-recoverable
//! Planned→CutOver state machine persisted in that shard's WAL (the
//! per-shard [`Orchestrator`] is exactly the single-engine one; nothing
//! is shared across shards on the data path or the migration path).
//!
//! Two modes:
//!
//! * **Eager** ([`submit_sharded`]): every shard runs the full §3
//!   pipeline (populate → propagate → synchronize) concurrently;
//!   [`ShardedMigration::join`] waits for all N. A shard that crashes
//!   mid-flight recovers and resumes from its own WAL exactly like a
//!   single-engine migration — the other shards never notice.
//! * **Lazy** ([`start_lazy_sharded`]): every shard cuts its catalog
//!   over immediately ([`LazyMigration`]) and transforms records on
//!   first touch, with per-shard throttled backfill demoted to the
//!   background.

use crate::orchestrator::{MigrationHandle, Orchestrator};
use crate::spec::MigrationSpec;
use morph_common::{DbResult, TableId};
use morph_core::spec::TransformOptions;
use morph_core::transform::TransformPlan;
use morph_core::{LazyMigration, TransformReport};
use morph_engine::ShardedDatabase;
use std::sync::Arc;

/// Handles for one migration fanned out over every shard (eager mode).
pub struct ShardedMigration {
    handles: Vec<(usize, MigrationHandle)>,
}

impl ShardedMigration {
    /// Per-shard handles, for pausing or inspecting individual shards.
    pub fn handles(&self) -> &[(usize, MigrationHandle)] {
        &self.handles
    }

    /// Wait for every shard's migration; returns the per-shard reports
    /// in shard order. The first shard error wins (remaining shards
    /// still run to completion — shards are independent; a failed shard
    /// is re-submitted on recovery without touching the others).
    pub fn join(self) -> DbResult<Vec<Vec<TransformReport>>> {
        let mut out = Vec::with_capacity(self.handles.len());
        let mut first_err = None;
        for (_, h) in self.handles {
            match h.join() {
                Ok(reports) => out.push(reports),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }
}

/// Submit `spec` to every shard of `sdb` concurrently (eager mode).
/// Each shard gets its own [`Orchestrator`] and its own WAL-persisted
/// migration state machine; the caller's orchestrators are returned
/// alongside the handles so they outlive the submission.
pub fn submit_sharded(
    sdb: &ShardedDatabase,
    spec: &MigrationSpec,
    options: &TransformOptions,
) -> DbResult<(Vec<Orchestrator>, ShardedMigration)> {
    let mut orchs = Vec::with_capacity(sdb.shard_count());
    let mut handles = Vec::with_capacity(sdb.shard_count());
    for (i, shard) in sdb.shards().iter().enumerate() {
        shard.crash_point("router.shard_plan")?;
        let orch = Orchestrator::new(Arc::clone(shard));
        let h = orch.submit(spec.clone(), options.clone())?;
        orchs.push(orch);
        handles.push((i, h));
    }
    Ok((orchs, ShardedMigration { handles }))
}

/// A lazy migration fanned out over every shard: each shard has cut
/// over and transforms on access; `backfill` drains shard residuals.
pub struct ShardedLazyMigration {
    lazies: Vec<Arc<LazyMigration>>,
}

impl ShardedLazyMigration {
    /// Per-shard lazy migrations.
    pub fn shards(&self) -> &[Arc<LazyMigration>] {
        &self.lazies
    }

    /// Keys still awaiting transformation across all shards.
    pub fn remaining(&self) -> usize {
        self.lazies.iter().map(|l| l.remaining()).sum()
    }

    /// Whether every shard's residual set has drained.
    pub fn is_drained(&self) -> bool {
        self.lazies.iter().all(|l| l.is_drained())
    }

    /// One throttled backfill round across all shards (round-robin:
    /// `batch` records per shard per call). Returns records
    /// transformed.
    pub fn backfill_round(&self, batch: usize, priority: f64) -> DbResult<usize> {
        let mut total = 0;
        for lazy in &self.lazies {
            total += lazy.backfill(batch, priority)?;
        }
        Ok(total)
    }

    /// Drain every shard at full priority.
    pub fn drain_now(&self) -> DbResult<usize> {
        let mut total = 0;
        for lazy in &self.lazies {
            total += lazy.drain_now()?;
        }
        Ok(total)
    }

    /// Finish every shard (requires all residuals drained).
    pub fn finish(&self) -> DbResult<()> {
        for lazy in &self.lazies {
            lazy.finish()?;
        }
        Ok(())
    }

    /// Touch one record on one shard: transforms just that record if
    /// it is still pending there.
    pub fn touch_on(&self, shard: usize, table: TableId, key: &morph_common::Key) -> DbResult<()> {
        match self.lazies.get(shard) {
            Some(lazy) => lazy.touch(table, key),
            None => Err(morph_common::DbError::Internal(format!(
                "shard {shard} out of range ({} shards)",
                self.lazies.len()
            ))),
        }
    }
}

/// Cut every shard over lazily (SLSM-style): one short latch pause per
/// shard, then targets serve immediately with on-access transforms.
/// Only single-stage migrations can run lazily — a later stage's
/// source is an earlier stage's target, which has no frozen image yet.
pub fn start_lazy_sharded(
    sdb: &ShardedDatabase,
    spec: &MigrationSpec,
) -> DbResult<ShardedLazyMigration> {
    let [stage]: &[TransformPlan; 1] = spec.stages.as_slice().try_into().map_err(|_| {
        morph_common::DbError::TransformationAborted(
            "lazy sharded migration supports exactly one stage".into(),
        )
    })?;
    let mut lazies = Vec::with_capacity(sdb.shard_count());
    for shard in sdb.shards() {
        shard.crash_point("router.shard_plan")?;
        lazies.push(LazyMigration::start(shard, stage)?);
    }
    Ok(ShardedLazyMigration { lazies })
}
