//! Parser for the tiny declarative `ALTER TABLE` dialect.
//!
//! Grammar (keywords case-insensitive, statements `;`-separated, a
//! trailing `;` is allowed):
//!
//! ```text
//! stmt   := split | join | union
//! split  := ALTER TABLE t SPLIT INTO r "(" cols ")"
//!           AND s "(" split_col "->" cols ")"
//!           [IN PLACE] [CHECK CONSISTENCY]
//! join   := ALTER TABLE r JOIN s INTO t ON r "." col "=" s "." col
//!           [MANY TO MANY]
//! union  := ALTER TABLE r UNION s INTO t
//! cols   := ident ("," ident)*
//! ident  := [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! Every failure is a structured [`DbError::ParseError`] carrying the
//! byte offset and length of the offending token so callers can
//! underline it; malformed input never panics (property-tested over
//! mangled inputs in `tests/parser_errors.rs`).

use crate::spec::MigrationSpec;
use morph_common::{DbError, DbResult};
use morph_core::{FojSpec, SplitSpec, TransformPlan};

/// One lexed token with its byte span in the input.
#[derive(Clone, Debug, PartialEq)]
struct Token {
    kind: Tok,
    offset: usize,
    len: usize,
}

#[derive(Clone, Debug, PartialEq)]
enum Tok {
    /// Identifier or keyword (case preserved; keyword match is
    /// case-insensitive).
    Ident(String),
    /// `( ) , ; . =`
    Punct(char),
    /// `->`
    Arrow,
}

fn err(offset: usize, len: usize, detail: impl Into<String>) -> DbError {
    DbError::ParseError {
        offset,
        len,
        detail: detail.into(),
    }
}

/// Lex `text` into tokens. Only ASCII identifiers, the listed
/// punctuation and whitespace are legal; anything else is reported
/// with its byte offset.
fn lex(text: &str) -> DbResult<Vec<Token>> {
    let bytes = text.as_bytes();
    let mut toks = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        if b.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        if b == b'-' {
            if bytes.get(i + 1) == Some(&b'>') {
                toks.push(Token {
                    kind: Tok::Arrow,
                    offset: i,
                    len: 2,
                });
                i += 2;
                continue;
            }
            return Err(err(i, 1, "expected '->' after '-'"));
        }
        if matches!(b, b'(' | b')' | b',' | b';' | b'.' | b'=') {
            toks.push(Token {
                kind: Tok::Punct(b as char),
                offset: i,
                len: 1,
            });
            i += 1;
            continue;
        }
        if b.is_ascii_alphabetic() || b == b'_' {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let word = text.get(start..i).unwrap_or_default();
            toks.push(Token {
                kind: Tok::Ident(word.to_owned()),
                offset: start,
                len: i - start,
            });
            continue;
        }
        return Err(err(i, 1, format!("unexpected character 0x{b:02x}")));
    }
    Ok(toks)
}

/// Token-stream cursor with span-carrying error helpers.
struct Parser<'a> {
    toks: &'a [Token],
    pos: usize,
    /// End-of-input offset for errors past the last token.
    end: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&'a Token> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eof_err(&self, what: &str) -> DbError {
        err(self.end, 0, format!("unexpected end of input: {what}"))
    }

    /// Consume an identifier (non-keyword position).
    fn ident(&mut self, what: &str) -> DbResult<String> {
        match self.next() {
            Some(Token {
                kind: Tok::Ident(s),
                ..
            }) => Ok(s.clone()),
            Some(t) => Err(err(t.offset, t.len, format!("expected {what}"))),
            None => Err(self.eof_err(what)),
        }
    }

    /// Consume the given keyword (case-insensitive).
    fn keyword(&mut self, kw: &str) -> DbResult<()> {
        match self.next() {
            Some(Token {
                kind: Tok::Ident(s),
                ..
            }) if s.eq_ignore_ascii_case(kw) => Ok(()),
            Some(t) => Err(err(t.offset, t.len, format!("expected {kw}"))),
            None => Err(self.eof_err(kw)),
        }
    }

    /// Whether the next token is the given keyword; consumes it if so.
    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token {
            kind: Tok::Ident(s),
            ..
        }) = self.peek()
        {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn punct(&mut self, c: char) -> DbResult<()> {
        match self.next() {
            Some(Token {
                kind: Tok::Punct(p),
                ..
            }) if *p == c => Ok(()),
            Some(t) => Err(err(t.offset, t.len, format!("expected '{c}'"))),
            None => Err(self.eof_err(&format!("'{c}'"))),
        }
    }

    fn arrow(&mut self) -> DbResult<()> {
        match self.next() {
            Some(Token {
                kind: Tok::Arrow, ..
            }) => Ok(()),
            Some(t) => Err(err(t.offset, t.len, "expected '->'")),
            None => Err(self.eof_err("'->'")),
        }
    }

    /// `ident ("," ident)*`
    fn column_list(&mut self) -> DbResult<Vec<String>> {
        let mut cols = vec![self.ident("column name")?];
        while let Some(Token {
            kind: Tok::Punct(','),
            ..
        }) = self.peek()
        {
            self.pos += 1;
            cols.push(self.ident("column name")?);
        }
        Ok(cols)
    }

    /// `table "." column`, validated against the expected table name.
    fn qualified(&mut self, expect_table: &str) -> DbResult<String> {
        let start = self.peek().map(|t| (t.offset, t.len));
        let table = self.ident("table qualifier")?;
        if table != expect_table {
            let (offset, len) = start.unwrap_or((self.end, 0));
            return Err(err(
                offset,
                len,
                format!("join qualifier must be {expect_table}, got {table}"),
            ));
        }
        self.punct('.')?;
        self.ident("column name")
    }

    /// One statement after its `ALTER TABLE subject` prefix.
    fn statement(&mut self) -> DbResult<TransformPlan> {
        self.keyword("ALTER")?;
        self.keyword("TABLE")?;
        let subject = self.ident("table name")?;
        match self.peek() {
            Some(Token {
                kind: Tok::Ident(kw),
                offset,
                len,
            }) => {
                if kw.eq_ignore_ascii_case("SPLIT") {
                    self.pos += 1;
                    self.split_tail(&subject)
                } else if kw.eq_ignore_ascii_case("JOIN") {
                    self.pos += 1;
                    self.join_tail(&subject)
                } else if kw.eq_ignore_ascii_case("UNION") {
                    self.pos += 1;
                    self.union_tail(&subject)
                } else {
                    Err(err(
                        *offset,
                        *len,
                        format!("expected SPLIT, JOIN or UNION, got {kw}"),
                    ))
                }
            }
            Some(t) => Err(err(t.offset, t.len, "expected SPLIT, JOIN or UNION")),
            None => Err(self.eof_err("SPLIT, JOIN or UNION")),
        }
    }

    /// `INTO r (cols) AND s (split -> deps) [IN PLACE] [CHECK CONSISTENCY]`
    fn split_tail(&mut self, source: &str) -> DbResult<TransformPlan> {
        self.keyword("INTO")?;
        let r_target = self.ident("R target name")?;
        self.punct('(')?;
        let r_cols = self.column_list()?;
        self.punct(')')?;
        self.keyword("AND")?;
        let s_target = self.ident("S target name")?;
        self.punct('(')?;
        let split_start = self.peek().map(|t| (t.offset, t.len));
        let split_col = self.ident("split column")?;
        self.arrow()?;
        let deps = self.column_list()?;
        self.punct(')')?;
        if !r_cols.contains(&split_col) {
            let (offset, len) = split_start.unwrap_or((self.end, 0));
            return Err(err(
                offset,
                len,
                format!("split column {split_col} must be listed among the R columns"),
            ));
        }
        let r_cols_ref: Vec<&str> = r_cols.iter().map(String::as_str).collect();
        let deps_ref: Vec<&str> = deps.iter().map(String::as_str).collect();
        let mut spec = SplitSpec::new(
            source,
            &r_target,
            &s_target,
            &r_cols_ref,
            &split_col,
            &deps_ref,
        );
        if self.eat_keyword("IN") {
            self.keyword("PLACE")?;
            spec = spec.rename_in_place();
        }
        if self.eat_keyword("CHECK") {
            self.keyword("CONSISTENCY")?;
            spec = spec.with_consistency_check();
        }
        Ok(TransformPlan::Split(spec))
    }

    /// `s INTO t ON r.c = s.c [MANY TO MANY]`
    fn join_tail(&mut self, r_table: &str) -> DbResult<TransformPlan> {
        let s_table = self.ident("S table name")?;
        self.keyword("INTO")?;
        let target = self.ident("target name")?;
        self.keyword("ON")?;
        let r_join = self.qualified(r_table)?;
        self.punct('=')?;
        let s_join = self.qualified(&s_table)?;
        let mut spec = FojSpec::new(r_table, &s_table, &target, &r_join, &s_join);
        if self.eat_keyword("MANY") {
            self.keyword("TO")?;
            self.keyword("MANY")?;
            spec = spec.many_to_many();
        }
        Ok(TransformPlan::Foj(spec))
    }

    /// `s INTO t`
    fn union_tail(&mut self, r_table: &str) -> DbResult<TransformPlan> {
        let s_table = self.ident("second table name")?;
        self.keyword("INTO")?;
        let target = self.ident("target name")?;
        Ok(TransformPlan::Union(morph_core::UnionSpec::new(
            r_table, &s_table, &target,
        )))
    }
}

/// Parse a `;`-separated migration program. Returns
/// [`DbError::ParseError`] (never panics) on malformed input.
pub fn parse(text: &str) -> DbResult<MigrationSpec> {
    let toks = lex(text)?;
    let mut p = Parser {
        toks: &toks,
        pos: 0,
        end: text.len(),
    };
    let mut stages = Vec::new();
    loop {
        // Skip statement separators (allows trailing / repeated `;`).
        while let Some(Token {
            kind: Tok::Punct(';'),
            ..
        }) = p.peek()
        {
            p.pos += 1;
        }
        if p.peek().is_none() {
            break;
        }
        stages.push(p.statement()?);
        match p.peek() {
            None => break,
            Some(Token {
                kind: Tok::Punct(';'),
                ..
            }) => continue,
            Some(t) => return Err(err(t.offset, t.len, "expected ';' between statements")),
        }
    }
    if stages.is_empty() {
        return Err(err(0, 0, "empty migration: no statements"));
    }
    Ok(MigrationSpec { stages })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_three_statement_forms() {
        let spec = parse(
            "ALTER TABLE emp SPLIT INTO emp_base (id, name, zip) AND postal (zip -> city) CHECK CONSISTENCY;\n\
             alter table orders join customers into denorm on orders.cust = customers.id;\n\
             ALTER TABLE a UNION b INTO ab;",
        )
        .unwrap();
        assert_eq!(spec.stages.len(), 3);
        match &spec.stages[0] {
            TransformPlan::Split(s) => {
                assert_eq!(s.source, "emp");
                assert_eq!(s.split_col, "zip");
                assert_eq!(s.s_dep_cols, vec!["city"]);
                assert!(s.check_consistency);
            }
            other => panic!("expected split, got {other:?}"),
        }
        match &spec.stages[1] {
            TransformPlan::Foj(f) => {
                assert_eq!(f.r_join_col, "cust");
                assert_eq!(f.s_join_col, "id");
                assert!(!f.many_to_many);
            }
            other => panic!("expected join, got {other:?}"),
        }
    }

    #[test]
    fn in_place_split_parses() {
        let spec = parse("ALTER TABLE t SPLIT INTO r (a, c) AND s (c -> d) IN PLACE").unwrap();
        match &spec.stages[0] {
            TransformPlan::Split(s) => {
                assert_eq!(s.mode, morph_core::SplitMode::RenameInPlace)
            }
            other => panic!("expected split, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_the_offending_span() {
        let text = "ALTER TABLE t SPLIT ONTO r (a) AND s (a -> b)";
        let e = parse(text).unwrap_err();
        match e {
            DbError::ParseError { offset, len, .. } => {
                assert_eq!(&text[offset..offset + len], "ONTO");
            }
            other => panic!("expected ParseError, got {other:?}"),
        }
    }

    #[test]
    fn split_column_must_be_in_r_cols() {
        let e = parse("ALTER TABLE t SPLIT INTO r (a, b) AND s (c -> d)").unwrap_err();
        assert!(
            matches!(e, DbError::ParseError { ref detail, .. } if detail.contains("split column"))
        );
    }

    #[test]
    fn join_qualifier_mismatch_is_an_error() {
        let text = "ALTER TABLE r JOIN s INTO t ON wrong.c = s.c";
        let e = parse(text).unwrap_err();
        match e {
            DbError::ParseError { offset, len, .. } => {
                assert_eq!(&text[offset..offset + len], "wrong");
            }
            other => panic!("expected ParseError, got {other:?}"),
        }
    }

    #[test]
    fn truncated_input_reports_end_of_input() {
        let text = "ALTER TABLE t SPLIT INTO r (a, c) AND s (c ->";
        let e = parse(text).unwrap_err();
        assert!(matches!(
            e,
            DbError::ParseError { offset, .. } if offset == text.len()
        ));
    }

    #[test]
    fn empty_and_separator_only_inputs_fail_cleanly() {
        assert!(matches!(parse(""), Err(DbError::ParseError { .. })));
        assert!(matches!(parse(" ;; ; "), Err(DbError::ParseError { .. })));
    }
}
