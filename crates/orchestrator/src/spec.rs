//! Declarative migration specifications.
//!
//! A [`MigrationSpec`] is an ordered list of schema-change stages, each
//! compiling to one [`TransformPlan`] for the §3 pipeline. Specs are
//! built either fluently ([`Migration::split`] /
//! [`Migration::join`] / [`Migration::union`]) or from the small
//! `ALTER TABLE` dialect ([`Migration::parse`], see
//! [`parser`](crate::parser)); both representations round-trip through
//! [`MigrationSpec::to_text`], which is also the serialized form the
//! orchestrator persists in its WAL state records so a crashed
//! migration can be re-planned verbatim at recovery.

use morph_common::{DbError, DbResult};
use morph_core::{FojSpec, SplitSpec, TransformPlan, UnionSpec};

/// An ordered, declarative schema-change program: stage *k+1* runs
/// only after stage *k* has cut over.
#[derive(Clone, Debug)]
pub struct MigrationSpec {
    /// The stages, in execution order.
    pub stages: Vec<TransformPlan>,
}

impl MigrationSpec {
    /// Every table any stage touches — the orchestrator claims this
    /// set for conflict detection (overlapping migrations serialize,
    /// disjoint ones run concurrently).
    pub fn tables(&self) -> Vec<String> {
        let mut all: Vec<String> = Vec::new();
        for stage in &self.stages {
            for t in stage.tables() {
                if !all.contains(&t) {
                    all.push(t);
                }
            }
        }
        all
    }

    /// Target tables of the final stage (what the migration promises
    /// to exist after cutover).
    pub fn final_targets(&self) -> Vec<String> {
        self.stages
            .last()
            .map(|s| s.target_tables())
            .unwrap_or_default()
    }

    /// Serialize back to the `ALTER TABLE` dialect. Statements are
    /// `;`-separated; [`Migration::parse`] accepts the output verbatim
    /// (round-trip property, tested below and by the parser's
    /// proptests).
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for stage in &self.stages {
            if !out.is_empty() {
                out.push_str(";\n");
            }
            out.push_str(&stage_text(stage));
        }
        out
    }

    /// Validate shape invariants the builders cannot express (at least
    /// one stage; split stages name their split column among r_cols).
    pub fn validate(&self) -> DbResult<()> {
        if self.stages.is_empty() {
            return Err(DbError::ParseError {
                offset: 0,
                len: 0,
                detail: "migration has no stages".into(),
            });
        }
        Ok(())
    }
}

fn stage_text(stage: &TransformPlan) -> String {
    match stage {
        TransformPlan::Split(s) => {
            let mut txt = format!(
                "ALTER TABLE {} SPLIT INTO {} ({}) AND {} ({} -> {})",
                s.source,
                s.r_target,
                s.r_cols.join(", "),
                s.s_target,
                s.split_col,
                s.s_dep_cols.join(", "),
            );
            if s.mode == morph_core::SplitMode::RenameInPlace {
                txt.push_str(" IN PLACE");
            }
            if s.check_consistency {
                txt.push_str(" CHECK CONSISTENCY");
            }
            txt
        }
        TransformPlan::Foj(f) => {
            let mut txt = format!(
                "ALTER TABLE {} JOIN {} INTO {} ON {}.{} = {}.{}",
                f.r_table, f.s_table, f.target, f.r_table, f.r_join_col, f.s_table, f.s_join_col,
            );
            if f.many_to_many {
                txt.push_str(" MANY TO MANY");
            }
            txt
        }
        TransformPlan::Union(u) => {
            format!(
                "ALTER TABLE {} UNION {} INTO {}",
                u.r_table, u.s_table, u.target
            )
        }
    }
}

/// Fluent entry points for building a [`MigrationSpec`].
pub struct Migration;

impl Migration {
    /// Start a migration with a vertical split stage (§5): `source`
    /// splits into `r_target` (columns `r_cols`, which must include the
    /// source's primary key and `split_col`) and `s_target` (keyed by
    /// `split_col`, carrying the dependent columns `s_dep_cols`).
    pub fn split(
        source: &str,
        r_target: &str,
        s_target: &str,
        r_cols: &[&str],
        split_col: &str,
        s_dep_cols: &[&str],
    ) -> MigrationBuilder {
        MigrationBuilder {
            stages: vec![TransformPlan::Split(SplitSpec::new(
                source, r_target, s_target, r_cols, split_col, s_dep_cols,
            ))],
        }
    }

    /// Start a migration with a full-outer-join stage (§4): `r` joins
    /// `s` into `target` on `r.{r_join_col} = s.{s_join_col}`.
    pub fn join(
        r: &str,
        s: &str,
        target: &str,
        r_join_col: &str,
        s_join_col: &str,
    ) -> MigrationBuilder {
        MigrationBuilder {
            stages: vec![TransformPlan::Foj(FojSpec::new(
                r, s, target, r_join_col, s_join_col,
            ))],
        }
    }

    /// Start a migration with a horizontal-union stage: rows of `r`
    /// and `s` (same schema) merge into `target`.
    pub fn union(r: &str, s: &str, target: &str) -> MigrationBuilder {
        MigrationBuilder {
            stages: vec![TransformPlan::Union(UnionSpec::new(r, s, target))],
        }
    }

    /// Parse the `ALTER TABLE` dialect into a spec. See
    /// [`parser`](crate::parser) for the grammar; errors are
    /// [`DbError::ParseError`] with a byte-offset span and never a
    /// panic.
    pub fn parse(text: &str) -> DbResult<MigrationSpec> {
        crate::parser::parse(text)
    }
}

/// Chainable builder returned by the [`Migration`] entry points.
#[derive(Clone, Debug)]
pub struct MigrationBuilder {
    stages: Vec<TransformPlan>,
}

impl MigrationBuilder {
    /// Append a split stage.
    #[must_use]
    pub fn then_split(
        mut self,
        source: &str,
        r_target: &str,
        s_target: &str,
        r_cols: &[&str],
        split_col: &str,
        s_dep_cols: &[&str],
    ) -> Self {
        self.stages.push(TransformPlan::Split(SplitSpec::new(
            source, r_target, s_target, r_cols, split_col, s_dep_cols,
        )));
        self
    }

    /// Append a join stage.
    #[must_use]
    pub fn then_join(
        mut self,
        r: &str,
        s: &str,
        target: &str,
        r_join_col: &str,
        s_join_col: &str,
    ) -> Self {
        self.stages.push(TransformPlan::Foj(FojSpec::new(
            r, s, target, r_join_col, s_join_col,
        )));
        self
    }

    /// Append a union stage.
    #[must_use]
    pub fn then_union(mut self, r: &str, s: &str, target: &str) -> Self {
        self.stages
            .push(TransformPlan::Union(UnionSpec::new(r, s, target)));
        self
    }

    /// Mark the most recent stage's split as rename-in-place (no
    /// separate R copy; the source is projected in place at the end).
    /// No-op for non-split stages.
    #[must_use]
    pub fn in_place(mut self) -> Self {
        if let Some(TransformPlan::Split(s)) = self.stages.last_mut() {
            *s = s.clone().rename_in_place();
        }
        self
    }

    /// Enable the §5.3 consistency checker on the most recent stage's
    /// split. No-op for non-split stages.
    #[must_use]
    pub fn check_consistency(mut self) -> Self {
        if let Some(TransformPlan::Split(s)) = self.stages.last_mut() {
            *s = s.clone().with_consistency_check();
        }
        self
    }

    /// Mark the most recent stage's join as many-to-many (§4.2).
    /// No-op for non-join stages.
    #[must_use]
    pub fn many_to_many(mut self) -> Self {
        if let Some(TransformPlan::Foj(f)) = self.stages.last_mut() {
            *f = f.clone().many_to_many();
        }
        self
    }

    /// Finish building.
    pub fn build(self) -> MigrationSpec {
        MigrationSpec {
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_round_trip_through_text() {
        let spec = Migration::split(
            "emp",
            "emp_base",
            "postal",
            &["id", "name", "zip"],
            "zip",
            &["city"],
        )
        .check_consistency()
        .then_union("emp_base", "contractors", "people")
        .build();
        let text = spec.to_text();
        assert!(text.contains("SPLIT INTO"));
        assert!(text.contains("CHECK CONSISTENCY"));
        assert!(text.contains("UNION"));
        let reparsed = Migration::parse(&text).unwrap();
        assert_eq!(reparsed.to_text(), text);
        assert_eq!(reparsed.stages.len(), 2);
    }

    #[test]
    fn join_round_trips_with_many_to_many() {
        let spec = Migration::join("orders", "customers", "denorm", "cust", "id")
            .many_to_many()
            .build();
        let text = spec.to_text();
        assert!(text.contains("MANY TO MANY"));
        let reparsed = Migration::parse(&text).unwrap();
        assert_eq!(reparsed.to_text(), text);
    }

    #[test]
    fn tables_are_deduplicated_in_order() {
        let spec = Migration::split("t", "r", "s", &["a", "c"], "c", &["d"])
            .then_union("r", "u", "v")
            .build();
        assert_eq!(spec.tables(), vec!["t", "r", "s", "u", "v"]);
        assert_eq!(spec.final_targets(), vec!["v"]);
    }

    #[test]
    fn empty_spec_fails_validation() {
        let spec = MigrationSpec { stages: vec![] };
        assert!(matches!(spec.validate(), Err(DbError::ParseError { .. })));
    }
}
