//! Property tests of the `ALTER TABLE` parser's error path: arbitrary
//! mangled inputs must either parse or come back as a structured
//! [`DbError::ParseError`] whose span lies inside the input — and the
//! parser must never panic. Valid programs must round-trip through
//! `to_text` exactly.

use morph_common::DbError;
use morph_orchestrator::parse;
use proptest::prelude::*;

/// Identifier pool: plain names, keyword look-alikes ("many", "check",
/// "into") and keyword-prefixed names, so mangling collides generated
/// programs with the grammar's keywords.
const IDENTS: [&str; 10] = [
    "t", "r", "s2", "emp", "zip_code", "_x", "Name9", "many", "check", "into",
];

fn ident(i: usize) -> &'static str {
    IDENTS[i % IDENTS.len()]
}

/// Characters mutations splice in: grammar punctuation, whitespace,
/// identifier bytes, an illegal byte, and multi-byte UTF-8 so byte
/// offsets land inside and around char boundaries.
const SPLICE: [char; 18] = [
    '(', ')', ';', ',', '.', '=', '-', '>', 'A', 'z', '_', '0', ' ', '\n', '#', '\u{0}', 'é', '→',
];

/// One syntactically valid statement from component indices.
fn statement(form: usize, a: usize, b: usize, c: usize, d: usize, flag: bool) -> String {
    match form % 3 {
        0 => {
            // split: the split column is always listed among r_cols.
            let split = ident(c);
            let mut txt = format!(
                "ALTER TABLE {} SPLIT INTO {} ({}, {}, {}) AND {} ({} -> {})",
                ident(a),
                ident(a + 1),
                ident(b),
                ident(b + 1),
                split,
                ident(a + 2),
                split,
                ident(d),
            );
            if flag {
                txt.push_str(" CHECK CONSISTENCY");
            }
            txt
        }
        1 => {
            let r = ident(a);
            let s = ident(a + 1);
            let mut txt = format!(
                "ALTER TABLE {r} JOIN {s} INTO {} ON {r}.{} = {s}.{}",
                ident(a + 2),
                ident(b),
                ident(c),
            );
            if flag {
                txt.push_str(" MANY TO MANY");
            }
            txt
        }
        _ => format!(
            "ALTER TABLE {} UNION {} INTO {}",
            ident(a),
            ident(b),
            ident(c)
        ),
    }
}

fn statement_strategy() -> impl Strategy<Value = String> {
    (
        0..3usize,
        0..10usize,
        0..10usize,
        0..10usize,
        0..10usize,
        any::<bool>(),
    )
        .prop_map(|(form, a, b, c, d, flag)| statement(form, a, b, c, d, flag))
}

/// A mutation: (operator, position, splice index).
fn mutation_strategy() -> impl Strategy<Value = (usize, usize, usize)> {
    (0..4usize, 0..256usize, 0..SPLICE.len())
}

/// Apply mutations on the char level so the result stays valid UTF-8;
/// the *parser* still sees raw bytes (offsets are byte offsets).
fn mangle(text: &str, ops: &[(usize, usize, usize)]) -> String {
    let mut chars: Vec<char> = text.chars().collect();
    for &(op, pos, splice) in ops {
        if chars.is_empty() {
            chars.push(SPLICE[splice]);
            continue;
        }
        let i = pos % chars.len();
        match op {
            0 => {
                chars.remove(i);
            }
            1 => chars.insert(i, SPLICE[splice]),
            2 => chars[i] = SPLICE[splice],
            _ => chars.truncate(i),
        }
    }
    chars.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(600))]

    /// The error-path contract: no panic, and every failure is a
    /// ParseError whose `[offset, offset+len)` span lies within the
    /// input. (A panic anywhere in lex/parse fails the test run.)
    #[test]
    fn mangled_inputs_error_structurally(
        stmt in statement_strategy(),
        ops in prop::collection::vec(mutation_strategy(), 0..7),
    ) {
        let text = mangle(&stmt, &ops);
        match parse(&text) {
            Ok(spec) => prop_assert!(!spec.stages.is_empty()),
            Err(DbError::ParseError { offset, len, ref detail }) => {
                prop_assert!(
                    offset <= text.len(),
                    "offset {offset} past end {} for {text:?}", text.len()
                );
                prop_assert!(
                    offset + len <= text.len(),
                    "span {offset}+{len} past end {} for {text:?}", text.len()
                );
                prop_assert!(!detail.is_empty());
            }
            Err(ref other) => prop_assert!(
                false,
                "non-ParseError from parser: {other} for {text:?}"
            ),
        }
    }

    /// Valid generated programs parse, and their canonical text
    /// round-trips through the parser to the same canonical text.
    #[test]
    fn valid_programs_round_trip(
        stmts in prop::collection::vec(statement_strategy(), 1..4),
    ) {
        let text = stmts.join(";\n");
        let spec = match parse(&text) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("{e} for {text:?}"))),
        };
        prop_assert_eq!(spec.stages.len(), stmts.len());
        let canon = spec.to_text();
        let again = match parse(&canon) {
            Ok(s) => s,
            Err(e) => return Err(TestCaseError::fail(format!("{e} for canonical {canon:?}"))),
        };
        prop_assert_eq!(again.to_text(), canon);
    }
}
