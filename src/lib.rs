//! # morphdb
//!
//! Umbrella crate for the morphdb workspace — a reproduction of
//! *Online, Non-blocking Relational Schema Changes* (Løland &
//! Hvasshovd, EDBT 2006). Re-exports the public API of every layer so
//! examples and downstream users can depend on a single crate.
//!
//! ## Layers
//!
//! * [`common`] — values, keys, schemas, ids, errors.
//! * [`wal`] — ARIES-style write-ahead log with CLRs and fuzzy marks.
//! * [`storage`] — in-memory tables, secondary indexes, catalog.
//! * [`txn`] — lock manager (wait–die, origin-tagged Figure-2 matrix).
//! * [`engine`] — the transactional [`engine::Database`] facade.
//! * [`core`] — the paper's contribution: non-blocking full outer join
//!   and split schema transformations.
//! * [`orchestrator`] — declarative migration front-end and the
//!   crash-recoverable state machine that drives the pipeline.
//! * [`workload`] — closed-loop benchmark driver used by the
//!   experiment harness.

pub mod pretty;

pub use morph_common as common;
pub use morph_core as core;
pub use morph_engine as engine;
pub use morph_orchestrator as orchestrator;
pub use morph_storage as storage;
pub use morph_txn as txn;
pub use morph_wal as wal;
pub use morph_workload as workload;

pub use morph_common::{ColumnType, DbError, DbResult, Key, Lsn, Schema, TableId, TxnId, Value};
pub use morph_core::LazyMigration;
pub use morph_core::TransformMode;
pub use morph_engine::Database;
pub use morph_engine::{ShardCounters, ShardedDatabase};
pub use morph_orchestrator::{start_lazy_sharded, submit_sharded};
pub use morph_storage::{CommitTable, Snapshot, SnapshotTracker};
pub use morph_txn::thread_lock_waits;
