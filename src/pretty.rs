//! Small table pretty-printer used by the examples.

use morph_storage::Table;

/// Render a table's contents as an ASCII grid (rows in primary-key
/// order). Intended for examples and debugging, not for large tables.
pub fn render(table: &Table) -> String {
    let schema = table.schema();
    let mut headers: Vec<String> = schema.columns().iter().map(|c| c.name.clone()).collect();
    headers.push("meta".to_owned());
    let rows: Vec<Vec<String>> = table
        .snapshot()
        .into_iter()
        .map(|(_, row)| {
            let mut cells: Vec<String> = row.values.iter().map(|v| v.to_string()).collect();
            let mut meta = Vec::new();
            if row.counter != 1 {
                meta.push(format!("ctr={}", row.counter));
            }
            if row.flag == morph_storage::ConsistencyFlag::Unknown {
                meta.push("U".to_owned());
            }
            if !row.presence.left {
                meta.push("r∅".to_owned());
            }
            if !row.presence.right {
                meta.push("s∅".to_owned());
            }
            cells.push(meta.join(","));
            cells
        })
        .collect();

    let mut widths: Vec<usize> = headers.iter().map(|h| h.chars().count()).collect();
    for row in &rows {
        for (i, c) in row.iter().enumerate() {
            widths[i] = widths[i].max(c.chars().count());
        }
    }
    let sep = |out: &mut String| {
        out.push('+');
        for w in &widths {
            out.push_str(&"-".repeat(w + 2));
            out.push('+');
        }
        out.push('\n');
    };
    let line = |out: &mut String, cells: &[String]| {
        out.push('|');
        for (i, c) in cells.iter().enumerate() {
            let pad = widths[i] - c.chars().count();
            out.push(' ');
            out.push_str(c);
            out.push_str(&" ".repeat(pad + 1));
            out.push('|');
        }
        out.push('\n');
    };

    let mut out = String::new();
    out.push_str(&format!("{} ({} rows)\n", table.name(), rows.len()));
    sep(&mut out);
    line(&mut out, &headers);
    sep(&mut out);
    for row in &rows {
        line(&mut out, row);
    }
    sep(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use morph_common::{ColumnType, Lsn, Schema, TableId, Value};

    #[test]
    fn renders_rows_and_metadata() {
        let schema = Schema::builder()
            .column("id", ColumnType::Int)
            .nullable("name", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap();
        let t = Table::new(TableId(1), "people", schema);
        t.insert(vec![Value::Int(1), Value::str("ann")], Lsn(1))
            .unwrap();
        t.insert(vec![Value::Int(2), Value::Null], Lsn(1)).unwrap();
        t.with_row_mut(&morph_common::Key::single(2), |r| r.counter = 3);
        let s = render(&t);
        assert!(s.contains("people (2 rows)"));
        assert!(s.contains("ann"));
        assert!(s.contains("NULL"));
        assert!(s.contains("ctr=3"));
    }
}
