//! The paper's motivating scenario: an operational telecom database
//! with very high availability requirements needs to *denormalize* —
//! subscriber records and their rate plans are accessed together on
//! every call setup, so the DBA folds `subscribers ⟗ plans` into one
//! table — **without ever blocking the call-processing workload**.
//!
//! The example keeps a closed-loop workload of "call events" (each
//! transaction updates a few subscriber rows and a dummy billing
//! table) running across the whole transformation, then prints what
//! the clients observed: throughput before / during / after, the
//! number of transactions the synchronization step sacrificed, and
//! the length of the one real pause.
//!
//! ```sh
//! cargo run --release --example telecom_denormalize
//! ```

use morphdb::core::{FojSpec, NonConvergencePolicy, SyncStrategy, TransformOptions, Transformer};
use morphdb::workload::{setup_dummy, ClientConfig, HotSide, WorkloadRunner};
use morphdb::{ColumnType, Database, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

const SUBSCRIBERS: usize = 20_000;
const PLANS: usize = 200;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Arc::new(Database::new());

    // subscribers(msisdn, profile, plan_id) / plans(plan_id, tariff)
    let subscribers = Schema::builder()
        .column("msisdn", ColumnType::Int)
        .nullable("profile", ColumnType::Str)
        .nullable("plan_id", ColumnType::Int)
        .primary_key(&["msisdn"])
        .build()?;
    let plans = Schema::builder()
        .column("plan_id", ColumnType::Int)
        .nullable("tariff", ColumnType::Str)
        .primary_key(&["plan_id"])
        .build()?;
    db.create_table("subscribers", subscribers)?;
    db.create_table("plans", plans)?;
    setup_dummy(&db, 20_000)?;

    // Subscriber lines are keyed by a dense internal line number (the
    // MSISDN would be a secondary attribute in production).
    let txn = db.begin();
    for i in 0..SUBSCRIBERS as i64 {
        db.insert(
            txn,
            "subscribers",
            vec![
                Value::Int(i),
                Value::str("profile"),
                Value::Int(i % PLANS as i64),
            ],
        )?;
    }
    for p in 0..PLANS as i64 {
        db.insert(txn, "plans", vec![Value::Int(p), Value::str("flat")])?;
    }
    db.commit(txn)?;
    println!("seeded {} subscribers on {} rate plans", SUBSCRIBERS, PLANS);

    // Call-processing workload: profile updates on subscribers (these
    // are the hot updates the propagator must chase) plus billing
    // (dummy) updates.
    let cfg = ClientConfig {
        updates_per_txn: 10,
        hot_fraction: 0.2,
        hot: HotSide::FojSources { s_share: 0.1 },
        hot_rows: SUBSCRIBERS,
        hot_s_rows: PLANS,
        dummy_rows: 20_000,
        pacing: Some(Duration::from_millis(2)),
    };
    // The generic workload driver routes hot updates to tables named
    // "R" and "S"; alias the domain tables accordingly.
    db.catalog().rename("subscribers", "R")?;
    db.catalog().rename("plans", "S")?;
    println!("starting call-processing workload (6 clients)…");
    let runner = WorkloadRunner::start(Arc::clone(&db), cfg, 6);
    std::thread::sleep(Duration::from_millis(300));
    let before = runner.measure(Duration::from_millis(800));

    println!("launching online denormalization: subscribers ⟗ plans → subscriber_plans");
    let spec = FojSpec::new("R", "S", "subscriber_plans", "plan_id", "plan_id");
    let handle = Transformer::spawn_foj(
        Arc::clone(&db),
        spec,
        TransformOptions::default()
            // Start as a half-priority background process; if the
            // workload outruns propagation (§3.3), escalate rather
            // than abort.
            .priority(0.5)
            .non_convergence(NonConvergencePolicy::Escalate { factor: 1.5 })
            .strategy(SyncStrategy::NonBlockingAbort)
            .deadline(Duration::from_secs(120)),
    );
    let during = runner.measure(Duration::from_millis(800));
    let report = handle.join()?;
    let after = runner.measure(Duration::from_millis(800));
    runner.stop();

    println!("\n--- what the clients saw ---");
    println!(
        "throughput  before: {:>8.1} tps   during: {:>8.1} tps ({:.1}% relative)   after: {:>8.1} tps",
        before.throughput,
        during.throughput,
        100.0 * during.throughput / before.throughput.max(1e-9),
        after.throughput
    );
    println!(
        "response    before: {:>8.3} ms    during: {:>8.3} ms ({:.1}% relative)",
        before.mean_latency_ms,
        during.mean_latency_ms,
        100.0 * during.mean_latency_ms / before.mean_latency_ms.max(1e-9),
    );
    println!(
        "schema-change rollbacks across the switch: {}",
        before.schema_events + during.schema_events + after.schema_events
    );

    println!("\n--- what the transformation cost ---");
    println!(
        "initial population: {} rows read fuzzily, {} rows written, {:?}",
        report.population.rows_read, report.population.rows_written, report.population.duration
    );
    println!(
        "log propagation: {} iterations, {} records",
        report.iteration_count(),
        report.records_processed()
    );
    println!(
        "synchronization: sources latched for {:?}; {} transactions doomed; {} locks transferred",
        report.sync.latch_pause, report.sync.old_txns, report.sync.locks_transferred
    );
    println!("total: {:?}", report.total);

    let t = db.catalog().get("subscriber_plans")?;
    println!(
        "\nsubscriber_plans now serves reads: {} rows (subscribers joined with plans)",
        t.len()
    );
    assert!(!db.catalog().exists("R") && !db.catalog().exists("S"));
    Ok(())
}
