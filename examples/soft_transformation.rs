//! The **non-blocking commit** strategy (§3.4) — what Ronström calls a
//! *soft transformation*: at synchronization, transactions that are
//! still active on the source tables are *not* aborted; they keep
//! running on the (now hidden) sources to completion, while new
//! transactions already use the transformed table. Consistency between
//! the two worlds is enforced by mirroring every old-transaction lock
//! onto the transformed table under the Figure-2 compatibility matrix:
//! a new transaction that touches a mirrored record waits (or is
//! wounded) until the old transaction finishes *and the propagator has
//! caught up with its log records*.
//!
//! The example walks through exactly that interleaving, narrating each
//! step.
//!
//! ```sh
//! cargo run --example soft_transformation
//! ```

use morphdb::core::{FojSpec, SyncStrategy, TransformOptions, Transformer};
use morphdb::storage::TableState;
use morphdb::{ColumnType, Database, DbError, Key, Schema, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Arc::new(Database::new());
    let orders = Schema::builder()
        .column("order_id", ColumnType::Int)
        .nullable("note", ColumnType::Str)
        .nullable("cust", ColumnType::Int)
        .primary_key(&["order_id"])
        .build()?;
    let customers = Schema::builder()
        .column("cust", ColumnType::Int)
        .nullable("name", ColumnType::Str)
        .primary_key(&["cust"])
        .build()?;
    db.create_table("orders", orders)?;
    db.create_table("customers", customers)?;
    let txn = db.begin();
    for i in 0..100i64 {
        db.insert(
            txn,
            "orders",
            vec![Value::Int(i), Value::str("note"), Value::Int(i % 8)],
        )?;
    }
    for c in 0..8i64 {
        db.insert(
            txn,
            "customers",
            vec![Value::Int(c), Value::str(format!("cust{c}"))],
        )?;
    }
    db.commit(txn)?;

    // A long-running transaction, active when synchronization fires.
    let old = db.begin();
    db.update(
        old,
        "orders",
        &Key::single(5),
        &[(1, Value::str("old-txn-work"))],
    )?;
    println!("old transaction {old} holds a lock on orders[5]");

    println!("launching the FOJ transformation with the non-blocking COMMIT strategy…");
    let handle = Transformer::spawn_foj(
        Arc::clone(&db),
        FojSpec::new("orders", "customers", "orders_denorm", "cust", "cust"),
        TransformOptions::default()
            .strategy(SyncStrategy::NonBlockingCommit)
            .deadline(Duration::from_secs(30)),
    );

    // Wait for the switch (sources freeze for everyone but `old`).
    let t0 = Instant::now();
    while db.catalog().get("orders")?.state() == TableState::Active {
        if t0.elapsed() > Duration::from_secs(20) {
            panic!("synchronization never happened");
        }
        std::thread::sleep(Duration::from_millis(1));
    }
    println!("synchronized: sources frozen, orders_denorm is live — but {old} lives on");

    // A NEW transaction can use the transformed table immediately…
    let fresh = db.begin();
    let t_key = Key::new([Value::Int(50), Value::Int(2)]); // (order_id, cust)
    db.update(
        fresh,
        "orders_denorm",
        &t_key,
        &[(1, Value::str("new-world"))],
    )?;
    db.commit(fresh)?;
    println!("new transaction updated orders_denorm[50] without waiting");

    // …but the record the old transaction has mirrored locks on is
    // protected: a new writer conflicts per Figure 2 (T.w vs R.w = n).
    let blocked = db.begin();
    let locked_key = Key::new([Value::Int(5), Value::Int(5)]);
    match db.update(
        blocked,
        "orders_denorm",
        &locked_key,
        &[(1, Value::str("clash"))],
    ) {
        Err(DbError::Deadlock(_)) | Err(DbError::LockTimeout(_)) => {
            println!("new transaction correctly blocked on the mirrored lock of {old}");
        }
        Ok(()) => panic!("the mirrored lock failed to protect the record!"),
        Err(e) => return Err(e.into()),
    }
    db.abort(blocked)?;

    // The old transaction continues on the frozen source and COMMITS —
    // nothing it did is lost ("nonconflicting transactions are not
    // aborted due to the transformation").
    db.update(
        old,
        "orders",
        &Key::single(6),
        &[(1, Value::str("late-work"))],
    )?;
    db.commit(old)?;
    println!(
        "{old} committed on the frozen source; propagation washes its work into the new table"
    );

    let report = handle.join()?;
    println!(
        "transformation done: {} old transaction(s) carried over, {} locks transferred, latch pause {:?}",
        report.sync.old_txns, report.sync.locks_transferred, report.sync.latch_pause
    );

    // Everything the old transaction wrote is in the transformed table.
    let t = db.catalog().get("orders_denorm")?;
    let got: Vec<String> = t
        .snapshot()
        .into_iter()
        .filter_map(|(_, row)| row.values[1].as_str().map(str::to_owned))
        .filter(|s| s.contains("work") || s.contains("world"))
        .collect();
    println!("surviving writes in orders_denorm: {got:?}");
    assert!(got.contains(&"old-txn-work".to_owned()));
    assert!(got.contains(&"late-work".to_owned()));
    assert!(got.contains(&"new-world".to_owned()));

    // And the once-locked record is writable again.
    let after = db.begin();
    db.update(
        after,
        "orders_denorm",
        &locked_key,
        &[(1, Value::str("free"))],
    )?;
    db.commit(after)?;
    println!("record released after the propagator processed {old}'s commit — soft transformation complete.");
    Ok(())
}
