//! Declarative online migration with live progress, pause and resume.
//!
//! An `accounts` table is split — declaratively, via the orchestrator's
//! `ALTER TABLE` dialect — into `accounts_base` and `branches` while
//! two background writers keep committing updates against it. The
//! migration runs as a crash-recoverable state machine
//! (Planned → Preparing → Copying → Propagating → Syncing → CutOver),
//! every transition durably logged before the next phase starts; this
//! example watches it through the lock-free progress handle, parks it
//! mid-propagation with `pause()`, resumes it, and lets it cut over
//! under load.
//!
//! ```sh
//! cargo run --release --example migrate
//! ```

use morphdb::core::TransformOptions;
use morphdb::orchestrator::{Migration, Orchestrator};
use morphdb::workload::{spawn_updaters, UpdateTarget};
use morphdb::{ColumnType, Database, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

const ROWS: i64 = 30_000;
const BRANCHES: i64 = 400;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Arc::new(Database::new());
    let schema = Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("owner", ColumnType::Str)
        .nullable("branch", ColumnType::Int)
        .nullable("branch_city", ColumnType::Str)
        .primary_key(&["id"])
        .build()?;
    db.create_table("accounts", schema)?;

    // branch → branch_city is a functional dependency the application
    // maintained but the schema never enforced: exactly what the
    // paper's split transformation normalizes away.
    let mut txn = db.begin();
    for i in 0..ROWS {
        let b = i % BRANCHES;
        db.insert(
            txn,
            "accounts",
            vec![
                Value::Int(i),
                Value::str(format!("owner-{i}")),
                Value::Int(b),
                Value::str(format!("city-{b}")),
            ],
        )?;
        if i % 5_000 == 4_999 {
            db.commit(txn)?;
            txn = db.begin();
        }
    }
    db.commit(txn)?;
    println!("seeded accounts with {ROWS} rows across {BRANCHES} branches");

    // Background clients: the migration must not block them.
    let pool = spawn_updaters(
        &db,
        vec![UpdateTarget::new("accounts", ROWS, 1)],
        3,
        Duration::from_micros(20),
    );

    let orch = Orchestrator::new(Arc::clone(&db));
    let spec = Migration::parse(
        "ALTER TABLE accounts \
         SPLIT INTO accounts_base (id, owner, branch) \
         AND branches (branch -> branch_city)",
    )?;
    println!("migration program:\n  {}\n", spec.to_text());

    // Deliberately small batches and a modest priority share so the
    // propagation phase is long enough to watch (and to pause).
    let options = TransformOptions {
        batch_size: 32,
        sync_threshold: 48,
        population_chunk: 256,
        ..TransformOptions::default()
    }
    .priority(0.35)
    .deadline(Duration::from_secs(120))
    .retain_sources();
    let handle = orch.submit(spec, options)?;
    println!("submitted as job #{}", handle.id());

    let progress = handle.progress();
    let mut paused_once = false;
    let mut ticks = 0u32;
    while !handle.is_finished() {
        std::thread::sleep(Duration::from_millis(50));
        ticks += 1;
        let eta = match handle.eta() {
            Some(d) => format!("eta {:.1}s", d.as_secs_f64()),
            None => "eta —".to_owned(),
        };
        println!(
            "[{:>5.1}s] {} | {} | updates committed: {}",
            ticks as f64 * 0.05,
            progress.summary(),
            eta,
            pool.committed(),
        );
        // Once propagation is underway, demonstrate pause/resume: the
        // job parks at an iteration boundary (claims and log pin kept),
        // writers keep committing, then the job picks up where it left.
        if !paused_once && progress.records_propagated() > 0 {
            paused_once = true;
            handle.pause();
            let before = pool.committed();
            std::thread::sleep(Duration::from_millis(300));
            println!(
                "-- paused at {} | writers committed {} more while parked",
                progress.summary(),
                pool.committed() - before,
            );
            handle.resume();
        }
    }

    let reports = handle.join()?;
    let committed = pool.stop();
    let report = &reports[0];
    println!(
        "\ncut over after {} propagation iterations",
        report.iterations.len()
    );
    println!(
        "  copied {} rows in {:?}; propagated {} log records",
        report.population.rows_read,
        report.population.duration,
        report.iterations.iter().map(|i| i.records).sum::<usize>(),
    );
    println!(
        "  synchronization latch pause: {:?} (writers never blocked longer)",
        report.sync.latch_pause
    );
    println!("  background writers committed {committed} updates throughout");

    let base = db.catalog().get("accounts_base")?;
    let branches = db.catalog().get("branches")?;
    println!(
        "\nfinal schema: accounts_base={} rows, branches={} rows (counters sum to {})",
        base.len(),
        branches.len(),
        branches
            .snapshot()
            .iter()
            .map(|(_, r)| r.counter as usize)
            .sum::<usize>(),
    );
    Ok(())
}
