//! ARIES-style restart recovery — the substrate assumption the whole
//! transformation framework rests on (§1: redo *and* undo logging with
//! CLRs).
//!
//! A file-backed database runs a mix of committed and in-flight
//! transactions, "crashes" (process state is discarded), and recovers
//! purely from the log file: committed work survives, the loser
//! transaction is rolled back via freshly written compensation
//! records.
//!
//! ```sh
//! cargo run --example crash_recovery
//! ```

use morphdb::engine::recover_into;
use morphdb::txn::LockManagerConfig;
use morphdb::wal::{file::FileBackend, LogManager};
use morphdb::{ColumnType, Database, Key, Schema, Value};
use std::sync::Arc;

fn schema() -> Schema {
    Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("balance", ColumnType::Int)
        .primary_key(&["id"])
        .build()
        .expect("static schema")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wal_path = std::env::temp_dir().join(format!("morphdb-demo-{}.wal", std::process::id()));
    let _ = std::fs::remove_file(&wal_path);

    // --- phase 1: normal operation, file-backed WAL ---
    let table_id;
    {
        let log = Arc::new(LogManager::with_file(&wal_path)?);
        let db = Database::with_log(log, LockManagerConfig::default());
        let accounts = db.create_table("accounts", schema())?;
        table_id = accounts.id();

        let setup = db.begin();
        for i in 0..5 {
            db.insert(setup, "accounts", vec![Value::Int(i), Value::Int(100)])?;
        }
        db.commit(setup)?;

        // A committed transfer…
        let t1 = db.begin();
        db.update(t1, "accounts", &Key::single(0), &[(1, Value::Int(50))])?;
        db.update(t1, "accounts", &Key::single(1), &[(1, Value::Int(150))])?;
        db.commit(t1)?;

        // …an aborted one (its CLRs are in the log)…
        let t2 = db.begin();
        db.update(t2, "accounts", &Key::single(2), &[(1, Value::Int(0))])?;
        db.abort(t2)?;

        // …and one still in flight when the "power fails".
        let t3 = db.begin();
        db.update(t3, "accounts", &Key::single(3), &[(1, Value::Int(999))])?;
        db.log().flush()?;

        println!("before crash (txn {t3} still holds locks on account 3):");
        println!("{}", morphdb::pretty::render(&accounts));
        // db dropped here: all in-memory state gone.
    }

    // --- phase 2: restart recovery from the log file alone ---
    println!("…crash! restarting from {}\n", wal_path.display());
    let records = FileBackend::read_all(&wal_path)?;
    println!("recovered log: {} records", records.len());

    let db = Database::new();
    db.catalog()
        .create_table_with_id(table_id, "accounts", schema())?;
    let report = recover_into(&db, &records)?;
    println!(
        "analysis/redo/undo: {} operations redone, {} loser transaction(s) rolled back, {} CLRs written\n",
        report.redone,
        report.losers.len(),
        report.clrs_written
    );

    let accounts = db.catalog().get("accounts")?;
    println!("after recovery:");
    println!("{}", morphdb::pretty::render(&accounts));

    // Invariants: the committed transfer survived, the loser's dirty
    // update is gone.
    assert_eq!(
        accounts.get(&Key::single(0)).unwrap().values[1],
        Value::Int(50)
    );
    assert_eq!(
        accounts.get(&Key::single(1)).unwrap().values[1],
        Value::Int(150)
    );
    assert_eq!(
        accounts.get(&Key::single(2)).unwrap().values[1],
        Value::Int(100),
        "aborted work must not survive"
    );
    assert_eq!(
        accounts.get(&Key::single(3)).unwrap().values[1],
        Value::Int(100),
        "loser work must be rolled back"
    );
    println!("invariants hold: committed work survived, losers rolled back.");
    std::fs::remove_file(&wal_path)?;
    Ok(())
}
