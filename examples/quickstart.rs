//! Quickstart: the paper's Figure 1 (full outer join) and Figure 3
//! (split), executed as real online transformations.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use morphdb::core::{FojSpec, SplitSpec, TransformOptions, Transformer};
use morphdb::{Database, Value};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Figure 1: full outer join transformation ==\n");
    foj_figure1()?;
    println!("\n== Figure 3: split transformation (the reverse) ==\n");
    split_figure3()?;
    Ok(())
}

fn foj_figure1() -> Result<(), Box<dyn std::error::Error>> {
    let db = Arc::new(Database::new());
    // R(a, b, c) joining S(c, d) on c — the paper's running example.
    let (r_schema, s_schema) = morphdb::core::foj::figure1_schemas();
    db.create_table("R", r_schema)?;
    db.create_table("S", s_schema)?;

    let txn = db.begin();
    for (a, b, c) in [(1, "a", "c1"), (2, "b", "c1"), (5, "e", "f")] {
        db.insert(txn, "R", vec![Value::Int(a), Value::str(b), Value::str(c)])?;
    }
    for (c, d) in [("c1", "d1"), ("c2", "d2")] {
        db.insert(txn, "S", vec![Value::str(c), Value::str(d)])?;
    }
    db.commit(txn)?;

    println!("{}", morphdb::pretty::render(&*db.catalog().get("R")?));
    println!("{}", morphdb::pretty::render(&*db.catalog().get("S")?));

    // The transformation runs in the background; user transactions
    // could keep working on R and S the whole time.
    let spec = FojSpec::new("R", "S", "T", "c", "c");
    let report = Transformer::run_foj(
        &db,
        spec,
        TransformOptions::default().deadline(Duration::from_secs(10)),
    )?;

    println!("T = R ⟗ S   (rows with r∅ / s∅ are the NULL-extended sides)");
    println!("{}", morphdb::pretty::render(&*db.catalog().get("T")?));
    println!(
        "transformation: {} log records propagated, sources latched for {:?}",
        report.records_processed(),
        report.sync.latch_pause
    );
    Ok(())
}

fn split_figure3() -> Result<(), Box<dyn std::error::Error>> {
    let db = Arc::new(Database::new());
    let schema = morphdb::Schema::builder()
        .column("a", morphdb::ColumnType::Int)
        .nullable("b", morphdb::ColumnType::Str)
        .nullable("c", morphdb::ColumnType::Str)
        .nullable("d", morphdb::ColumnType::Str)
        .primary_key(&["a"])
        .build()?;
    db.create_table("T", schema)?;
    let txn = db.begin();
    for (a, b, c, d) in [
        (1, "a", "c1", "d1"),
        (2, "b", "c1", "d1"),
        (5, "e", "c2", "d2"),
    ] {
        db.insert(
            txn,
            "T",
            vec![Value::Int(a), Value::str(b), Value::str(c), Value::str(d)],
        )?;
    }
    db.commit(txn)?;
    println!("{}", morphdb::pretty::render(&*db.catalog().get("T")?));

    let spec = SplitSpec::new("T", "R", "S", &["a", "b", "c"], "c", &["d"]);
    let report = Transformer::run_split(
        &db,
        spec,
        TransformOptions::default().deadline(Duration::from_secs(10)),
    )?;

    println!("R (keeps T's key; c is the foreign key into S)");
    println!("{}", morphdb::pretty::render(&*db.catalog().get("R")?));
    println!("S (one record per split value; ctr counts contributing T-rows)");
    println!("{}", morphdb::pretty::render(&*db.catalog().get("S")?));
    println!(
        "transformation: {} log records propagated, source latched for {:?}",
        report.records_processed(),
        report.sync.latch_pause
    );
    Ok(())
}
