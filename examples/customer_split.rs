//! The paper's Example 1: splitting a customer table on a functional
//! dependency the DBMS never enforced — and what happens when the data
//! violates it.
//!
//! `customers(customer_id, name, postal_code, city)` is to be split
//! into `customers(customer_id, name, postal_code)` and
//! `postal_codes(postal_code, city)`. Customer 134 has the paper's
//! typo: postal code 7050 with city "Trnodheim" while customer 001 says
//! "Trondheim". The §5.3 consistency checker detects the contradiction
//! (the transformation *cannot* decide which city is right), the DBA
//! repairs the source row with an ordinary online transaction, and the
//! transformation then completes with every S-record certified
//! consistent.
//!
//! ```sh
//! cargo run --example customer_split
//! ```

use morphdb::core::{SplitSpec, TransformOptions, Transformer};
use morphdb::{ColumnType, Database, DbError, Key, Schema, Value};
use std::sync::Arc;
use std::time::Duration;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let db = Arc::new(Database::new());
    let schema = Schema::builder()
        .column("customer_id", ColumnType::Int)
        .nullable("name", ColumnType::Str)
        .nullable("postal_code", ColumnType::Str)
        .nullable("city", ColumnType::Str)
        .primary_key(&["customer_id"])
        .build()?;
    db.create_table("customers", schema)?;

    let txn = db.begin();
    for (id, name, code, city) in [
        (1, "Peter", "7050", "Trondheim"),
        (2, "Mark", "5020", "Bergen"),
        (3, "Gary", "0050", "Oslo"),
        (134, "Jen", "7050", "Trnodheim"), // the paper's typo
    ] {
        db.insert(
            txn,
            "customers",
            vec![
                Value::Int(id),
                Value::str(name),
                Value::str(code),
                Value::str(city),
            ],
        )?;
    }
    db.commit(txn)?;
    println!("source table (note customers 1 and 134 disagree on 7050's city):\n");
    println!(
        "{}",
        morphdb::pretty::render(&*db.catalog().get("customers")?)
    );

    let spec = || {
        SplitSpec::new(
            "customers",
            "customers_base",
            "postal_codes",
            &["customer_id", "name", "postal_code"],
            "postal_code",
            &["city"],
        )
        .with_consistency_check()
    };
    let options = TransformOptions::default()
        .deadline(Duration::from_secs(10))
        // Give the checker a few rounds, then give up and report.
        .priority(1.0);
    let options = {
        let mut o = options;
        o.max_iterations = 50;
        o
    };

    println!("attempting the split with §5.3 consistency checking…");
    match Transformer::run_split(&db, spec(), options.clone()) {
        Err(DbError::InconsistentSplitData { key, detail }) => {
            println!("  ✗ transformation refused: inconsistent data at {key}");
            println!("    ({detail})\n");
        }
        other => panic!("expected InconsistentSplitData, got {other:?}"),
    }

    println!("DBA repairs the typo with an ordinary online transaction…\n");
    let txn = db.begin();
    db.update(
        txn,
        "customers",
        &Key::single(134),
        &[(3, Value::str("Trondheim"))],
    )?;
    db.commit(txn)?;

    println!("retrying the split…");
    let report = Transformer::run_split(&db, spec(), options)?;
    println!(
        "  ✓ completed: {} consistency-checker rounds, sources latched {:?}\n",
        report.cc_rounds, report.sync.latch_pause
    );

    println!(
        "{}",
        morphdb::pretty::render(&*db.catalog().get("customers_base")?)
    );
    println!(
        "{}",
        morphdb::pretty::render(&*db.catalog().get("postal_codes")?)
    );
    println!("(ctr=2 on 7050: two customers share that postal code; all flags are C)");
    Ok(())
}
