//! Semantics of the three synchronization strategies (§3.4), observed
//! from the client side, plus the Figure-2 lock behaviour of the
//! non-blocking commit strategy.

use morphdb::core::{FojSpec, SyncStrategy, TransformOptions, Transformer};
use morphdb::{ColumnType, Database, DbError, Key, Schema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn sources(db: &Database, rows: usize) {
    let r = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    let s = Schema::builder()
        .column("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["c"])
        .build()
        .unwrap();
    db.create_table("R", r).unwrap();
    db.create_table("S", s).unwrap();
    let txn = db.begin();
    for i in 0..rows as i64 {
        db.insert(
            txn,
            "R",
            vec![Value::Int(i), Value::str("b"), Value::Int(i % 10)],
        )
        .unwrap();
    }
    for j in 0..10i64 {
        db.insert(txn, "S", vec![Value::Int(j), Value::str("d")])
            .unwrap();
    }
    db.commit(txn).unwrap();
}

fn opts(strategy: SyncStrategy) -> TransformOptions {
    TransformOptions::default()
        .strategy(strategy)
        .deadline(Duration::from_secs(30))
}

#[test]
fn non_blocking_abort_dooms_old_and_serves_new() {
    let db = Arc::new(Database::new());
    sources(&db, 100);
    let old = db.begin();
    db.update(old, "R", &Key::single(5), &[(1, Value::str("dirty"))])
        .unwrap();

    let handle = Transformer::spawn_foj(
        Arc::clone(&db),
        FojSpec::new("R", "S", "T", "c", "c"),
        opts(SyncStrategy::NonBlockingAbort),
    );

    // The old transaction gets doomed; a well-behaved client rolls it
    // back and moves to the new table.
    let t0 = Instant::now();
    loop {
        match db.update(old, "R", &Key::single(6), &[(1, Value::str("x"))]) {
            Ok(()) => {
                assert!(t0.elapsed() < Duration::from_secs(25), "never doomed");
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(DbError::TxnDoomed(_)) | Err(DbError::TableFrozen(_)) => {
                db.abort(old).unwrap();
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    handle.join().unwrap();

    // New transactions use T; the doomed transaction's work is absent.
    let t = db.catalog().get("T").unwrap();
    assert!(t
        .snapshot()
        .iter()
        .all(|(_, row)| row.values[1] != Value::str("dirty")));
    let txn = db.begin();
    let read = db
        .read(txn, "T", &Key::new([Value::Int(5), Value::Int(5)]))
        .unwrap();
    assert!(read.is_some());
    db.commit(txn).unwrap();
}

#[test]
fn non_blocking_commit_blocks_new_txn_until_old_commit_propagates() {
    let db = Arc::new(Database::new());
    sources(&db, 50);
    let old = db.begin();
    db.update(old, "R", &Key::single(1), &[(1, Value::str("v1"))])
        .unwrap();

    let handle = Transformer::spawn_foj(
        Arc::clone(&db),
        FojSpec::new("R", "S", "T", "c", "c"),
        opts(SyncStrategy::NonBlockingCommit),
    );
    // Wait for the switch (R freezes for new transactions).
    let t0 = Instant::now();
    loop {
        if db.catalog().get("R").unwrap().state() != morphdb::storage::TableState::Active {
            break;
        }
        assert!(
            t0.elapsed() < Duration::from_secs(25),
            "sync never happened"
        );
        std::thread::sleep(Duration::from_micros(500));
    }

    // A new transaction trying to write the *mirror-locked* T record
    // must conflict (Figure 2: native write vs transferred write).
    let t_key = Key::new([Value::Int(1), Value::Int(1)]);
    let newer = db.begin();
    match db.update(newer, "T", &t_key, &[(1, Value::str("clash"))]) {
        Err(DbError::Deadlock(_)) | Err(DbError::LockTimeout(_)) => {}
        Ok(()) => panic!("new txn must not slip past the transferred lock"),
        Err(e) => panic!("unexpected: {e}"),
    }
    db.abort(newer).unwrap();

    // The old transaction keeps working on the frozen source, commits…
    db.update(old, "R", &Key::single(2), &[(1, Value::str("v2"))])
        .unwrap();
    db.commit(old).unwrap();
    // …and once the propagator catches up the transformation finishes
    // and the record becomes writable.
    handle.join().unwrap();
    let txn = db.begin();
    db.update(txn, "T", &t_key, &[(1, Value::str("after"))])
        .unwrap();
    db.commit(txn).unwrap();

    // Both old-transaction updates are visible in T.
    let t = db.catalog().get("T").unwrap();
    let vals: Vec<Value> = t
        .snapshot()
        .iter()
        .map(|(_, r)| r.values[1].clone())
        .collect();
    assert!(vals.contains(&Value::str("v2")));
    assert!(vals.contains(&Value::str("after")));
}

/// Regression test: split synchronization transfers locks for a
/// transaction that is active on the source at the sync instant. An
/// earlier version self-deadlocked here — the lock-transfer path read
/// the *source* table (for the split value) while the synchronization
/// step held the source's exclusive latch.
#[test]
fn split_sync_with_active_source_lock_holder_does_not_deadlock() {
    use morphdb::core::SplitSpec;
    let db = Arc::new(Database::new());
    let t_schema = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["a"])
        .build()
        .unwrap();
    db.create_table("T", t_schema).unwrap();
    let txn = db.begin();
    for i in 0..100i64 {
        db.insert(
            txn,
            "T",
            vec![
                Value::Int(i),
                Value::str("b"),
                Value::Int(i % 10),
                Value::str(format!("dep-{}", i % 10)),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();

    // Hold exclusive locks on source records across the sync.
    let old = db.begin();
    db.update(old, "T", &Key::single(7), &[(1, Value::str("held"))])
        .unwrap();

    let spec = SplitSpec::new("T", "R2", "S2", &["a", "b", "c"], "c", &["d"]);
    let handle = morphdb::core::Transformer::spawn_split(
        Arc::clone(&db),
        spec,
        opts(SyncStrategy::NonBlockingAbort),
    );
    // Roll the doomed transaction back once the sync fires.
    let t0 = Instant::now();
    loop {
        match db.update(old, "T", &Key::single(8), &[(1, Value::str("x"))]) {
            Ok(()) => {
                assert!(t0.elapsed() < Duration::from_secs(25), "never doomed");
                std::thread::sleep(Duration::from_micros(500));
            }
            Err(DbError::TxnDoomed(_)) | Err(DbError::TableFrozen(_)) => {
                db.abort(old).unwrap();
                break;
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
    }
    let report = handle.join().expect("split transformation");
    assert!(
        report.sync.old_txns >= 1,
        "the holder must be grandfathered"
    );
    assert!(report.sync.locks_transferred >= 1);
    // The doomed txn's work is absent from the targets.
    let r2 = db.catalog().get("R2").unwrap();
    assert!(r2
        .snapshot()
        .iter()
        .all(|(_, row)| row.values[1] != Value::str("held")));
}

#[test]
fn blocking_commit_blocks_then_switches() {
    let db = Arc::new(Database::new());
    sources(&db, 50);

    // A transaction holding a source lock delays the strategy; it
    // commits shortly after, from another thread.
    let holder = db.begin();
    db.update(holder, "R", &Key::single(0), &[(1, Value::str("held"))])
        .unwrap();
    let db2 = Arc::clone(&db);
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(50));
        db2.commit(holder).unwrap();
    });

    let blocked_seen = Arc::new(AtomicBool::new(false));
    let db3 = Arc::clone(&db);
    let seen2 = Arc::clone(&blocked_seen);
    let prober = std::thread::spawn(move || {
        // Probe during the freeze window: new transactions must be
        // rejected from the sources at some point.
        for _ in 0..2_000 {
            let txn = db3.begin();
            match db3.update(txn, "R", &Key::single(3), &[(1, Value::str("p"))]) {
                Err(DbError::TableFrozen(_)) | Err(DbError::NoSuchTable(_)) => {
                    seen2.store(true, Ordering::Relaxed);
                    let _ = db3.abort(txn);
                    return;
                }
                _ => {
                    let _ = db3.abort(txn);
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    });

    let report = Transformer::run_foj(
        &db,
        FojSpec::new("R", "S", "T", "c", "c"),
        opts(SyncStrategy::BlockingCommit),
    )
    .unwrap();
    release.join().unwrap();
    prober.join().unwrap();

    assert!(
        blocked_seen.load(Ordering::Relaxed),
        "blocking commit must visibly block new transactions"
    );
    // The holder's committed update made it into T.
    let t = db.catalog().get("T").unwrap();
    assert!(t
        .snapshot()
        .iter()
        .any(|(_, row)| row.values[1] == Value::str("held")));
    assert_eq!(report.sync.strategy, SyncStrategy::BlockingCommit);
    assert!(!db.catalog().exists("R"));
}
