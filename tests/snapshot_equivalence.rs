//! MVCC snapshot reads: correctness against the log, and the
//! non-blocking guarantee the whole mechanism exists for.
//!
//! 1. **Snapshot ≡ prefix recovery.** A snapshot taken at LSN *t* must
//!    show exactly the committed state the WAL prefix `..=t` recovers
//!    to: a transaction is visible iff its `Commit` record lies inside
//!    the prefix, in-flight and aborted work fully invisible. Both
//!    sides consume the same log, through entirely different code —
//!    version-chain visibility checks on the live database versus
//!    ARIES redo/undo on a fresh one — so agreement for arbitrary
//!    generated histories (including snapshots taken *mid*-transaction)
//!    pins the visibility rule to the recovery semantics.
//!
//! 2. **Readers never block.** While a pooled snapshot-mode split
//!    migration and four writer threads hammer the source table,
//!    reader threads continuously acquire snapshots and scan. Every
//!    scan must observe a consistent image (exactly the seeded row
//!    count — writers only update in place), and the per-thread
//!    lock-wait counter must stay at zero: snapshot reads take no
//!    transaction locks and wait on nobody, migration or not.

use morphdb::core::{ParallelConfig, SplitSpec, TransformOptions, Transformer};
use morphdb::engine::recover_into;
use morphdb::txn::LockManagerConfig;
use morphdb::wal::{LogManager, LogRecord};
use morphdb::workload::{spawn_updaters, UpdateTarget};
use morphdb::{thread_lock_waits, ColumnType, Database, Key, Lsn, Schema, TransformMode, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn schema() -> Schema {
    Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("v", ColumnType::Str)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

fn state_of(db: &Database) -> BTreeMap<Key, Vec<Value>> {
    db.catalog()
        .get("t")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values))
        .collect()
}

/// Run a generated history of small transactions on an MVCC-enabled
/// database, taking snapshots at random points — after commits, after
/// aborts, and in the middle of open transactions — then check every
/// snapshot against a fresh recovery of the WAL prefix at its LSN.
fn check_history(seed: u64) -> Result<(), TestCaseError> {
    let db = Database::new();
    let table = db.create_table("t", schema()).unwrap();
    db.enable_mvcc();

    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<i64> = Vec::new();
    let mut next_id = 0i64;
    let mut snaps = Vec::new();

    for _ in 0..rng.gen_range(4..10usize) {
        let txn = db.begin();
        for _ in 0..rng.gen_range(1..4usize) {
            let roll = rng.gen_range(0u32..100);
            if roll < 40 || live.is_empty() {
                let id = next_id;
                next_id += 1;
                db.insert(txn, "t", vec![Value::Int(id), Value::str(format!("i{id}"))])
                    .unwrap();
                live.push(id);
            } else if roll < 70 {
                let id = live[rng.gen_range(0..live.len())];
                db.update(
                    txn,
                    "t",
                    &Key::single(id),
                    &[(1, Value::str(format!("u{}", rng.gen_range(0..100u32))))],
                )
                .unwrap();
            } else {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                db.delete(txn, "t", &Key::single(id)).unwrap();
            }
        }
        if rng.gen_bool(0.3) {
            // Mid-transaction snapshot: this txn's writes are in the
            // log below the timestamp but must stay invisible.
            snaps.push(db.begin_snapshot().unwrap());
        }
        if rng.gen_bool(0.2) {
            db.abort(txn).unwrap();
            live = table
                .snapshot()
                .iter()
                .map(|(k, _)| match &k.0[0] {
                    Value::Int(i) => *i,
                    other => panic!("unexpected key {other:?}"),
                })
                .collect();
        } else {
            db.commit(txn).unwrap();
        }
        if rng.gen_bool(0.5) {
            snaps.push(db.begin_snapshot().unwrap());
        }
    }
    // One final snapshot so the full history is always covered.
    snaps.push(db.begin_snapshot().unwrap());

    let all: Vec<(Lsn, LogRecord)> = db
        .log()
        .read_range(Lsn(1), usize::MAX)
        .into_iter()
        .map(|(l, r)| (l, (*r).clone()))
        .collect();

    for snap in &snaps {
        let t = snap.lsn();
        let prefix: Vec<LogRecord> = all
            .iter()
            .filter(|(l, _)| *l <= t)
            .map(|(_, r)| r.clone())
            .collect();
        let db2 = Database::with_log(
            Arc::new(LogManager::with_records(prefix.clone())),
            LockManagerConfig::default(),
        );
        db2.catalog()
            .create_table_with_id(table.id(), "t", schema())
            .unwrap();
        recover_into(&db2, &prefix).unwrap();
        let want = state_of(&db2);
        let got: BTreeMap<Key, Vec<Value>> =
            db.snapshot_scan(snap, "t").unwrap().into_iter().collect();
        prop_assert!(
            got == want,
            "snapshot at {:?} disagrees with prefix recovery (seed {}): got {:?}, want {:?}",
            t,
            seed,
            got,
            want
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Snapshot reads at LSN t ≡ committed state of the log prefix
    /// `..=t`, for arbitrary histories.
    #[test]
    fn snapshot_reads_equal_prefix_recovery(seed in any::<u64>()) {
        check_history(seed)?;
    }
}

fn grouped_schema() -> Schema {
    Schema::builder()
        .column("k", ColumnType::Int)
        .nullable("payload", ColumnType::Str)
        .nullable("grp", ColumnType::Int)
        .nullable("dep", ColumnType::Str)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

/// Readers on MVCC snapshots never block — not on the migration, not
/// on the writers — and every scan is a consistent image.
#[test]
fn snapshot_readers_never_block_during_pooled_migration() {
    const ROWS: i64 = 400;
    let db = Arc::new(Database::new());
    db.create_table("W", grouped_schema()).unwrap();
    let txn = db.begin();
    for i in 0..ROWS {
        let g = i % 20;
        db.insert(
            txn,
            "W",
            vec![
                Value::Int(i),
                Value::str("p"),
                Value::Int(g),
                Value::str(format!("dep-{g}")),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    db.enable_mvcc();

    // Four writers updating in place (row count stays exactly ROWS).
    let pool = spawn_updaters(
        &db,
        vec![UpdateTarget::new("W", ROWS, 1)],
        4,
        Duration::from_micros(200),
    );

    let done = Arc::new(AtomicBool::new(false));
    let readers: Vec<_> = (0..2)
        .map(|_| {
            let db = Arc::clone(&db);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut scans = 0u64;
                while !done.load(Ordering::Relaxed) {
                    let snap = db.begin_snapshot().unwrap();
                    let rows = db.snapshot_scan(&snap, "W").unwrap();
                    assert_eq!(
                        rows.len(),
                        ROWS as usize,
                        "snapshot scan must be a consistent image"
                    );
                    scans += 1;
                }
                (scans, thread_lock_waits())
            })
        })
        .collect();

    let handle = Transformer::spawn_split(
        Arc::clone(&db),
        SplitSpec::new(
            "W",
            "W_base",
            "W_groups",
            &["k", "payload", "grp"],
            "grp",
            &["dep"],
        ),
        TransformOptions::default()
            .deadline(Duration::from_secs(60))
            .retain_sources()
            .parallel(ParallelConfig::new(2, 2).exact())
            .transform_mode(TransformMode::Snapshot),
    );
    let report = handle.join().expect("snapshot-mode split under fire");
    done.store(true, Ordering::Relaxed);

    for r in readers {
        let (scans, waits) = r.join().unwrap();
        assert!(scans > 0, "reader never completed a scan");
        assert_eq!(
            waits, 0,
            "snapshot readers must never wait on transaction locks"
        );
    }
    let committed = pool.stop();
    assert!(committed > 0, "writers never committed anything");
    assert!(report.population.rows_read >= ROWS as usize);
    assert_eq!(db.catalog().get("W_base").unwrap().len(), ROWS as usize);
    assert_eq!(db.live_snapshots(), 0, "all snapshots released");
    // With no snapshot left alive GC may reclaim freely and must not
    // disturb the live state.
    db.mvcc_gc().unwrap();
    assert_eq!(db.catalog().get("W").unwrap().len(), ROWS as usize);
}
