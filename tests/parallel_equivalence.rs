//! Property: the parallel transformation pipeline — partitioned
//! parallel fuzzy copy plus subject-sharded batch apply — is
//! observationally equivalent to the serial pipeline.
//!
//! Two databases replay byte-identical histories. One transforms with
//! `ParallelConfig { copy_workers: N, apply_shards: M }`, the other
//! with the serial `1/1` configuration, and the target tables must
//! come out row-for-row identical (and both must match the reference
//! oracle). Any divergence is the parallel path's fault: an unsound
//! lane classification (a record whose probe set escapes its subject
//! shard), a lost barrier, an out-of-order shared-S effect, or a
//! population merge that picked the wrong canonical S image.
//!
//! The worker/shard counts honour `MORPH_PAR_COPY_WORKERS` and
//! `MORPH_PAR_APPLY_SHARDS` (default 4) so CI can pin the
//! configuration it wants to certify.

use morphdb::core::foj::{self, FojMapping};
use morphdb::core::propagate::Propagator;
use morphdb::core::split::{self, SplitMapping};
use morphdb::core::union::{self, UnionMapping};
use morphdb::core::{ApplyPool, FojSpec, ParallelConfig, SplitSpec, TransformOperator, UnionSpec};
use morphdb::{ColumnType, Database, Key, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn copy_workers() -> usize {
    env_usize("MORPH_PAR_COPY_WORKERS", 4)
}

fn apply_shards() -> usize {
    env_usize("MORPH_PAR_APPLY_SHARDS", 4)
}

/// Rows of a target table as comparable tuples (key, values, counter,
/// presence); row LSNs are compared separately where they are
/// semantic (split R side).
fn rows_of(db: &Database, name: &str) -> Vec<(Key, Vec<Value>, u32, String)> {
    let t = db.catalog().get(name).unwrap();
    let mut rows: Vec<_> = t
        .snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values, r.counter, format!("{:?}", r.presence)))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

fn rows_with_lsn(db: &Database, name: &str) -> Vec<(Key, Vec<Value>, u32, morphdb::Lsn)> {
    let t = db.catalog().get(name).unwrap();
    let mut rows: Vec<_> = t
        .snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values, r.counter, r.lsn))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

// --- FOJ -------------------------------------------------------------------

#[derive(Clone, Debug)]
enum FojStep {
    InsertR {
        a: i64,
        c: i64,
    },
    InsertS {
        c: i64,
    },
    DeleteR {
        a: i64,
    },
    DeleteS {
        c: i64,
    },
    /// Payload update on R — the only record class the FOJ sharded
    /// apply runs in parallel lanes; everything else is a barrier.
    PayloadR {
        a: i64,
        tag: i64,
    },
    JoinMoveR {
        a: i64,
        c: i64,
    },
    KeyMoveR {
        a: i64,
        to: i64,
    },
    PayloadS {
        c: i64,
        tag: i64,
    },
}

fn foj_step() -> impl Strategy<Value = FojStep> {
    // Update-heavy mix (payload updates are the parallelizable class,
    // so repeating that arm grows the parallel segments).
    prop_oneof![
        (0..24i64, 0..6i64).prop_map(|(a, c)| FojStep::InsertR { a, c }),
        (0..6i64).prop_map(|c| FojStep::InsertS { c }),
        (0..24i64).prop_map(|a| FojStep::DeleteR { a }),
        (0..6i64).prop_map(|c| FojStep::DeleteS { c }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| FojStep::PayloadR { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| FojStep::PayloadR { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| FojStep::PayloadR { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| FojStep::PayloadR { a, tag }),
        (0..24i64, 0..6i64).prop_map(|(a, c)| FojStep::JoinMoveR { a, c }),
        (0..24i64, 0..24i64).prop_map(|(a, to)| FojStep::KeyMoveR { a, to }),
        (0..6i64, 0..1000i64).prop_map(|(c, tag)| FojStep::PayloadS { c, tag }),
    ]
}

fn foj_sources(db: &Database) {
    let r = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Int)
        .nullable("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    let s = Schema::builder()
        .column("c", ColumnType::Int)
        .nullable("d", ColumnType::Int)
        .primary_key(&["c"])
        .build()
        .unwrap();
    db.create_table("R", r).unwrap();
    db.create_table("S", s).unwrap();
}

fn run_foj_txn(db: &Database, steps: &[FojStep], commit: bool) {
    let txn = db.begin();
    let mut ok = true;
    for step in steps {
        let res = match step {
            FojStep::InsertR { a, c } => db
                .insert(
                    txn,
                    "R",
                    vec![Value::Int(*a), Value::Int(0), Value::Int(*c)],
                )
                .map(|_| ()),
            FojStep::InsertS { c } => db
                .insert(txn, "S", vec![Value::Int(*c), Value::Int(0)])
                .map(|_| ()),
            FojStep::DeleteR { a } => db.delete(txn, "R", &Key::single(*a)),
            FojStep::DeleteS { c } => db.delete(txn, "S", &Key::single(*c)),
            FojStep::PayloadR { a, tag } => {
                db.update(txn, "R", &Key::single(*a), &[(1, Value::Int(*tag))])
            }
            FojStep::JoinMoveR { a, c } => {
                db.update(txn, "R", &Key::single(*a), &[(2, Value::Int(*c))])
            }
            FojStep::KeyMoveR { a, to } => {
                db.update(txn, "R", &Key::single(*a), &[(0, Value::Int(*to))])
            }
            FojStep::PayloadS { c, tag } => {
                db.update(txn, "S", &Key::single(*c), &[(1, Value::Int(*tag))])
            }
        };
        if res.is_err() {
            ok = false;
            break;
        }
    }
    if ok && commit {
        let _ = db.commit(txn);
    } else {
        let _ = db.abort(txn);
    }
}

type FojHistory = Vec<(Vec<FojStep>, bool)>;

fn foj_history(max_txns: usize) -> impl Strategy<Value = FojHistory> {
    prop::collection::vec(
        (prop::collection::vec(foj_step(), 1..5), any::<bool>()),
        1..max_txns,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn foj_parallel_pipeline_equals_serial(
        pre in foj_history(20),
        post in foj_history(40),
        shards in prop_oneof![Just(0usize), 2..6usize],
        min_seg in prop_oneof![Just(1usize), Just(8), Just(128)],
    ) {
        // `0` routes to the CI-pinned width so the certified
        // configuration keeps appearing among the randomized ones.
        let shards = if shards == 0 { apply_shards() } else { shards };
        let par = Arc::new(Database::new());
        let ser = Arc::new(Database::new());
        foj_sources(&par);
        foj_sources(&ser);
        for (steps, commit) in &pre {
            run_foj_txn(&par, steps, *commit);
            run_foj_txn(&ser, steps, *commit);
        }

        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let mut mp = FojMapping::prepare(&par, &spec).unwrap();
        let mut ms = FojMapping::prepare(&ser, &spec).unwrap();
        let (_, start_p, _) = par.write_fuzzy_mark();
        let (_, start_s, _) = ser.write_fuzzy_mark();
        prop_assert_eq!(start_p, start_s);
        let wp = TransformOperator::populate_parallel(&mut mp, &par, 4, copy_workers(), 1.0)
            .unwrap();
        let ws = ms.populate(4).unwrap();
        prop_assert_eq!(wp, ws);

        for (steps, commit) in &post {
            run_foj_txn(&par, steps, *commit);
            run_foj_txn(&ser, steps, *commit);
        }

        // Lane width and epoch threshold are fuzzed alongside the
        // history: a width the classifier never saw, or a threshold
        // that turns every two-record run into a real pool epoch, must
        // not change a single row.
        let mut pp = Propagator::new(&par, start_p, 1.0)
            .with_parallel(
                ParallelConfig::new(copy_workers(), shards).with_min_apply_segment(min_seg).exact(),
            );
        pp.drain_all(&par, &mut mp).unwrap();
        let mut ps = Propagator::new(&ser, start_s, 1.0);
        ps.drain_all(&ser, &mut ms).unwrap();

        prop_assert_eq!(rows_of(&par, "T"), rows_of(&ser, "T"));
        if let Err(e) = foj::verify_against_reference(&mp) {
            return Err(TestCaseError::fail(format!("parallel diverged: {e}")));
        }
        if let Err(e) = foj::verify_against_reference(&ms) {
            return Err(TestCaseError::fail(format!("serial diverged: {e}")));
        }
    }
}

// --- split -----------------------------------------------------------------

#[derive(Clone, Debug)]
enum SplitStep {
    Insert {
        a: i64,
        c: i64,
    },
    Delete {
        a: i64,
    },
    /// Split-value move (barrier: rule 11 reads the shared S image).
    Move {
        a: i64,
        c: i64,
    },
    /// Pure R-part payload update (lane-classified).
    Payload {
        a: i64,
        tag: i64,
    },
    KeyMove {
        a: i64,
        to: i64,
    },
    /// Dependent-column refresh keeping the FD (exercises the deferred
    /// `DepUpdate` effect in the sharded apply's S phase).
    DepRefresh {
        a: i64,
    },
}

fn split_step() -> impl Strategy<Value = SplitStep> {
    prop_oneof![
        (0..24i64, 0..6i64).prop_map(|(a, c)| SplitStep::Insert { a, c }),
        (0..24i64, 0..6i64).prop_map(|(a, c)| SplitStep::Insert { a, c }),
        (0..24i64).prop_map(|a| SplitStep::Delete { a }),
        (0..24i64, 0..6i64).prop_map(|(a, c)| SplitStep::Move { a, c }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| SplitStep::Payload { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| SplitStep::Payload { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| SplitStep::Payload { a, tag }),
        (0..24i64, 0..24i64).prop_map(|(a, to)| SplitStep::KeyMove { a, to }),
        (0..24i64).prop_map(|a| SplitStep::DepRefresh { a }),
        (0..24i64).prop_map(|a| SplitStep::DepRefresh { a }),
    ]
}

fn split_source(db: &Database) {
    let t = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Int)
        .nullable("c", ColumnType::Int)
        .nullable("d", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    db.create_table("T", t).unwrap();
}

fn dep(c: i64) -> Value {
    Value::Int(c * 100)
}

fn run_split_txn(db: &Database, steps: &[SplitStep], commit: bool) {
    let txn = db.begin();
    let mut ok = true;
    for step in steps {
        let res = match step {
            SplitStep::Insert { a, c } => db
                .insert(
                    txn,
                    "T",
                    vec![Value::Int(*a), Value::Int(0), Value::Int(*c), dep(*c)],
                )
                .map(|_| ()),
            SplitStep::Delete { a } => db.delete(txn, "T", &Key::single(*a)),
            SplitStep::Move { a, c } => db.update(
                txn,
                "T",
                &Key::single(*a),
                &[(2, Value::Int(*c)), (3, dep(*c))],
            ),
            SplitStep::Payload { a, tag } => {
                db.update(txn, "T", &Key::single(*a), &[(1, Value::Int(*tag))])
            }
            SplitStep::KeyMove { a, to } => {
                db.update(txn, "T", &Key::single(*a), &[(0, Value::Int(*to))])
            }
            SplitStep::DepRefresh { a } => {
                // Re-assert the dependent value of the row's current
                // split value: a d-only update that preserves c → d.
                let Some(row) = db
                    .catalog()
                    .get("T")
                    .ok()
                    .and_then(|t| t.get(&Key::single(*a)))
                else {
                    continue;
                };
                let Value::Int(c) = row.values[2] else {
                    continue;
                };
                db.update(txn, "T", &Key::single(*a), &[(3, dep(c))])
            }
        };
        if res.is_err() {
            ok = false;
            break;
        }
    }
    if ok && commit {
        let _ = db.commit(txn);
    } else {
        let _ = db.abort(txn);
    }
}

type SplitHistory = Vec<(Vec<SplitStep>, bool)>;

fn split_history(max_txns: usize) -> impl Strategy<Value = SplitHistory> {
    prop::collection::vec(
        (prop::collection::vec(split_step(), 1..5), any::<bool>()),
        1..max_txns,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn split_parallel_pipeline_equals_serial(
        pre in split_history(20),
        post in split_history(40),
        shards in prop_oneof![Just(0usize), 2..6usize],
        min_seg in prop_oneof![Just(1usize), Just(8), Just(128)],
    ) {
        let shards = if shards == 0 { apply_shards() } else { shards };
        let par = Arc::new(Database::new());
        let ser = Arc::new(Database::new());
        split_source(&par);
        split_source(&ser);
        for (steps, commit) in &pre {
            run_split_txn(&par, steps, *commit);
            run_split_txn(&ser, steps, *commit);
        }

        let spec = SplitSpec::new("T", "R_t", "S_t", &["a", "b", "c"], "c", &["d"]);
        let mut mp = SplitMapping::prepare(&par, &spec).unwrap();
        let mut ms = SplitMapping::prepare(&ser, &spec).unwrap();
        let (_, start_p, _) = par.write_fuzzy_mark();
        let (_, start_s, _) = ser.write_fuzzy_mark();
        prop_assert_eq!(start_p, start_s);
        let wp = TransformOperator::populate_parallel(&mut mp, &par, 4, copy_workers(), 1.0)
            .unwrap();
        let ws = ms.populate(4).unwrap();
        prop_assert_eq!(wp, ws);

        for (steps, commit) in &post {
            run_split_txn(&par, steps, *commit);
            run_split_txn(&ser, steps, *commit);
        }

        let mut pp = Propagator::new(&par, start_p, 1.0)
            .with_parallel(
                ParallelConfig::new(copy_workers(), shards).with_min_apply_segment(min_seg).exact(),
            );
        pp.drain_all(&par, &mut mp).unwrap();
        let mut ps = Propagator::new(&ser, start_s, 1.0);
        ps.drain_all(&ser, &mut ms).unwrap();

        // R rows' LSNs are state identifiers (§5.2): the parallel
        // lanes must leave the same identifiers the serial pass does.
        prop_assert_eq!(rows_with_lsn(&par, "R_t"), rows_with_lsn(&ser, "R_t"));
        // Shared S-records compare on logical state (values, counter);
        // see batched_equivalence.rs for why the watermark is exempt.
        prop_assert_eq!(rows_of(&par, "S_t"), rows_of(&ser, "S_t"));
        if let Err(e) = split::verify_against_reference(&mp) {
            return Err(TestCaseError::fail(format!("parallel diverged: {e}")));
        }
        if let Err(e) = split::verify_against_reference(&ms) {
            return Err(TestCaseError::fail(format!("serial diverged: {e}")));
        }
    }
}

// --- union -----------------------------------------------------------------

#[derive(Clone, Debug)]
enum UnionStep {
    InsertA {
        id: i64,
        v: i64,
    },
    InsertB {
        id: i64,
        v: i64,
    },
    DeleteA {
        id: i64,
    },
    DeleteB {
        id: i64,
    },
    /// Non-pk update — lane-classified in the union's sharded apply.
    PayloadA {
        id: i64,
        tag: i64,
    },
    PayloadB {
        id: i64,
        tag: i64,
    },
    /// Source pk move — two subjects, possibly two lanes: a barrier.
    KeyMoveA {
        id: i64,
        to: i64,
    },
    KeyMoveB {
        id: i64,
        to: i64,
    },
}

fn union_step() -> impl Strategy<Value = UnionStep> {
    prop_oneof![
        (0..24i64, 0..1000i64).prop_map(|(id, v)| UnionStep::InsertA { id, v }),
        (0..24i64, 0..1000i64).prop_map(|(id, v)| UnionStep::InsertB { id, v }),
        (0..24i64).prop_map(|id| UnionStep::DeleteA { id }),
        (0..24i64).prop_map(|id| UnionStep::DeleteB { id }),
        (0..24i64, 0..1000i64).prop_map(|(id, tag)| UnionStep::PayloadA { id, tag }),
        (0..24i64, 0..1000i64).prop_map(|(id, tag)| UnionStep::PayloadA { id, tag }),
        (0..24i64, 0..1000i64).prop_map(|(id, tag)| UnionStep::PayloadB { id, tag }),
        (0..24i64, 0..1000i64).prop_map(|(id, tag)| UnionStep::PayloadB { id, tag }),
        (0..24i64, 0..24i64).prop_map(|(id, to)| UnionStep::KeyMoveA { id, to }),
        (0..24i64, 0..24i64).prop_map(|(id, to)| UnionStep::KeyMoveB { id, to }),
    ]
}

fn union_sources(db: &Database) {
    let part = Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("v", ColumnType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap();
    db.create_table("A", part.clone()).unwrap();
    db.create_table("B", part).unwrap();
}

fn run_union_txn(db: &Database, steps: &[UnionStep], commit: bool) {
    let txn = db.begin();
    let mut ok = true;
    for step in steps {
        let res = match step {
            UnionStep::InsertA { id, v } => db
                .insert(txn, "A", vec![Value::Int(*id), Value::Int(*v)])
                .map(|_| ()),
            UnionStep::InsertB { id, v } => db
                .insert(txn, "B", vec![Value::Int(*id), Value::Int(*v)])
                .map(|_| ()),
            UnionStep::DeleteA { id } => db.delete(txn, "A", &Key::single(*id)),
            UnionStep::DeleteB { id } => db.delete(txn, "B", &Key::single(*id)),
            UnionStep::PayloadA { id, tag } => {
                db.update(txn, "A", &Key::single(*id), &[(1, Value::Int(*tag))])
            }
            UnionStep::PayloadB { id, tag } => {
                db.update(txn, "B", &Key::single(*id), &[(1, Value::Int(*tag))])
            }
            UnionStep::KeyMoveA { id, to } => {
                db.update(txn, "A", &Key::single(*id), &[(0, Value::Int(*to))])
            }
            UnionStep::KeyMoveB { id, to } => {
                db.update(txn, "B", &Key::single(*id), &[(0, Value::Int(*to))])
            }
        };
        if res.is_err() {
            ok = false;
            break;
        }
    }
    if ok && commit {
        let _ = db.commit(txn);
    } else {
        let _ = db.abort(txn);
    }
}

type UnionHistory = Vec<(Vec<UnionStep>, bool)>;

fn union_history(max_txns: usize) -> impl Strategy<Value = UnionHistory> {
    prop::collection::vec(
        (prop::collection::vec(union_step(), 1..5), any::<bool>()),
        1..max_txns,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn union_parallel_pipeline_equals_serial(
        pre in union_history(20),
        post in union_history(40),
        shards in prop_oneof![Just(0usize), 2..6usize],
        min_seg in prop_oneof![Just(1usize), Just(8), Just(128)],
    ) {
        let shards = if shards == 0 { apply_shards() } else { shards };
        let par = Arc::new(Database::new());
        let ser = Arc::new(Database::new());
        union_sources(&par);
        union_sources(&ser);
        for (steps, commit) in &pre {
            run_union_txn(&par, steps, *commit);
            run_union_txn(&ser, steps, *commit);
        }

        let spec = UnionSpec::new("A", "B", "U");
        let mut mp = UnionMapping::prepare(&par, &spec).unwrap();
        let mut ms = UnionMapping::prepare(&ser, &spec).unwrap();
        let (_, start_p, _) = par.write_fuzzy_mark();
        let (_, start_s, _) = ser.write_fuzzy_mark();
        prop_assert_eq!(start_p, start_s);
        let wp = TransformOperator::populate_parallel(&mut mp, &par, 4, copy_workers(), 1.0)
            .unwrap();
        let ws = ms.populate(4).unwrap();
        prop_assert_eq!(wp, ws);

        for (steps, commit) in &post {
            run_union_txn(&par, steps, *commit);
            run_union_txn(&ser, steps, *commit);
        }

        let mut pp = Propagator::new(&par, start_p, 1.0)
            .with_parallel(
                ParallelConfig::new(copy_workers(), shards).with_min_apply_segment(min_seg).exact(),
            );
        pp.drain_all(&par, &mut mp).unwrap();
        let mut ps = Propagator::new(&ser, start_s, 1.0);
        ps.drain_all(&ser, &mut ms).unwrap();

        // Union rules mirror the source record's LSN onto the target
        // row, so the identifiers are part of the contract too.
        prop_assert_eq!(rows_with_lsn(&par, "U"), rows_with_lsn(&ser, "U"));
        if let Err(e) = union::verify_against_reference(&mp) {
            return Err(TestCaseError::fail(format!("parallel diverged: {e}")));
        }
        if let Err(e) = union::verify_against_reference(&ms) {
            return Err(TestCaseError::fail(format!("serial diverged: {e}")));
        }
    }
}

// --- deterministic lane stress --------------------------------------------
//
// The proptest histories are small, so most of their parallel segments
// fall under the flatten-and-serialize threshold. These tests build
// update bursts long enough that the sharded apply genuinely runs
// concurrent lanes against ONE target table, with only two shard
// classes so every lane sees heavy traffic.

/// Seed `n` R rows (and the S partners) and return prepared mappings
/// on two identically-loaded databases.
fn foj_burst_db(n: i64) -> Arc<Database> {
    let db = Arc::new(Database::new());
    foj_sources(&db);
    let txn = db.begin();
    for c in 0..6i64 {
        db.insert(txn, "S", vec![Value::Int(c), Value::Int(0)])
            .unwrap();
    }
    for a in 0..n {
        db.insert(
            txn,
            "R",
            vec![Value::Int(a), Value::Int(0), Value::Int(a % 6)],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    db
}

#[test]
fn foj_two_lane_burst_on_one_table_equals_serial() {
    const ROWS: i64 = 400;
    let par = foj_burst_db(ROWS);
    let ser = foj_burst_db(ROWS);

    let spec = FojSpec::new("R", "S", "T", "c", "c");
    let mut mp = FojMapping::prepare(&par, &spec).unwrap();
    let mut ms = FojMapping::prepare(&ser, &spec).unwrap();
    let (_, start_p, _) = par.write_fuzzy_mark();
    let (_, start_s, _) = ser.write_fuzzy_mark();
    TransformOperator::populate_parallel(&mut mp, &par, 64, copy_workers(), 1.0).unwrap();
    ms.populate(64).unwrap();

    // Burst: five update rounds over every row — thousands of
    // consecutive lane-classified records with no barrier between
    // them, all landing in table T through two masked lanes.
    for round in 0..5i64 {
        for a in 0..ROWS {
            let txn = par.begin();
            par.update(
                txn,
                "R",
                &Key::single(a),
                &[(1, Value::Int(round * ROWS + a))],
            )
            .unwrap();
            par.commit(txn).unwrap();
            let txn = ser.begin();
            ser.update(
                txn,
                "R",
                &Key::single(a),
                &[(1, Value::Int(round * ROWS + a))],
            )
            .unwrap();
            ser.commit(txn).unwrap();
        }
    }

    let mut pp =
        Propagator::new(&par, start_p, 1.0).with_parallel(ParallelConfig::new(1, 2).exact());
    pp.drain_all(&par, &mut mp).unwrap();
    let mut ps = Propagator::new(&ser, start_s, 1.0);
    ps.drain_all(&ser, &mut ms).unwrap();

    assert_eq!(rows_of(&par, "T"), rows_of(&ser, "T"));
    foj::verify_against_reference(&mp).expect("parallel diverged from reference");
    foj::verify_against_reference(&ms).expect("serial diverged from reference");
}

fn split_burst_db(n: i64) -> Arc<Database> {
    let db = Arc::new(Database::new());
    split_source(&db);
    let txn = db.begin();
    for a in 0..n {
        let c = a % 6;
        db.insert(
            txn,
            "T",
            vec![Value::Int(a), Value::Int(0), Value::Int(c), dep(c)],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    db
}

#[test]
fn split_two_lane_burst_on_one_table_equals_serial() {
    const ROWS: i64 = 400;
    let par = split_burst_db(ROWS);
    let ser = split_burst_db(ROWS);

    let spec = SplitSpec::new("T", "R_t", "S_t", &["a", "b", "c"], "c", &["d"]);
    let mut mp = SplitMapping::prepare(&par, &spec).unwrap();
    let mut ms = SplitMapping::prepare(&ser, &spec).unwrap();
    let (_, start_p, _) = par.write_fuzzy_mark();
    let (_, start_s, _) = ser.write_fuzzy_mark();
    TransformOperator::populate_parallel(&mut mp, &par, 64, copy_workers(), 1.0).unwrap();
    ms.populate(64).unwrap();

    // Burst of lane-classified records across both phases: payload
    // updates (R only), FD-preserving dependent refreshes (deferred
    // DepUpdate effects on shared S rows), and per-round delete +
    // reinsert of a sixth of the rows (deferred Release/Absorb
    // effects). Full coalescing keeps at most one update per key and
    // run, so the round-robin over 400 keys leaves runs well past the
    // flatten threshold.
    for round in 0..5i64 {
        for a in 0..ROWS {
            for db in [&par, &ser] {
                let txn = db.begin();
                if a % 6 == round % 6 {
                    db.delete(txn, "T", &Key::single(a)).unwrap();
                    let c = (a + round) % 6;
                    db.insert(
                        txn,
                        "T",
                        vec![Value::Int(a), Value::Int(0), Value::Int(c), dep(c)],
                    )
                    .unwrap();
                } else {
                    db.update(
                        txn,
                        "T",
                        &Key::single(a),
                        &[
                            (1, Value::Int(round * ROWS + a)),
                            (3, dep((a + 5 * round) % 6)),
                        ],
                    )
                    .unwrap();
                }
                db.commit(txn).unwrap();
            }
        }
    }

    let mut pp =
        Propagator::new(&par, start_p, 1.0).with_parallel(ParallelConfig::new(1, 2).exact());
    pp.drain_all(&par, &mut mp).unwrap();
    let mut ps = Propagator::new(&ser, start_s, 1.0);
    ps.drain_all(&ser, &mut ms).unwrap();

    assert_eq!(rows_with_lsn(&par, "R_t"), rows_with_lsn(&ser, "R_t"));
    assert_eq!(rows_of(&par, "S_t"), rows_of(&ser, "S_t"));
}

// --- persistent pool: skew, mid-stream barriers, seeded replay -------------
//
// The bursts above exercise wide uninterrupted runs. These three tests
// target the pool machinery itself: lanes of very different lengths
// (the caller must steal or idle, never misapply), barriers punched
// into the middle of the stream (every lane must retire at the epoch
// fence before the barrier record runs), and the seeded placement
// rotation (`MORPH_POOL_SEED` is the env-var spelling of the same knob
// for pools the propagator builds internally; tests use
// `ApplyPool::with_seed` directly so parallel test binaries never race
// on the process environment).

/// Steal-heavy skew: alternate full-range update rounds (long, evenly
/// split epochs) with tiny hot-set rounds whose segments — forced into
/// real epochs by `min_apply_segment = 1` — leave most lanes empty
/// while the caller fence-waits. Equivalence must survive whatever
/// stealing the timing produces, and the pool must have genuinely run
/// (handed-off epochs, not inline fallbacks only).
#[test]
fn foj_steal_heavy_skew_under_pool_equals_serial() {
    const ROWS: i64 = 300;
    let par = foj_burst_db(ROWS);
    let ser = foj_burst_db(ROWS);

    let spec = FojSpec::new("R", "S", "T", "c", "c");
    let mut mp = FojMapping::prepare(&par, &spec).unwrap();
    let mut ms = FojMapping::prepare(&ser, &spec).unwrap();
    let (_, start_p, _) = par.write_fuzzy_mark();
    let (_, start_s, _) = ser.write_fuzzy_mark();
    TransformOperator::populate_parallel(&mut mp, &par, 64, copy_workers(), 1.0).unwrap();
    ms.populate(64).unwrap();

    for round in 0..6i64 {
        // Even rounds touch every row; odd rounds only a 16-key hot
        // set. Coalescing keeps one record per key and run, so the odd
        // rounds produce short, skewed epochs.
        let keys: Vec<i64> = if round % 2 == 0 {
            (0..ROWS).collect()
        } else {
            (0..16).map(|k| (k * 7) % ROWS).collect()
        };
        for &a in &keys {
            for db in [&par, &ser] {
                let txn = db.begin();
                db.update(
                    txn,
                    "R",
                    &Key::single(a),
                    &[(1, Value::Int(round * ROWS + a))],
                )
                .unwrap();
                db.commit(txn).unwrap();
            }
        }
    }

    let mut pp = Propagator::new(&par, start_p, 1.0)
        .with_parallel(ParallelConfig::new(1, 4).with_min_apply_segment(1).exact())
        .with_pool(Arc::new(ApplyPool::new(4)));
    pp.drain_all(&par, &mut mp).unwrap();
    let stats = pp.pool_stats().expect("pool installed");
    assert!(stats.epochs > 0, "no epochs ran: {stats:?}");
    assert!(stats.handoffs > 0, "no lane hand-offs: {stats:?}");
    pp.shutdown_pool().unwrap();

    let mut ps = Propagator::new(&ser, start_s, 1.0);
    ps.drain_all(&ser, &mut ms).unwrap();

    assert_eq!(rows_of(&par, "T"), rows_of(&ser, "T"));
    foj::verify_against_reference(&mp).expect("parallel diverged from reference");
    foj::verify_against_reference(&ms).expect("serial diverged from reference");
}

/// Mid-stream barriers: every tenth key does a there-and-back primary
/// key move (two barrier records) inside an otherwise lane-classified
/// payload stream. Each barrier forces the preceding short run through
/// an epoch fence; a lane applying past the fence would see the old
/// key image and diverge.
#[test]
fn split_mid_stream_barriers_under_pool_equals_serial() {
    const ROWS: i64 = 300;
    let par = split_burst_db(ROWS);
    let ser = split_burst_db(ROWS);

    let spec = SplitSpec::new("T", "R_t", "S_t", &["a", "b", "c"], "c", &["d"]);
    let mut mp = SplitMapping::prepare(&par, &spec).unwrap();
    let mut ms = SplitMapping::prepare(&ser, &spec).unwrap();
    let (_, start_p, _) = par.write_fuzzy_mark();
    let (_, start_s, _) = ser.write_fuzzy_mark();
    TransformOperator::populate_parallel(&mut mp, &par, 64, copy_workers(), 1.0).unwrap();
    ms.populate(64).unwrap();

    for round in 0..4i64 {
        for a in 0..ROWS {
            for db in [&par, &ser] {
                let txn = db.begin();
                if a % 10 == round % 10 {
                    // Key hop out and back: two pk-move barriers whose
                    // net effect is a no-op on the key space but whose
                    // records split the run mid-stream.
                    db.update(txn, "T", &Key::single(a), &[(0, Value::Int(a + 1000))])
                        .unwrap();
                    db.update(txn, "T", &Key::single(a + 1000), &[(0, Value::Int(a))])
                        .unwrap();
                } else {
                    db.update(
                        txn,
                        "T",
                        &Key::single(a),
                        &[(1, Value::Int(round * ROWS + a))],
                    )
                    .unwrap();
                }
                db.commit(txn).unwrap();
            }
        }
    }

    let mut pp = Propagator::new(&par, start_p, 1.0)
        .with_parallel(ParallelConfig::new(1, 4).with_min_apply_segment(1).exact())
        .with_pool(Arc::new(ApplyPool::new(4)));
    pp.drain_all(&par, &mut mp).unwrap();
    let stats = pp.pool_stats().expect("pool installed");
    assert!(stats.epochs > 0, "no epochs ran: {stats:?}");
    pp.shutdown_pool().unwrap();

    let mut ps = Propagator::new(&ser, start_s, 1.0);
    ps.drain_all(&ser, &mut ms).unwrap();

    assert_eq!(rows_with_lsn(&par, "R_t"), rows_with_lsn(&ser, "R_t"));
    assert_eq!(rows_of(&par, "S_t"), rows_of(&ser, "S_t"));
    split::verify_against_reference(&mp).expect("parallel diverged from reference");
    split::verify_against_reference(&ms).expect("serial diverged from reference");
}

/// Seeded replay: the pool's placement rotation is a pure function of
/// its seed, so two pools built with `with_seed(width, SEED)` over the
/// same history must retire the same epochs with the same task
/// distribution — that is what makes a failure under a logged
/// `MORPH_POOL_SEED` replayable. Only the handoff/inline *split* may
/// wobble (overflow depends on how fast workers drain their deques);
/// the sum is the deterministic task count. A different seed rotates
/// placement but must not change a row.
#[test]
fn pool_seed_replay_is_deterministic() {
    const ROWS: i64 = 200;
    const SEED: u64 = 0x5EED_CAFE;

    let run = |seed: u64| {
        let db = foj_burst_db(ROWS);
        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let mut m = FojMapping::prepare(&db, &spec).unwrap();
        let (_, start, _) = db.write_fuzzy_mark();
        m.populate(64).unwrap();
        for round in 0..3i64 {
            for a in 0..ROWS {
                let txn = db.begin();
                db.update(
                    txn,
                    "R",
                    &Key::single(a),
                    &[(1, Value::Int(round * ROWS + a))],
                )
                .unwrap();
                db.commit(txn).unwrap();
            }
        }
        let mut p = Propagator::new(&db, start, 1.0)
            .with_parallel(ParallelConfig::new(1, 4).with_min_apply_segment(1).exact())
            .with_pool(Arc::new(ApplyPool::with_seed(4, seed)));
        p.drain_all(&db, &mut m).unwrap();
        let stats = p.pool_stats().expect("pool installed");
        p.shutdown_pool().unwrap();
        (rows_of(&db, "T"), stats)
    };

    let (rows_a, stats_a) = run(SEED);
    let (rows_b, stats_b) = run(SEED);
    assert_eq!(rows_a, rows_b, "same seed, different target tables");
    assert_eq!(
        stats_a.epochs, stats_b.epochs,
        "same seed, different epoch count: {stats_a:?} vs {stats_b:?}"
    );
    assert_eq!(
        stats_a.handoffs + stats_a.inline_runs,
        stats_b.handoffs + stats_b.inline_runs,
        "same seed, different task count: {stats_a:?} vs {stats_b:?}"
    );

    let (rows_c, stats_c) = run(SEED ^ 0xFFFF);
    assert_eq!(rows_a, rows_c, "placement seed leaked into row state");
    assert_eq!(stats_a.epochs, stats_c.epochs);
}
