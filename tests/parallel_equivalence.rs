//! Property: the parallel transformation pipeline — partitioned
//! parallel fuzzy copy plus subject-sharded batch apply — is
//! observationally equivalent to the serial pipeline.
//!
//! Two databases replay byte-identical histories. One transforms with
//! `ParallelConfig { copy_workers: N, apply_shards: M }`, the other
//! with the serial `1/1` configuration, and the target tables must
//! come out row-for-row identical (and both must match the reference
//! oracle). Any divergence is the parallel path's fault: an unsound
//! lane classification (a record whose probe set escapes its subject
//! shard), a lost barrier, an out-of-order shared-S effect, or a
//! population merge that picked the wrong canonical S image.
//!
//! The worker/shard counts honour `MORPH_PAR_COPY_WORKERS` and
//! `MORPH_PAR_APPLY_SHARDS` (default 4) so CI can pin the
//! configuration it wants to certify.

use morphdb::core::foj::{self, FojMapping};
use morphdb::core::propagate::Propagator;
use morphdb::core::split::{self, SplitMapping};
use morphdb::core::{FojSpec, ParallelConfig, SplitSpec, TransformOperator};
use morphdb::{ColumnType, Database, Key, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn copy_workers() -> usize {
    env_usize("MORPH_PAR_COPY_WORKERS", 4)
}

fn apply_shards() -> usize {
    env_usize("MORPH_PAR_APPLY_SHARDS", 4)
}

/// Rows of a target table as comparable tuples (key, values, counter,
/// presence); row LSNs are compared separately where they are
/// semantic (split R side).
fn rows_of(db: &Database, name: &str) -> Vec<(Key, Vec<Value>, u32, String)> {
    let t = db.catalog().get(name).unwrap();
    let mut rows: Vec<_> = t
        .snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values, r.counter, format!("{:?}", r.presence)))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

fn rows_with_lsn(db: &Database, name: &str) -> Vec<(Key, Vec<Value>, u32, morphdb::Lsn)> {
    let t = db.catalog().get(name).unwrap();
    let mut rows: Vec<_> = t
        .snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values, r.counter, r.lsn))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

// --- FOJ -------------------------------------------------------------------

#[derive(Clone, Debug)]
enum FojStep {
    InsertR {
        a: i64,
        c: i64,
    },
    InsertS {
        c: i64,
    },
    DeleteR {
        a: i64,
    },
    DeleteS {
        c: i64,
    },
    /// Payload update on R — the only record class the FOJ sharded
    /// apply runs in parallel lanes; everything else is a barrier.
    PayloadR {
        a: i64,
        tag: i64,
    },
    JoinMoveR {
        a: i64,
        c: i64,
    },
    KeyMoveR {
        a: i64,
        to: i64,
    },
    PayloadS {
        c: i64,
        tag: i64,
    },
}

fn foj_step() -> impl Strategy<Value = FojStep> {
    // Update-heavy mix (payload updates are the parallelizable class,
    // so repeating that arm grows the parallel segments).
    prop_oneof![
        (0..24i64, 0..6i64).prop_map(|(a, c)| FojStep::InsertR { a, c }),
        (0..6i64).prop_map(|c| FojStep::InsertS { c }),
        (0..24i64).prop_map(|a| FojStep::DeleteR { a }),
        (0..6i64).prop_map(|c| FojStep::DeleteS { c }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| FojStep::PayloadR { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| FojStep::PayloadR { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| FojStep::PayloadR { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| FojStep::PayloadR { a, tag }),
        (0..24i64, 0..6i64).prop_map(|(a, c)| FojStep::JoinMoveR { a, c }),
        (0..24i64, 0..24i64).prop_map(|(a, to)| FojStep::KeyMoveR { a, to }),
        (0..6i64, 0..1000i64).prop_map(|(c, tag)| FojStep::PayloadS { c, tag }),
    ]
}

fn foj_sources(db: &Database) {
    let r = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Int)
        .nullable("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    let s = Schema::builder()
        .column("c", ColumnType::Int)
        .nullable("d", ColumnType::Int)
        .primary_key(&["c"])
        .build()
        .unwrap();
    db.create_table("R", r).unwrap();
    db.create_table("S", s).unwrap();
}

fn run_foj_txn(db: &Database, steps: &[FojStep], commit: bool) {
    let txn = db.begin();
    let mut ok = true;
    for step in steps {
        let res = match step {
            FojStep::InsertR { a, c } => db
                .insert(
                    txn,
                    "R",
                    vec![Value::Int(*a), Value::Int(0), Value::Int(*c)],
                )
                .map(|_| ()),
            FojStep::InsertS { c } => db
                .insert(txn, "S", vec![Value::Int(*c), Value::Int(0)])
                .map(|_| ()),
            FojStep::DeleteR { a } => db.delete(txn, "R", &Key::single(*a)),
            FojStep::DeleteS { c } => db.delete(txn, "S", &Key::single(*c)),
            FojStep::PayloadR { a, tag } => {
                db.update(txn, "R", &Key::single(*a), &[(1, Value::Int(*tag))])
            }
            FojStep::JoinMoveR { a, c } => {
                db.update(txn, "R", &Key::single(*a), &[(2, Value::Int(*c))])
            }
            FojStep::KeyMoveR { a, to } => {
                db.update(txn, "R", &Key::single(*a), &[(0, Value::Int(*to))])
            }
            FojStep::PayloadS { c, tag } => {
                db.update(txn, "S", &Key::single(*c), &[(1, Value::Int(*tag))])
            }
        };
        if res.is_err() {
            ok = false;
            break;
        }
    }
    if ok && commit {
        let _ = db.commit(txn);
    } else {
        let _ = db.abort(txn);
    }
}

type FojHistory = Vec<(Vec<FojStep>, bool)>;

fn foj_history(max_txns: usize) -> impl Strategy<Value = FojHistory> {
    prop::collection::vec(
        (prop::collection::vec(foj_step(), 1..5), any::<bool>()),
        1..max_txns,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn foj_parallel_pipeline_equals_serial(
        pre in foj_history(20),
        post in foj_history(40),
    ) {
        let par = Arc::new(Database::new());
        let ser = Arc::new(Database::new());
        foj_sources(&par);
        foj_sources(&ser);
        for (steps, commit) in &pre {
            run_foj_txn(&par, steps, *commit);
            run_foj_txn(&ser, steps, *commit);
        }

        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let mut mp = FojMapping::prepare(&par, &spec).unwrap();
        let mut ms = FojMapping::prepare(&ser, &spec).unwrap();
        let (_, start_p, _) = par.write_fuzzy_mark();
        let (_, start_s, _) = ser.write_fuzzy_mark();
        prop_assert_eq!(start_p, start_s);
        let wp = TransformOperator::populate_parallel(&mut mp, &par, 4, copy_workers(), 1.0)
            .unwrap();
        let ws = ms.populate(4).unwrap();
        prop_assert_eq!(wp, ws);

        for (steps, commit) in &post {
            run_foj_txn(&par, steps, *commit);
            run_foj_txn(&ser, steps, *commit);
        }

        let mut pp = Propagator::new(&par, start_p, 1.0)
            .with_parallel(ParallelConfig::new(copy_workers(), apply_shards()));
        pp.drain_all(&par, &mut mp).unwrap();
        let mut ps = Propagator::new(&ser, start_s, 1.0);
        ps.drain_all(&ser, &mut ms).unwrap();

        prop_assert_eq!(rows_of(&par, "T"), rows_of(&ser, "T"));
        if let Err(e) = foj::verify_against_reference(&mp) {
            return Err(TestCaseError::fail(format!("parallel diverged: {e}")));
        }
        if let Err(e) = foj::verify_against_reference(&ms) {
            return Err(TestCaseError::fail(format!("serial diverged: {e}")));
        }
    }
}

// --- split -----------------------------------------------------------------

#[derive(Clone, Debug)]
enum SplitStep {
    Insert {
        a: i64,
        c: i64,
    },
    Delete {
        a: i64,
    },
    /// Split-value move (barrier: rule 11 reads the shared S image).
    Move {
        a: i64,
        c: i64,
    },
    /// Pure R-part payload update (lane-classified).
    Payload {
        a: i64,
        tag: i64,
    },
    KeyMove {
        a: i64,
        to: i64,
    },
    /// Dependent-column refresh keeping the FD (exercises the deferred
    /// `DepUpdate` effect in the sharded apply's S phase).
    DepRefresh {
        a: i64,
    },
}

fn split_step() -> impl Strategy<Value = SplitStep> {
    prop_oneof![
        (0..24i64, 0..6i64).prop_map(|(a, c)| SplitStep::Insert { a, c }),
        (0..24i64, 0..6i64).prop_map(|(a, c)| SplitStep::Insert { a, c }),
        (0..24i64).prop_map(|a| SplitStep::Delete { a }),
        (0..24i64, 0..6i64).prop_map(|(a, c)| SplitStep::Move { a, c }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| SplitStep::Payload { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| SplitStep::Payload { a, tag }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| SplitStep::Payload { a, tag }),
        (0..24i64, 0..24i64).prop_map(|(a, to)| SplitStep::KeyMove { a, to }),
        (0..24i64).prop_map(|a| SplitStep::DepRefresh { a }),
        (0..24i64).prop_map(|a| SplitStep::DepRefresh { a }),
    ]
}

fn split_source(db: &Database) {
    let t = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Int)
        .nullable("c", ColumnType::Int)
        .nullable("d", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    db.create_table("T", t).unwrap();
}

fn dep(c: i64) -> Value {
    Value::Int(c * 100)
}

fn run_split_txn(db: &Database, steps: &[SplitStep], commit: bool) {
    let txn = db.begin();
    let mut ok = true;
    for step in steps {
        let res = match step {
            SplitStep::Insert { a, c } => db
                .insert(
                    txn,
                    "T",
                    vec![Value::Int(*a), Value::Int(0), Value::Int(*c), dep(*c)],
                )
                .map(|_| ()),
            SplitStep::Delete { a } => db.delete(txn, "T", &Key::single(*a)),
            SplitStep::Move { a, c } => db.update(
                txn,
                "T",
                &Key::single(*a),
                &[(2, Value::Int(*c)), (3, dep(*c))],
            ),
            SplitStep::Payload { a, tag } => {
                db.update(txn, "T", &Key::single(*a), &[(1, Value::Int(*tag))])
            }
            SplitStep::KeyMove { a, to } => {
                db.update(txn, "T", &Key::single(*a), &[(0, Value::Int(*to))])
            }
            SplitStep::DepRefresh { a } => {
                // Re-assert the dependent value of the row's current
                // split value: a d-only update that preserves c → d.
                let Some(row) = db
                    .catalog()
                    .get("T")
                    .ok()
                    .and_then(|t| t.get(&Key::single(*a)))
                else {
                    continue;
                };
                let Value::Int(c) = row.values[2] else {
                    continue;
                };
                db.update(txn, "T", &Key::single(*a), &[(3, dep(c))])
            }
        };
        if res.is_err() {
            ok = false;
            break;
        }
    }
    if ok && commit {
        let _ = db.commit(txn);
    } else {
        let _ = db.abort(txn);
    }
}

type SplitHistory = Vec<(Vec<SplitStep>, bool)>;

fn split_history(max_txns: usize) -> impl Strategy<Value = SplitHistory> {
    prop::collection::vec(
        (prop::collection::vec(split_step(), 1..5), any::<bool>()),
        1..max_txns,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn split_parallel_pipeline_equals_serial(
        pre in split_history(20),
        post in split_history(40),
    ) {
        let par = Arc::new(Database::new());
        let ser = Arc::new(Database::new());
        split_source(&par);
        split_source(&ser);
        for (steps, commit) in &pre {
            run_split_txn(&par, steps, *commit);
            run_split_txn(&ser, steps, *commit);
        }

        let spec = SplitSpec::new("T", "R_t", "S_t", &["a", "b", "c"], "c", &["d"]);
        let mut mp = SplitMapping::prepare(&par, &spec).unwrap();
        let mut ms = SplitMapping::prepare(&ser, &spec).unwrap();
        let (_, start_p, _) = par.write_fuzzy_mark();
        let (_, start_s, _) = ser.write_fuzzy_mark();
        prop_assert_eq!(start_p, start_s);
        let wp = TransformOperator::populate_parallel(&mut mp, &par, 4, copy_workers(), 1.0)
            .unwrap();
        let ws = ms.populate(4).unwrap();
        prop_assert_eq!(wp, ws);

        for (steps, commit) in &post {
            run_split_txn(&par, steps, *commit);
            run_split_txn(&ser, steps, *commit);
        }

        let mut pp = Propagator::new(&par, start_p, 1.0)
            .with_parallel(ParallelConfig::new(copy_workers(), apply_shards()));
        pp.drain_all(&par, &mut mp).unwrap();
        let mut ps = Propagator::new(&ser, start_s, 1.0);
        ps.drain_all(&ser, &mut ms).unwrap();

        // R rows' LSNs are state identifiers (§5.2): the parallel
        // lanes must leave the same identifiers the serial pass does.
        prop_assert_eq!(rows_with_lsn(&par, "R_t"), rows_with_lsn(&ser, "R_t"));
        // Shared S-records compare on logical state (values, counter);
        // see batched_equivalence.rs for why the watermark is exempt.
        prop_assert_eq!(rows_of(&par, "S_t"), rows_of(&ser, "S_t"));
        if let Err(e) = split::verify_against_reference(&mp) {
            return Err(TestCaseError::fail(format!("parallel diverged: {e}")));
        }
        if let Err(e) = split::verify_against_reference(&ms) {
            return Err(TestCaseError::fail(format!("serial diverged: {e}")));
        }
    }
}

// --- deterministic lane stress --------------------------------------------
//
// The proptest histories are small, so most of their parallel segments
// fall under the flatten-and-serialize threshold. These tests build
// update bursts long enough that the sharded apply genuinely runs
// concurrent lanes against ONE target table, with only two shard
// classes so every lane sees heavy traffic.

/// Seed `n` R rows (and the S partners) and return prepared mappings
/// on two identically-loaded databases.
fn foj_burst_db(n: i64) -> Arc<Database> {
    let db = Arc::new(Database::new());
    foj_sources(&db);
    let txn = db.begin();
    for c in 0..6i64 {
        db.insert(txn, "S", vec![Value::Int(c), Value::Int(0)])
            .unwrap();
    }
    for a in 0..n {
        db.insert(
            txn,
            "R",
            vec![Value::Int(a), Value::Int(0), Value::Int(a % 6)],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    db
}

#[test]
fn foj_two_lane_burst_on_one_table_equals_serial() {
    const ROWS: i64 = 400;
    let par = foj_burst_db(ROWS);
    let ser = foj_burst_db(ROWS);

    let spec = FojSpec::new("R", "S", "T", "c", "c");
    let mut mp = FojMapping::prepare(&par, &spec).unwrap();
    let mut ms = FojMapping::prepare(&ser, &spec).unwrap();
    let (_, start_p, _) = par.write_fuzzy_mark();
    let (_, start_s, _) = ser.write_fuzzy_mark();
    TransformOperator::populate_parallel(&mut mp, &par, 64, copy_workers(), 1.0).unwrap();
    ms.populate(64).unwrap();

    // Burst: five update rounds over every row — thousands of
    // consecutive lane-classified records with no barrier between
    // them, all landing in table T through two masked lanes.
    for round in 0..5i64 {
        for a in 0..ROWS {
            let txn = par.begin();
            par.update(
                txn,
                "R",
                &Key::single(a),
                &[(1, Value::Int(round * ROWS + a))],
            )
            .unwrap();
            par.commit(txn).unwrap();
            let txn = ser.begin();
            ser.update(
                txn,
                "R",
                &Key::single(a),
                &[(1, Value::Int(round * ROWS + a))],
            )
            .unwrap();
            ser.commit(txn).unwrap();
        }
    }

    let mut pp = Propagator::new(&par, start_p, 1.0).with_parallel(ParallelConfig::new(1, 2));
    pp.drain_all(&par, &mut mp).unwrap();
    let mut ps = Propagator::new(&ser, start_s, 1.0);
    ps.drain_all(&ser, &mut ms).unwrap();

    assert_eq!(rows_of(&par, "T"), rows_of(&ser, "T"));
    foj::verify_against_reference(&mp).expect("parallel diverged from reference");
    foj::verify_against_reference(&ms).expect("serial diverged from reference");
}

fn split_burst_db(n: i64) -> Arc<Database> {
    let db = Arc::new(Database::new());
    split_source(&db);
    let txn = db.begin();
    for a in 0..n {
        let c = a % 6;
        db.insert(
            txn,
            "T",
            vec![Value::Int(a), Value::Int(0), Value::Int(c), dep(c)],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
    db
}

#[test]
fn split_two_lane_burst_on_one_table_equals_serial() {
    const ROWS: i64 = 400;
    let par = split_burst_db(ROWS);
    let ser = split_burst_db(ROWS);

    let spec = SplitSpec::new("T", "R_t", "S_t", &["a", "b", "c"], "c", &["d"]);
    let mut mp = SplitMapping::prepare(&par, &spec).unwrap();
    let mut ms = SplitMapping::prepare(&ser, &spec).unwrap();
    let (_, start_p, _) = par.write_fuzzy_mark();
    let (_, start_s, _) = ser.write_fuzzy_mark();
    TransformOperator::populate_parallel(&mut mp, &par, 64, copy_workers(), 1.0).unwrap();
    ms.populate(64).unwrap();

    // Burst of lane-classified records across both phases: payload
    // updates (R only), FD-preserving dependent refreshes (deferred
    // DepUpdate effects on shared S rows), and per-round delete +
    // reinsert of a sixth of the rows (deferred Release/Absorb
    // effects). Full coalescing keeps at most one update per key and
    // run, so the round-robin over 400 keys leaves runs well past the
    // flatten threshold.
    for round in 0..5i64 {
        for a in 0..ROWS {
            for db in [&par, &ser] {
                let txn = db.begin();
                if a % 6 == round % 6 {
                    db.delete(txn, "T", &Key::single(a)).unwrap();
                    let c = (a + round) % 6;
                    db.insert(
                        txn,
                        "T",
                        vec![Value::Int(a), Value::Int(0), Value::Int(c), dep(c)],
                    )
                    .unwrap();
                } else {
                    db.update(
                        txn,
                        "T",
                        &Key::single(a),
                        &[
                            (1, Value::Int(round * ROWS + a)),
                            (3, dep((a + 5 * round) % 6)),
                        ],
                    )
                    .unwrap();
                }
                db.commit(txn).unwrap();
            }
        }
    }

    let mut pp = Propagator::new(&par, start_p, 1.0).with_parallel(ParallelConfig::new(1, 2));
    pp.drain_all(&par, &mut mp).unwrap();
    let mut ps = Propagator::new(&ser, start_s, 1.0);
    ps.drain_all(&ser, &mut ms).unwrap();

    assert_eq!(rows_with_lsn(&par, "R_t"), rows_with_lsn(&ser, "R_t"));
    assert_eq!(rows_of(&par, "S_t"), rows_of(&ser, "S_t"));
}
