//! Two transformations running simultaneously on disjoint table sets.
//!
//! The paper treats one transformation at a time; the framework,
//! however, has no global state beyond the shared log, so independent
//! transformations (each with its own propagator cursor, rule set and
//! throttle) must be able to proceed concurrently — each one simply
//! sees the other's target-table writes as irrelevant log records
//! (propagator writes are not logged) and the other's source records as
//! foreign tables to skip.

use morphdb::core::{FojSpec, ProgressPhase, SplitSpec, TransformOptions, Transformer};
use morphdb::orchestrator::{Migration, Orchestrator};
use morphdb::workload::{spawn_updaters, UpdateTarget};
use morphdb::{ColumnType, Database, DbError, Key, Schema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Schema used by the declarative-migration tests: splittable on `grp`
/// with one dependent column.
fn grouped_schema() -> Schema {
    Schema::builder()
        .column("k", ColumnType::Int)
        .nullable("payload", ColumnType::Str)
        .nullable("grp", ColumnType::Int)
        .nullable("dep", ColumnType::Str)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

fn seed_grouped(db: &Database, table: &str, rows: i64, groups: i64) {
    let txn = db.begin();
    for i in 0..rows {
        let g = i % groups;
        db.insert(
            txn,
            table,
            vec![
                Value::Int(i),
                Value::str("p"),
                Value::Int(g),
                Value::str(format!("dep-{g}")),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
}

#[test]
fn disjoint_foj_and_split_run_concurrently() {
    let db = Arc::new(Database::new());

    // Table family 1: FOJ sources.
    let r = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    let s = Schema::builder()
        .column("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["c"])
        .build()
        .unwrap();
    db.create_table("R", r).unwrap();
    db.create_table("S", s).unwrap();

    // Table family 2: split source.
    let u = Schema::builder()
        .column("k", ColumnType::Int)
        .nullable("payload", ColumnType::Str)
        .nullable("grp", ColumnType::Int)
        .nullable("dep", ColumnType::Str)
        .primary_key(&["k"])
        .build()
        .unwrap();
    db.create_table("U", u).unwrap();

    let txn = db.begin();
    for i in 0..800i64 {
        db.insert(
            txn,
            "R",
            vec![Value::Int(i), Value::str("b"), Value::Int(i % 50)],
        )
        .unwrap();
        let g = i % 30;
        db.insert(
            txn,
            "U",
            vec![
                Value::Int(i),
                Value::str("p"),
                Value::Int(g),
                Value::str(format!("dep-{g}")),
            ],
        )
        .unwrap();
    }
    for j in 0..50i64 {
        db.insert(txn, "S", vec![Value::Int(j), Value::str("d")])
            .unwrap();
    }
    db.commit(txn).unwrap();

    // Concurrent writers on both families.
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for w in 0..2u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut i = w * 10_000;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let txn = db.begin();
                let table = if i % 2 == 0 { "R" } else { "U" };
                let key = Key::single((i % 800) as i64);
                match db.update(txn, table, &key, &[(1, Value::str(format!("w{i}")))]) {
                    Ok(()) => {
                        let _ = db.commit(txn);
                    }
                    Err(_) => {
                        let _ = db.abort(txn);
                    }
                }
                std::thread::sleep(Duration::from_micros(300));
            }
        }));
    }

    let opts = TransformOptions::default()
        .deadline(Duration::from_secs(60))
        .retain_sources();
    let h1 = Transformer::spawn_foj(
        Arc::clone(&db),
        FojSpec::new("R", "S", "T_join", "c", "c"),
        opts.clone(),
    );
    let h2 = Transformer::spawn_split(
        Arc::clone(&db),
        SplitSpec::new(
            "U",
            "U_base",
            "U_groups",
            &["k", "payload", "grp"],
            "grp",
            &["dep"],
        ),
        opts,
    );
    let rep1 = h1.join().expect("FOJ transformation");
    let rep2 = h2.join().expect("split transformation");
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // Both completed with short pauses, and both targets are whole.
    assert!(rep1.sync.latch_pause < Duration::from_millis(500));
    assert!(rep2.sync.latch_pause < Duration::from_millis(500));
    assert_eq!(db.catalog().get("T_join").unwrap().len(), 800);
    assert_eq!(db.catalog().get("U_base").unwrap().len(), 800);
    assert_eq!(db.catalog().get("U_groups").unwrap().len(), 30);
    let counters: u32 = db
        .catalog()
        .get("U_groups")
        .unwrap()
        .snapshot()
        .iter()
        .map(|(_, row)| row.counter)
        .sum();
    assert_eq!(counters, 800);
}

/// Two *declarative* splits over disjoint table sets run concurrently
/// under the orchestrator, while an overlapping submission is rejected
/// up front with a structured conflict naming the holder.
#[test]
fn disjoint_declarative_splits_run_concurrently_and_overlap_conflicts() {
    let db = Arc::new(Database::new());
    db.create_table("V1", grouped_schema()).unwrap();
    db.create_table("V2", grouped_schema()).unwrap();
    seed_grouped(&db, "V1", 600, 30);
    seed_grouped(&db, "V2", 600, 20);

    // Concurrent writers on both sources while the migrations run.
    let pool = spawn_updaters(
        &db,
        vec![
            UpdateTarget::new("V1", 600, 1),
            UpdateTarget::new("V2", 600, 1),
        ],
        2,
        Duration::from_micros(300),
    );

    let orch = Orchestrator::new(Arc::clone(&db));
    let opts = TransformOptions::default()
        .deadline(Duration::from_secs(60))
        .retain_sources();

    // One submission through the text front-end, one through the
    // builder: both compile to the same plan shape.
    let h1 = orch
        .submit_text(
            "ALTER TABLE V1 SPLIT INTO V1_base (k, payload, grp) AND V1_groups (grp -> dep)",
            opts.clone(),
        )
        .unwrap();
    // Park the first migration so its claims are provably still held
    // when the overlapping submission arrives below.
    h1.pause();
    let h2 = orch
        .submit(
            Migration::split(
                "V2",
                "V2_base",
                "V2_groups",
                &["k", "payload", "grp"],
                "grp",
                &["dep"],
            )
            .build(),
            opts.clone(),
        )
        .unwrap();
    assert_ne!(h1.id(), h2.id());

    // Overlap: V1 is claimed by the paused job #1.
    let err = match orch.submit(
        Migration::split("V1", "X", "Y", &["k", "grp"], "grp", &["dep"]).build(),
        opts.clone(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("overlapping table set must be rejected"),
    };
    match err {
        DbError::MigrationConflict { table, job } => {
            assert_eq!(table, "V1");
            assert_eq!(job, h1.id());
        }
        other => panic!("expected MigrationConflict, got {other}"),
    }

    h1.resume();
    let rep1 = h1.join().expect("declarative split of V1");
    let rep2 = h2.join().expect("declarative split of V2");
    pool.stop();

    assert_eq!(rep1.len(), 1);
    assert_eq!(rep2.len(), 1);
    assert_eq!(db.catalog().get("V1_base").unwrap().len(), 600);
    assert_eq!(db.catalog().get("V1_groups").unwrap().len(), 30);
    assert_eq!(db.catalog().get("V2_base").unwrap().len(), 600);
    assert_eq!(db.catalog().get("V2_groups").unwrap().len(), 20);
    for groups in ["V1_groups", "V2_groups"] {
        let counters: u32 = db
            .catalog()
            .get(groups)
            .unwrap()
            .snapshot()
            .iter()
            .map(|(_, row)| row.counter)
            .sum();
        assert_eq!(counters, 600, "{groups}: split counters must add up");
    }
    // Both jobs released their claims; the registry is drained.
    assert!(db.migrations().active_jobs().is_empty());
}

/// A chained migration — split, then union the split's R output with a
/// sibling table — runs stage 2 only after stage 1 cut over, under
/// concurrent writes to the original source.
#[test]
fn split_then_union_chain_converges() {
    let db = Arc::new(Database::new());
    db.create_table("W", grouped_schema()).unwrap();
    // Sibling with exactly the schema the split's R target will have
    // (unions demand identical schemas); keys disjoint from W's.
    let sibling = Schema::builder()
        .column("k", ColumnType::Int)
        .nullable("payload", ColumnType::Str)
        .nullable("grp", ColumnType::Int)
        .primary_key(&["k"])
        .build()
        .unwrap();
    db.create_table("X", sibling).unwrap();
    seed_grouped(&db, "W", 500, 25);
    let txn = db.begin();
    for i in 0..80i64 {
        db.insert(
            txn,
            "X",
            vec![Value::Int(10_000 + i), Value::str("x"), Value::Int(i % 25)],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();

    let pool = spawn_updaters(
        &db,
        vec![UpdateTarget::new("W", 500, 1)],
        1,
        Duration::from_micros(300),
    );

    let orch = Orchestrator::new(Arc::clone(&db));
    let spec = Migration::split(
        "W",
        "W_base",
        "W_groups",
        &["k", "payload", "grp"],
        "grp",
        &["dep"],
    )
    .then_union("W_base", "X", "W_all")
    .build();
    assert_eq!(spec.final_targets(), vec!["W_all"]);

    let handle = orch
        .submit(
            spec,
            TransformOptions::default()
                .deadline(Duration::from_secs(60))
                .retain_sources(),
        )
        .unwrap();
    // The progress handle stays readable independently of the join.
    let prog = handle.progress();
    let reports = handle.join().expect("split-then-union chain");
    pool.stop();

    assert_eq!(prog.phase(), ProgressPhase::CutOver);
    assert!(prog.rows_copied() >= 500 + 80);

    assert_eq!(reports.len(), 2, "one report per chained stage");
    assert_eq!(db.catalog().get("W_base").unwrap().len(), 500);
    assert_eq!(db.catalog().get("W_groups").unwrap().len(), 25);
    // The union carries every W_base row and every X row, keyed by
    // provenance, so nothing collides and nothing is lost.
    assert_eq!(db.catalog().get("W_all").unwrap().len(), 500 + 80);
    assert!(db.migrations().active_jobs().is_empty());
}
