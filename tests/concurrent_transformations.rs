//! Two transformations running simultaneously on disjoint table sets.
//!
//! The paper treats one transformation at a time; the framework,
//! however, has no global state beyond the shared log, so independent
//! transformations (each with its own propagator cursor, rule set and
//! throttle) must be able to proceed concurrently — each one simply
//! sees the other's target-table writes as irrelevant log records
//! (propagator writes are not logged) and the other's source records as
//! foreign tables to skip.

use morphdb::core::{FojSpec, SplitSpec, TransformOptions, Transformer};
use morphdb::{ColumnType, Database, Key, Schema, Value};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn disjoint_foj_and_split_run_concurrently() {
    let db = Arc::new(Database::new());

    // Table family 1: FOJ sources.
    let r = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    let s = Schema::builder()
        .column("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["c"])
        .build()
        .unwrap();
    db.create_table("R", r).unwrap();
    db.create_table("S", s).unwrap();

    // Table family 2: split source.
    let u = Schema::builder()
        .column("k", ColumnType::Int)
        .nullable("payload", ColumnType::Str)
        .nullable("grp", ColumnType::Int)
        .nullable("dep", ColumnType::Str)
        .primary_key(&["k"])
        .build()
        .unwrap();
    db.create_table("U", u).unwrap();

    let txn = db.begin();
    for i in 0..800i64 {
        db.insert(
            txn,
            "R",
            vec![Value::Int(i), Value::str("b"), Value::Int(i % 50)],
        )
        .unwrap();
        let g = i % 30;
        db.insert(
            txn,
            "U",
            vec![
                Value::Int(i),
                Value::str("p"),
                Value::Int(g),
                Value::str(format!("dep-{g}")),
            ],
        )
        .unwrap();
    }
    for j in 0..50i64 {
        db.insert(txn, "S", vec![Value::Int(j), Value::str("d")])
            .unwrap();
    }
    db.commit(txn).unwrap();

    // Concurrent writers on both families.
    let stop = Arc::new(AtomicBool::new(false));
    let mut workers = Vec::new();
    for w in 0..2u64 {
        let db = Arc::clone(&db);
        let stop = Arc::clone(&stop);
        workers.push(std::thread::spawn(move || {
            let mut i = w * 10_000;
            while !stop.load(Ordering::Relaxed) {
                i += 1;
                let txn = db.begin();
                let table = if i % 2 == 0 { "R" } else { "U" };
                let key = Key::single((i % 800) as i64);
                match db.update(txn, table, &key, &[(1, Value::str(format!("w{i}")))]) {
                    Ok(()) => {
                        let _ = db.commit(txn);
                    }
                    Err(_) => {
                        let _ = db.abort(txn);
                    }
                }
                std::thread::sleep(Duration::from_micros(300));
            }
        }));
    }

    let opts = TransformOptions::default()
        .deadline(Duration::from_secs(60))
        .retain_sources();
    let h1 = Transformer::spawn_foj(
        Arc::clone(&db),
        FojSpec::new("R", "S", "T_join", "c", "c"),
        opts.clone(),
    );
    let h2 = Transformer::spawn_split(
        Arc::clone(&db),
        SplitSpec::new(
            "U",
            "U_base",
            "U_groups",
            &["k", "payload", "grp"],
            "grp",
            &["dep"],
        ),
        opts,
    );
    let rep1 = h1.join().expect("FOJ transformation");
    let rep2 = h2.join().expect("split transformation");
    stop.store(true, Ordering::Relaxed);
    for w in workers {
        w.join().unwrap();
    }

    // Both completed with short pauses, and both targets are whole.
    assert!(rep1.sync.latch_pause < Duration::from_millis(500));
    assert!(rep2.sync.latch_pause < Duration::from_millis(500));
    assert_eq!(db.catalog().get("T_join").unwrap().len(), 800);
    assert_eq!(db.catalog().get("U_base").unwrap().len(), 800);
    assert_eq!(db.catalog().get("U_groups").unwrap().len(), 30);
    let counters: u32 = db
        .catalog()
        .get("U_groups")
        .unwrap()
        .snapshot()
        .iter()
        .map(|(_, row)| row.counter)
        .sum();
    assert_eq!(counters, 800);
}
