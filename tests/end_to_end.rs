//! Whole-system test: paper-shaped (scaled-down) workload — concurrent
//! client threads, each transaction updating 10 records under record
//! locks — running *across* a complete online transformation, with a
//! final independent verification of the transformed tables against
//! the retained source state.
//!
//! The verification oracle here is written from scratch (it does not
//! reuse `morph-core`'s reference implementations), so a bug shared by
//! the rules and their in-crate oracle would still be caught.

use morphdb::core::{FojSpec, SplitSpec, TransformOptions, Transformer};
use morphdb::workload::{
    setup_dummy, setup_foj_sources, setup_split_source, ClientConfig, HotSide, WorkloadRunner,
};
use morphdb::{Database, Value};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Duration;

const ROWS: usize = 2_000;
const S_ROWS: usize = 400;

fn opts() -> TransformOptions {
    TransformOptions::default()
        .deadline(Duration::from_secs(60))
        .retain_sources()
}

fn cfg(hot: HotSide) -> ClientConfig {
    ClientConfig {
        updates_per_txn: 10,
        hot_fraction: 0.2,
        hot,
        hot_rows: ROWS,
        hot_s_rows: S_ROWS,
        dummy_rows: 1_000,
        pacing: Some(Duration::from_millis(1)),
    }
}

#[test]
fn foj_under_live_workload_matches_independent_oracle() {
    let db = Arc::new(Database::new());
    setup_dummy(&db, 1_000).unwrap();
    setup_foj_sources(&db, ROWS, S_ROWS).unwrap();

    let runner = WorkloadRunner::start(
        Arc::clone(&db),
        cfg(HotSide::FojSources { s_share: 0.2 }),
        4,
    );
    std::thread::sleep(Duration::from_millis(100));

    let handle = Transformer::spawn_foj(
        Arc::clone(&db),
        FojSpec::new("R", "S", "T", "c", "c"),
        opts(),
    );
    let report = handle.join().expect("transformation");
    // Let stragglers drain, then stop the workload.
    std::thread::sleep(Duration::from_millis(100));
    runner.stop();
    assert!(report.sync.latch_pause < Duration::from_millis(500));

    // Independent oracle: R and S were retained (frozen). Compute the
    // expected FOJ by hand. Schema: R(a,b,c), S(c,d) → T(a,b,c,d),
    // key (a, c).
    let r_rows: Vec<Vec<Value>> = db
        .catalog()
        .get("R")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(_, row)| row.values)
        .collect();
    let s_rows: BTreeMap<Value, Vec<Value>> = db
        .catalog()
        .get("S")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(_, row)| (row.values[0].clone(), row.values))
        .collect();

    let mut expected: BTreeMap<(Value, Value), Vec<Value>> = BTreeMap::new();
    let mut matched_s: std::collections::BTreeSet<Value> = Default::default();
    for r in &r_rows {
        let c = r[2].clone();
        match s_rows.get(&c) {
            Some(s) if !c.is_null() => {
                matched_s.insert(c.clone());
                expected.insert(
                    (r[0].clone(), c.clone()),
                    vec![r[0].clone(), r[1].clone(), c.clone(), s[1].clone()],
                );
            }
            _ => {
                expected.insert(
                    (r[0].clone(), c.clone()),
                    vec![r[0].clone(), r[1].clone(), c, Value::Null],
                );
            }
        }
    }
    for (c, s) in &s_rows {
        if !matched_s.contains(c) {
            expected.insert(
                (Value::Null, c.clone()),
                vec![Value::Null, Value::Null, c.clone(), s[1].clone()],
            );
        }
    }

    let got: BTreeMap<(Value, Value), Vec<Value>> = db
        .catalog()
        .get("T")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(k, row)| ((k.0[0].clone(), k.0[1].clone()), row.values))
        .collect();

    assert_eq!(
        got.len(),
        expected.len(),
        "row-count mismatch between T and oracle"
    );
    for (k, exp) in &expected {
        assert_eq!(got.get(k), Some(exp), "mismatch at key {k:?}");
    }
}

#[test]
fn split_under_live_workload_matches_independent_oracle() {
    let db = Arc::new(Database::new());
    setup_dummy(&db, 1_000).unwrap();
    setup_split_source(&db, ROWS, S_ROWS).unwrap();

    let runner = WorkloadRunner::start(Arc::clone(&db), cfg(HotSide::SplitSource), 4);
    std::thread::sleep(Duration::from_millis(100));

    let spec = SplitSpec::new("T", "R2", "S2", &["a", "b", "c"], "c", &["d"]);
    let handle = Transformer::spawn_split(Arc::clone(&db), spec, opts());
    let report = handle.join().expect("transformation");
    std::thread::sleep(Duration::from_millis(100));
    runner.stop();
    assert!(report.sync.latch_pause < Duration::from_millis(500));

    // Oracle: split the retained T by hand. T(a,b,c,d): R2(a,b,c),
    // S2(c,d) with counters.
    let t_rows: Vec<Vec<Value>> = db
        .catalog()
        .get("T")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(_, row)| row.values)
        .collect();
    let mut exp_r: BTreeMap<Value, Vec<Value>> = BTreeMap::new();
    let mut exp_s: BTreeMap<Value, (Vec<Value>, u32)> = BTreeMap::new();
    for t in &t_rows {
        exp_r.insert(t[0].clone(), vec![t[0].clone(), t[1].clone(), t[2].clone()]);
        let e = exp_s
            .entry(t[2].clone())
            .or_insert_with(|| (vec![t[2].clone(), t[3].clone()], 0));
        assert_eq!(e.0[1], t[3], "workload must have preserved the FD");
        e.1 += 1;
    }

    let r2 = db.catalog().get("R2").unwrap();
    assert_eq!(r2.len(), exp_r.len());
    for (k, row) in r2.snapshot() {
        assert_eq!(
            Some(&row.values),
            exp_r.get(&k.0[0]),
            "R2 mismatch at {k:?}"
        );
    }
    let s2 = db.catalog().get("S2").unwrap();
    assert_eq!(s2.len(), exp_s.len());
    for (k, row) in s2.snapshot() {
        let (exp_vals, exp_ctr) = exp_s.get(&k.0[0]).expect("unexpected S2 key");
        assert_eq!(&row.values, exp_vals, "S2 values mismatch at {k:?}");
        assert_eq!(row.counter, *exp_ctr, "S2 counter mismatch at {k:?}");
    }
}

#[test]
fn workload_is_never_globally_blocked() {
    // The headline property: at no point does throughput drop to zero.
    let db = Arc::new(Database::new());
    setup_dummy(&db, 1_000).unwrap();
    setup_split_source(&db, ROWS, S_ROWS).unwrap();

    let runner = WorkloadRunner::start(Arc::clone(&db), cfg(HotSide::SplitSource), 4);
    std::thread::sleep(Duration::from_millis(100));
    let spec = SplitSpec::new("T", "R2", "S2", &["a", "b", "c"], "c", &["d"]);
    let handle = Transformer::spawn_split(Arc::clone(&db), spec, opts());

    // Sample short windows across the transformation's lifetime.
    let mut zero_windows = 0;
    let mut windows = 0;
    while !handle.is_finished() {
        let w = runner.measure(Duration::from_millis(60));
        windows += 1;
        if w.committed == 0 {
            zero_windows += 1;
        }
    }
    handle.join().unwrap();
    runner.stop();
    assert!(windows > 0);
    assert_eq!(
        zero_windows, 0,
        "found {zero_windows}/{windows} windows with zero committed transactions"
    );
}
