//! Shared-nothing router correctness: a migration fanned out over N
//! shards must end in exactly the state a single engine ends in.
//!
//! For every operator (FOJ, split, union), the same generated data set
//! is loaded into a single-engine reference and into a
//! [`ShardedDatabase`] at several shard counts, co-partitioned on the
//! attribute the operator's propagation rules group by (the join
//! attribute for FOJ, the split attribute for split — union needs no
//! co-partitioning, its rules are row-local). The migration then runs
//! **eagerly** (per-shard §3 pipelines) and **lazily** (per-shard
//! cutover + on-access/backfill transforms), and the union of the
//! per-shard targets is compared row-for-row — values, LSN-independent
//! metadata (split reference counters, FOJ presence) included.

use morphdb::core::spec::TransformOptions;
use morphdb::engine::ShardedDatabase;
use morphdb::orchestrator::Orchestrator;
use morphdb::orchestrator::{start_lazy_sharded, submit_sharded, Migration, MigrationSpec};
use morphdb::{ColumnType, Database, Key, Schema, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

// --- schemas and seeding -------------------------------------------------

fn foj_schemas() -> (Schema, Schema) {
    let r = Schema::builder()
        .column("a", ColumnType::Int)
        .column("b", ColumnType::Str)
        .column("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    let s = Schema::builder()
        .column("c", ColumnType::Int)
        .column("d", ColumnType::Str)
        .primary_key(&["c"])
        .build()
        .unwrap();
    (r, s)
}

fn split_schema() -> Schema {
    Schema::builder()
        .column("id", ColumnType::Int)
        .column("g", ColumnType::Int)
        .column("d", ColumnType::Str)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

fn union_schema() -> Schema {
    Schema::builder()
        .column("id", ColumnType::Int)
        .column("v", ColumnType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

/// Rows loaded into both the reference and every sharded instance.
#[derive(Clone, Debug)]
struct DataSet {
    r_rows: Vec<Vec<Value>>,
    s_rows: Vec<Vec<Value>>,
}

fn foj_dataset() -> impl Strategy<Value = DataSet> {
    // Generated as key/value pair vectors, collected through BTreeMaps
    // so primary keys are unique and ordering is canonical.
    let r = proptest::collection::vec((0..40i64, (0..8i64, ".{1,3}")), 0..24);
    let s = proptest::collection::vec((0..8i64, ".{1,3}"), 0..8);
    (r, s).prop_map(|(r, s)| DataSet {
        r_rows: r
            .into_iter()
            .collect::<BTreeMap<_, _>>()
            .into_iter()
            .map(|(a, (c, b))| vec![Value::Int(a), Value::str(b), Value::Int(c)])
            .collect(),
        s_rows: s
            .into_iter()
            .collect::<BTreeMap<_, _>>()
            .into_iter()
            .map(|(c, d)| vec![Value::Int(c), Value::str(d)])
            .collect(),
    })
}

fn split_dataset() -> impl Strategy<Value = DataSet> {
    // The functional dependency g → d must hold: derive d from g.
    let t = proptest::collection::vec((0..40i64, 0..6i64), 0..24);
    t.prop_map(|t| DataSet {
        r_rows: t
            .into_iter()
            .collect::<BTreeMap<_, _>>()
            .into_iter()
            .map(|(id, g)| vec![Value::Int(id), Value::Int(g), Value::str(format!("d{g}"))])
            .collect(),
        s_rows: Vec::new(),
    })
}

fn union_dataset() -> impl Strategy<Value = DataSet> {
    let r = proptest::collection::vec((0..40i64, 0..100i64), 0..20);
    let s = proptest::collection::vec((0..40i64, 0..100i64), 0..20);
    (r, s).prop_map(|(r, s)| DataSet {
        r_rows: r
            .into_iter()
            .collect::<BTreeMap<_, _>>()
            .into_iter()
            .map(|(id, v)| vec![Value::Int(id), Value::Int(v)])
            .collect(),
        s_rows: s
            .into_iter()
            .collect::<BTreeMap<_, _>>()
            .into_iter()
            .map(|(id, v)| vec![Value::Int(id), Value::Int(v)])
            .collect(),
    })
}

/// Which operator a case runs, with its tables and co-partitioning.
#[derive(Clone, Copy, Debug)]
enum Op {
    Foj,
    Split,
    Union,
}

impl Op {
    fn create_tables(self, db: &Database) {
        match self {
            Op::Foj => {
                let (r, s) = foj_schemas();
                db.create_table("R", r).unwrap();
                db.create_table("S", s).unwrap();
            }
            Op::Split => {
                db.create_table("T", split_schema()).unwrap();
            }
            Op::Union => {
                db.create_table("r", union_schema()).unwrap();
                db.create_table("s", union_schema()).unwrap();
            }
        }
    }

    fn create_sharded(self, sdb: &ShardedDatabase) {
        match self {
            Op::Foj => {
                let (r, s) = foj_schemas();
                sdb.create_table("R", r).unwrap();
                sdb.create_table("S", s).unwrap();
                // Co-partition on the join attribute: every join group
                // lives wholly inside one shard, so the per-shard FOJ
                // rules see all their partners.
                sdb.route_by("R", vec![2]);
                sdb.route_by("S", vec![0]);
            }
            Op::Split => {
                sdb.create_table("T", split_schema()).unwrap();
                // Co-partition on the split attribute: each shared
                // S-record (and its reference counter) stays whole.
                sdb.route_by("T", vec![1]);
            }
            Op::Union => {
                sdb.create_table("r", union_schema()).unwrap();
                sdb.create_table("s", union_schema()).unwrap();
                // The union target's key prepends a provenance tag to
                // the source key; route point accesses by the suffix so
                // a target row lands on its source row's shard.
                sdb.route_key_suffix("u", 1);
            }
        }
    }

    fn tables(self) -> (&'static str, &'static str) {
        match self {
            Op::Foj => ("R", "S"),
            Op::Split => ("T", ""),
            Op::Union => ("r", "s"),
        }
    }

    fn spec(self) -> MigrationSpec {
        match self {
            Op::Foj => Migration::join("R", "S", "J", "c", "c").build(),
            Op::Split => Migration::split("T", "T2", "G", &["id", "g"], "g", &["d"]).build(),
            Op::Union => Migration::union("r", "s", "u").build(),
        }
    }

    fn targets(self) -> Vec<&'static str> {
        match self {
            Op::Foj => vec!["J"],
            Op::Split => vec!["T2", "G"],
            Op::Union => vec!["u"],
        }
    }
}

fn load(db: &Database, op: Op, data: &DataSet) {
    let (rt, st) = op.tables();
    for row in &data.r_rows {
        let t = db.begin();
        db.insert(t, rt, row.clone()).unwrap();
        db.commit(t).unwrap();
    }
    for row in &data.s_rows {
        let t = db.begin();
        db.insert(t, st, row.clone()).unwrap();
        db.commit(t).unwrap();
    }
}

fn load_sharded(sdb: &ShardedDatabase, op: Op, data: &DataSet) {
    let (rt, st) = op.tables();
    for row in &data.r_rows {
        sdb.insert(rt, row.clone()).unwrap();
    }
    for row in &data.s_rows {
        sdb.insert(st, row.clone()).unwrap();
    }
}

/// Observable target state: key → (values, split counter, FOJ
/// presence). LSNs are excluded — they are physical per-engine state.
type TargetImage = BTreeMap<(String, Key), (Vec<Value>, u32, u8)>;

fn image_of(db: &Database, targets: &[&str]) -> TargetImage {
    let mut out = TargetImage::new();
    for name in targets {
        let t = db.catalog().get(name).unwrap();
        for (k, row) in t.snapshot() {
            out.insert(
                ((*name).to_owned(), k),
                (
                    row.values,
                    row.counter,
                    row.presence.left as u8 | ((row.presence.right as u8) << 1),
                ),
            );
        }
    }
    out
}

fn sharded_image(sdb: &ShardedDatabase, targets: &[&str]) -> TargetImage {
    let mut out = TargetImage::new();
    for shard in sdb.shards() {
        let img = image_of(shard, targets);
        for (k, v) in img {
            let prev = out.insert(k.clone(), v.clone());
            assert!(
                prev.is_none() || prev == Some(v),
                "key {k:?} present on two shards with different images"
            );
        }
    }
    out
}

/// Reference: the migration run eagerly on a single engine.
fn reference_image(op: Op, data: &DataSet) -> TargetImage {
    let db = Arc::new(Database::new());
    op.create_tables(&db);
    load(&db, op, data);
    let orch = Orchestrator::new(Arc::clone(&db));
    let h = orch.submit(op.spec(), TransformOptions::default()).unwrap();
    h.join().unwrap();
    image_of(&db, &op.targets())
}

fn check_eager(op: Op, data: &DataSet, shards: usize) {
    let expected = reference_image(op, data);
    let sdb = ShardedDatabase::new(shards);
    op.create_sharded(&sdb);
    load_sharded(&sdb, op, data);
    let (_orchs, mig) = submit_sharded(&sdb, &op.spec(), &TransformOptions::default()).unwrap();
    mig.join().unwrap();
    assert_eq!(
        sharded_image(&sdb, &op.targets()),
        expected,
        "eager {op:?} over {shards} shards diverged from the single engine"
    );
}

fn check_lazy(op: Op, data: &DataSet, shards: usize) {
    let expected = reference_image(op, data);
    let sdb = ShardedDatabase::new(shards);
    op.create_sharded(&sdb);
    load_sharded(&sdb, op, data);
    let mig = start_lazy_sharded(&sdb, &op.spec()).unwrap();
    // Interleave on-access touches with background backfill: read a few
    // target keys through the engines so the interceptor transforms
    // them, then drain the rest.
    if let Op::Union = op {
        for shard in sdb.shards() {
            for row in data.r_rows.iter().take(3) {
                let t = shard.begin();
                let key = Key::new([Value::str("r"), row[0].clone()]);
                let _ = shard.read(t, "u", &key).unwrap();
                shard.commit(t).unwrap();
            }
        }
    }
    while !mig.is_drained() {
        mig.backfill_round(4, 1.0).unwrap();
    }
    mig.finish().unwrap();
    assert_eq!(
        sharded_image(&sdb, &op.targets()),
        expected,
        "lazy {op:?} over {shards} shards diverged from the single engine"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn sharded_foj_matches_single_engine(data in foj_dataset(), shards in 1usize..4) {
        check_eager(Op::Foj, &data, shards);
        check_lazy(Op::Foj, &data, shards);
    }

    #[test]
    fn sharded_split_matches_single_engine(data in split_dataset(), shards in 1usize..4) {
        check_eager(Op::Split, &data, shards);
        check_lazy(Op::Split, &data, shards);
    }

    #[test]
    fn sharded_union_matches_single_engine(data in union_dataset(), shards in 1usize..4) {
        check_eager(Op::Union, &data, shards);
        check_lazy(Op::Union, &data, shards);
    }
}

/// Deterministic smoke: 4-shard union, lazy, with writes racing the
/// backfill through the router's own single-shot ops.
#[test]
fn lazy_union_write_through_router_wins_over_backfill() {
    let data = DataSet {
        r_rows: (0..16)
            .map(|i| vec![Value::Int(i), Value::Int(i * 10)])
            .collect(),
        s_rows: (0..16)
            .map(|i| vec![Value::Int(i), Value::Int(i * 100)])
            .collect(),
    };
    let sdb = ShardedDatabase::new(4);
    Op::Union.create_sharded(&sdb);
    load_sharded(&sdb, Op::Union, &data);
    let mig = start_lazy_sharded(&sdb, &Op::Union.spec()).unwrap();
    // Update half the keys through the cut-over catalog before any
    // backfill ran: the touch must transform first, the update lands
    // on top, and the later backfill must not resurrect frozen images.
    for i in 0..8 {
        let key = Key::new([Value::str("r"), Value::Int(i)]);
        sdb.update("u", &key, &[(2, Value::Int(-i))]).unwrap();
    }
    while !mig.is_drained() {
        mig.backfill_round(4, 1.0).unwrap();
    }
    mig.finish().unwrap();
    for i in 0..8 {
        let key = Key::new([Value::str("r"), Value::Int(i)]);
        let row = sdb.read("u", &key).unwrap().unwrap();
        assert_eq!(row[2], Value::Int(-i));
    }
    for i in 8..16 {
        let key = Key::new([Value::str("r"), Value::Int(i)]);
        let row = sdb.read("u", &key).unwrap().unwrap();
        assert_eq!(row[2], Value::Int(i * 10));
    }
}
