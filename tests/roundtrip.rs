//! Round-trip: a full outer join transformation followed by a split of
//! the joined table recovers the original decomposition — the two
//! operators the paper picked precisely because they change the
//! normalization degree in opposite directions (§1, §7).
//!
//! `R(a,b,c) ⟗ S(c,d) → T(a,b,c,d)` and then splitting T on `c`
//! yields `R'(a,b,c) ≡ R` and `S'(c,d) ≡ S` (modulo rows that had no
//! join partner, which the FOJ NULL-extends and the split then keeps —
//! the test constructs fully-matched data so the round trip is exact).
//!
//! Everything runs online, with a light concurrent workload across both
//! transformations.

use morphdb::core::{FojSpec, SplitSpec, TransformOptions, Transformer};
use morphdb::{ColumnType, Database, Key, Schema, Value};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn foj_then_split_recovers_the_decomposition() {
    let db = Arc::new(Database::new());
    let r_schema = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    let s_schema = Schema::builder()
        .column("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["c"])
        .build()
        .unwrap();
    db.create_table("R", r_schema).unwrap();
    db.create_table("S", s_schema).unwrap();

    // Fully matched data: every R row has a partner, every S value used.
    let txn = db.begin();
    for i in 0..600i64 {
        db.insert(
            txn,
            "R",
            vec![Value::Int(i), Value::str("b"), Value::Int(i % 40)],
        )
        .unwrap();
    }
    for j in 0..40i64 {
        db.insert(txn, "S", vec![Value::Int(j), Value::str(format!("d{j}"))])
            .unwrap();
    }
    db.commit(txn).unwrap();

    // Keep a snapshot of the original decomposition for the final check.
    let orig_r: BTreeSet<Vec<Value>> = db
        .catalog()
        .get("R")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(_, row)| row.values)
        .collect();
    let orig_s: BTreeSet<Vec<Value>> = db
        .catalog()
        .get("S")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(_, row)| row.values)
        .collect();

    // A benign concurrent workload on the dummy side only, so the
    // data round-trips exactly while concurrency still exercises the
    // machinery.
    let dummy = Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("p", ColumnType::Str)
        .primary_key(&["id"])
        .build()
        .unwrap();
    db.create_table("dummy", dummy).unwrap();
    let txn = db.begin();
    for i in 0..200i64 {
        db.insert(txn, "dummy", vec![Value::Int(i), Value::str("x")])
            .unwrap();
    }
    db.commit(txn).unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let db2 = Arc::clone(&db);
    let worker = std::thread::spawn(move || {
        let mut i = 0u64;
        while !stop2.load(Ordering::Relaxed) {
            i += 1;
            let txn = db2.begin();
            match db2.update(
                txn,
                "dummy",
                &Key::single((i % 200) as i64),
                &[(1, Value::str(format!("x{i}")))],
            ) {
                Ok(()) => {
                    let _ = db2.commit(txn);
                }
                Err(_) => {
                    let _ = db2.abort(txn);
                }
            }
            std::thread::sleep(Duration::from_micros(200));
        }
    });

    let opts = TransformOptions::default().deadline(Duration::from_secs(60));

    // Denormalize…
    let report1 = Transformer::run_foj(&db, FojSpec::new("R", "S", "T", "c", "c"), opts.clone())
        .expect("FOJ transformation");
    assert!(!db.catalog().exists("R") && !db.catalog().exists("S"));
    assert_eq!(db.catalog().get("T").unwrap().len(), 600);

    // …and split right back.
    let report2 = Transformer::run_split(
        &db,
        SplitSpec::new("T", "R", "S", &["a", "b", "c"], "c", &["d"]),
        opts,
    )
    .expect("split transformation");
    stop.store(true, Ordering::Relaxed);
    worker.join().unwrap();
    assert!(!db.catalog().exists("T"));

    let back_r: BTreeSet<Vec<Value>> = db
        .catalog()
        .get("R")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(_, row)| row.values)
        .collect();
    let back_s: BTreeSet<Vec<Value>> = db
        .catalog()
        .get("S")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(_, row)| row.values)
        .collect();
    assert_eq!(back_r, orig_r, "R did not round-trip");
    assert_eq!(back_s, orig_s, "S did not round-trip");

    // Split counters reflect the join fan-in (600 rows over 40 values).
    let s = db.catalog().get("S").unwrap();
    for (k, row) in s.snapshot() {
        assert_eq!(row.counter, 15, "counter wrong at {k:?}");
    }

    assert!(report1.sync.latch_pause < Duration::from_millis(100));
    assert!(report2.sync.latch_pause < Duration::from_millis(100));
}

#[test]
fn many_to_many_foj_full_transformation() {
    // The §4.2 generalization driven through the full four-step
    // transformation (not just the rules): enrollments-style data where
    // both sides repeat join values.
    let db = Arc::new(Database::new());
    let r_schema = Schema::builder()
        .column("student", ColumnType::Int)
        .nullable("course", ColumnType::Int)
        .primary_key(&["student"])
        .build()
        .unwrap();
    let s_schema = Schema::builder()
        .column("session", ColumnType::Int)
        .nullable("course", ColumnType::Int)
        .nullable("room", ColumnType::Str)
        .primary_key(&["session"])
        .build()
        .unwrap();
    db.create_table("students", r_schema).unwrap();
    db.create_table("sessions", s_schema).unwrap();
    let txn = db.begin();
    for i in 0..60i64 {
        db.insert(txn, "students", vec![Value::Int(i), Value::Int(i % 5)])
            .unwrap();
    }
    for j in 0..15i64 {
        db.insert(
            txn,
            "sessions",
            vec![Value::Int(j), Value::Int(j % 5), Value::str("room")],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();

    let spec = FojSpec::new("students", "sessions", "timetable", "course", "course").many_to_many();
    let report = Transformer::run_foj(
        &db,
        spec,
        TransformOptions::default().deadline(Duration::from_secs(30)),
    )
    .expect("m2m transformation");

    // 5 courses × (12 students × 3 sessions) pairings.
    let t = db.catalog().get("timetable").unwrap();
    assert_eq!(t.len(), 60 * 3);
    assert!(report.population.rows_written >= 180);
}

#[test]
fn union_merge_full_transformation_under_load() {
    use morphdb::core::UnionSpec;
    let db = Arc::new(Database::new());
    let schema = || {
        Schema::builder()
            .column("id", ColumnType::Int)
            .nullable("v", ColumnType::Str)
            .primary_key(&["id"])
            .build()
            .unwrap()
    };
    db.create_table("eu", schema()).unwrap();
    db.create_table("us", schema()).unwrap();
    let txn = db.begin();
    for i in 0..400i64 {
        db.insert(txn, "eu", vec![Value::Int(i), Value::str("e")])
            .unwrap();
        // Overlapping key space on purpose: provenance keeps them apart.
        db.insert(txn, "us", vec![Value::Int(i / 2), Value::str("u")])
            .unwrap_or(morphdb::Key::single(0));
    }
    db.commit(txn).unwrap();
    let us_rows = db.catalog().get("us").unwrap().len();

    // Writers on both sources during the transformation.
    let stop = Arc::new(AtomicBool::new(false));
    let db2 = Arc::clone(&db);
    let stop2 = Arc::clone(&stop);
    let worker = std::thread::spawn(move || {
        let mut i = 0u64;
        while !stop2.load(Ordering::Relaxed) {
            i += 1;
            let txn = db2.begin();
            let table = if i.is_multiple_of(2) { "eu" } else { "us" };
            let key = Key::single((i % 100) as i64);
            match db2.update(txn, table, &key, &[(1, Value::str(format!("w{i}")))]) {
                Ok(()) => {
                    let _ = db2.commit(txn);
                }
                Err(_) => {
                    let _ = db2.abort(txn);
                }
            }
            std::thread::sleep(Duration::from_micros(300));
        }
    });

    let report = Transformer::run_union(
        &db,
        UnionSpec::new("eu", "us", "customers_all"),
        TransformOptions::default()
            .deadline(Duration::from_secs(60))
            .retain_sources(),
    )
    .expect("union transformation");
    stop.store(true, Ordering::Relaxed);
    worker.join().unwrap();

    let t = db.catalog().get("customers_all").unwrap();
    assert_eq!(t.len(), 400 + us_rows);
    assert!(report.sync.latch_pause < Duration::from_millis(500));

    // Every retained source row appears with its provenance tag and
    // current values.
    for name in ["eu", "us"] {
        let src = db.catalog().get(name).unwrap();
        for (k, row) in src.snapshot() {
            let mut tkey = vec![Value::str(name)];
            tkey.extend(k.values().iter().cloned());
            let trow = t.get(&Key(tkey)).expect("row present in union");
            assert_eq!(&trow.values[1..], &row.values[..], "mismatch at {k:?}");
        }
    }
}
