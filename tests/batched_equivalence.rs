//! Property: batched, coalesced log application is observationally
//! equivalent to record-at-a-time application.
//!
//! The propagator accumulates relevant records into runs, drops
//! records the operator's `CoalescePolicy` marks as superseded, and
//! applies each run under a single target-latch acquisition. None of
//! that may change what the transformed tables end up containing. For
//! random interleavings of committed and aborted transactions this
//! test replays the *identical* history against two databases and
//! drains one through the batched pipeline and the other by feeding
//! every log record to the operator one at a time, then compares the
//! target tables row by row (and both against the reference oracle).
//!
//! The two drains see byte-identical logs (single-threaded identical
//! histories produce identical LSNs), so any divergence is the batch
//! pipeline's fault — most likely an unsound coalesce: FOJ deletes
//! guard on logged pre-images of the join attribute, split rule 11
//! reads shared S-records other rows' updates feed, and both have
//! barrier columns declared precisely so this property holds.

use morphdb::core::foj::{self, FojMapping};
use morphdb::core::propagate::Propagator;
use morphdb::core::split::{self, SplitMapping};
use morphdb::core::{FojSpec, SplitSpec, TransformOperator};
use morphdb::{ColumnType, Database, Key, Schema, Value};
use proptest::prelude::*;
use std::sync::Arc;

/// One mutation step against the FOJ sources.
#[derive(Clone, Debug)]
enum FojStep {
    InsertR {
        a: i64,
        c: i64,
    },
    InsertS {
        c: i64,
    },
    DeleteR {
        a: i64,
    },
    DeleteS {
        c: i64,
    },
    /// Payload update on R (coalescable under `DeleteOnly`).
    PayloadR {
        a: i64,
        tag: i64,
    },
    /// Join-attribute move on R (a declared barrier column).
    JoinMoveR {
        a: i64,
        c: i64,
    },
    /// Primary-key move on R (always a barrier).
    KeyMoveR {
        a: i64,
        to: i64,
    },
    PayloadS {
        c: i64,
        tag: i64,
    },
}

fn foj_step() -> impl Strategy<Value = FojStep> {
    prop_oneof![
        (0..24i64, 0..6i64).prop_map(|(a, c)| FojStep::InsertR { a, c }),
        (0..6i64).prop_map(|c| FojStep::InsertS { c }),
        (0..24i64).prop_map(|a| FojStep::DeleteR { a }),
        (0..6i64).prop_map(|c| FojStep::DeleteS { c }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| FojStep::PayloadR { a, tag }),
        (0..24i64, 0..6i64).prop_map(|(a, c)| FojStep::JoinMoveR { a, c }),
        (0..24i64, 0..24i64).prop_map(|(a, to)| FojStep::KeyMoveR { a, to }),
        (0..6i64, 0..1000i64).prop_map(|(c, tag)| FojStep::PayloadS { c, tag }),
    ]
}

fn foj_sources(db: &Database) {
    let r = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Int)
        .nullable("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    let s = Schema::builder()
        .column("c", ColumnType::Int)
        .nullable("d", ColumnType::Int)
        .primary_key(&["c"])
        .build()
        .unwrap();
    db.create_table("R", r).unwrap();
    db.create_table("S", s).unwrap();
}

/// Run one transaction of steps; aborts on first engine error or when
/// the generated flag says so. Deterministic, so replaying the same
/// history on two databases produces identical logs.
fn run_foj_txn(db: &Database, steps: &[FojStep], commit: bool) {
    let txn = db.begin();
    let mut ok = true;
    for step in steps {
        let res = match step {
            FojStep::InsertR { a, c } => db
                .insert(
                    txn,
                    "R",
                    vec![Value::Int(*a), Value::Int(0), Value::Int(*c)],
                )
                .map(|_| ()),
            FojStep::InsertS { c } => db
                .insert(txn, "S", vec![Value::Int(*c), Value::Int(0)])
                .map(|_| ()),
            FojStep::DeleteR { a } => db.delete(txn, "R", &Key::single(*a)),
            FojStep::DeleteS { c } => db.delete(txn, "S", &Key::single(*c)),
            FojStep::PayloadR { a, tag } => {
                db.update(txn, "R", &Key::single(*a), &[(1, Value::Int(*tag))])
            }
            FojStep::JoinMoveR { a, c } => {
                db.update(txn, "R", &Key::single(*a), &[(2, Value::Int(*c))])
            }
            FojStep::KeyMoveR { a, to } => {
                db.update(txn, "R", &Key::single(*a), &[(0, Value::Int(*to))])
            }
            FojStep::PayloadS { c, tag } => {
                db.update(txn, "S", &Key::single(*c), &[(1, Value::Int(*tag))])
            }
        };
        if res.is_err() {
            ok = false;
            break;
        }
    }
    if ok && commit {
        let _ = db.commit(txn);
    } else {
        let _ = db.abort(txn);
    }
}

/// Feed every log record from `start` to the operator one at a time —
/// the unbatched, uncoalesced baseline the pipeline must match.
fn drain_record_at_a_time(db: &Database, start: morphdb::Lsn, oper: &mut dyn TransformOperator) {
    let mut cursor = db.log().tail(start);
    loop {
        let batch = cursor.next_batch(db.log(), 64);
        if batch.is_empty() {
            return;
        }
        for (lsn, rec) in batch {
            if let Some(op) = rec.op() {
                oper.apply(lsn, op).unwrap();
            }
        }
    }
}

/// Rows of a target table as comparable tuples: key, values, counter,
/// presence. The row LSN is deliberately excluded for FOJ targets (the
/// FOJ rules document it as not a valid state identifier); split
/// comparisons check it separately where it is semantic.
fn rows_of(db: &Database, name: &str) -> Vec<(Key, Vec<Value>, u32, String)> {
    let t = db.catalog().get(name).unwrap();
    let mut rows: Vec<_> = t
        .snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values, r.counter, format!("{:?}", r.presence)))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Same, with the state-identifier LSN included (split targets).
fn rows_with_lsn(db: &Database, name: &str) -> Vec<(Key, Vec<Value>, u32, morphdb::Lsn)> {
    let t = db.catalog().get(name).unwrap();
    let mut rows: Vec<_> = t
        .snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values, r.counter, r.lsn))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

type History = Vec<(Vec<FojStep>, bool)>;

fn history(max_txns: usize) -> impl Strategy<Value = History> {
    prop::collection::vec(
        (prop::collection::vec(foj_step(), 1..5), any::<bool>()),
        1..max_txns,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn foj_batched_drain_equals_record_at_a_time(
        pre in history(20),
        post in history(40),
    ) {
        // Two databases, identical histories.
        let batched = Arc::new(Database::new());
        let onebyone = Arc::new(Database::new());
        foj_sources(&batched);
        foj_sources(&onebyone);
        for (steps, commit) in &pre {
            run_foj_txn(&batched, steps, *commit);
            run_foj_txn(&onebyone, steps, *commit);
        }

        let spec = FojSpec::new("R", "S", "T", "c", "c");
        let mut mb = FojMapping::prepare(&batched, &spec).unwrap();
        let mut m1 = FojMapping::prepare(&onebyone, &spec).unwrap();
        let (_, start_b, _) = batched.write_fuzzy_mark();
        let (_, start_1, _) = onebyone.write_fuzzy_mark();
        prop_assert_eq!(start_b, start_1);
        mb.populate(4).unwrap();
        m1.populate(4).unwrap();

        for (steps, commit) in &post {
            run_foj_txn(&batched, steps, *commit);
            run_foj_txn(&onebyone, steps, *commit);
        }

        let mut prop = Propagator::new(&batched, start_b, 1.0);
        prop.drain_all(&batched, &mut mb).unwrap();
        drain_record_at_a_time(&onebyone, start_1, &mut m1);

        prop_assert_eq!(rows_of(&batched, "T"), rows_of(&onebyone, "T"));
        if let Err(e) = foj::verify_against_reference(&mb) {
            return Err(TestCaseError::fail(format!("batched diverged: {e}")));
        }
        if let Err(e) = foj::verify_against_reference(&m1) {
            return Err(TestCaseError::fail(format!("baseline diverged: {e}")));
        }
    }
}

// --- split -----------------------------------------------------------------

/// Mutation step against the split source T(a, b, c, d) with the
/// functional dependency c → d maintained per-row.
#[derive(Clone, Debug)]
enum SplitStep {
    Insert {
        a: i64,
        c: i64,
    },
    Delete {
        a: i64,
    },
    /// Move a row to another split value, updating the dependent with
    /// it (touches the declared barrier columns).
    Move {
        a: i64,
        c: i64,
    },
    /// Pure R-part payload update (coalescable under `Full`).
    Payload {
        a: i64,
        tag: i64,
    },
    KeyMove {
        a: i64,
        to: i64,
    },
}

fn split_step() -> impl Strategy<Value = SplitStep> {
    prop_oneof![
        (0..24i64, 0..6i64).prop_map(|(a, c)| SplitStep::Insert { a, c }),
        (0..24i64).prop_map(|a| SplitStep::Delete { a }),
        (0..24i64, 0..6i64).prop_map(|(a, c)| SplitStep::Move { a, c }),
        (0..24i64, 0..1000i64).prop_map(|(a, tag)| SplitStep::Payload { a, tag }),
        (0..24i64, 0..24i64).prop_map(|(a, to)| SplitStep::KeyMove { a, to }),
    ]
}

fn split_source(db: &Database) {
    let t = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Int)
        .nullable("c", ColumnType::Int)
        .nullable("d", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    db.create_table("T", t).unwrap();
}

fn run_split_txn(db: &Database, steps: &[SplitStep], commit: bool) {
    let dep = |c: i64| Value::Int(c * 100);
    let txn = db.begin();
    let mut ok = true;
    for step in steps {
        let res = match step {
            SplitStep::Insert { a, c } => db
                .insert(
                    txn,
                    "T",
                    vec![Value::Int(*a), Value::Int(0), Value::Int(*c), dep(*c)],
                )
                .map(|_| ()),
            SplitStep::Delete { a } => db.delete(txn, "T", &Key::single(*a)),
            SplitStep::Move { a, c } => db.update(
                txn,
                "T",
                &Key::single(*a),
                &[(2, Value::Int(*c)), (3, dep(*c))],
            ),
            SplitStep::Payload { a, tag } => {
                db.update(txn, "T", &Key::single(*a), &[(1, Value::Int(*tag))])
            }
            SplitStep::KeyMove { a, to } => {
                db.update(txn, "T", &Key::single(*a), &[(0, Value::Int(*to))])
            }
        };
        if res.is_err() {
            ok = false;
            break;
        }
    }
    if ok && commit {
        let _ = db.commit(txn);
    } else {
        let _ = db.abort(txn);
    }
}

type SplitHistory = Vec<(Vec<SplitStep>, bool)>;

fn split_history(max_txns: usize) -> impl Strategy<Value = SplitHistory> {
    prop::collection::vec(
        (prop::collection::vec(split_step(), 1..5), any::<bool>()),
        1..max_txns,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn split_batched_drain_equals_record_at_a_time(
        pre in split_history(20),
        post in split_history(40),
    ) {
        let batched = Arc::new(Database::new());
        let onebyone = Arc::new(Database::new());
        split_source(&batched);
        split_source(&onebyone);
        for (steps, commit) in &pre {
            run_split_txn(&batched, steps, *commit);
            run_split_txn(&onebyone, steps, *commit);
        }

        let spec = SplitSpec::new("T", "R_t", "S_t", &["a", "b", "c"], "c", &["d"]);
        let mut mb = SplitMapping::prepare(&batched, &spec).unwrap();
        let mut m1 = SplitMapping::prepare(&onebyone, &spec).unwrap();
        let (_, start_b, _) = batched.write_fuzzy_mark();
        let (_, start_1, _) = onebyone.write_fuzzy_mark();
        prop_assert_eq!(start_b, start_1);
        mb.populate(4).unwrap();
        m1.populate(4).unwrap();

        for (steps, commit) in &post {
            run_split_txn(&batched, steps, *commit);
            run_split_txn(&onebyone, steps, *commit);
        }

        let mut prop = Propagator::new(&batched, start_b, 1.0);
        prop.drain_all(&batched, &mut mb).unwrap();
        drain_record_at_a_time(&onebyone, start_1, &mut m1);

        // R rows' LSNs are real state identifiers (§5.2): identical
        // logs must leave identical identifiers, coalesced or not.
        prop_assert_eq!(
            rows_with_lsn(&batched, "R_t"),
            rows_with_lsn(&onebyone, "R_t")
        );
        // Shared S-records too, LSN included: a coalesced
        // absorb/release pair (insert swallowed by a delete) used to
        // leave the batched stamp behind the one-by-one schedule's —
        // benign, since the stamp is only a `>=` gate, but rule 9 now
        // stamps the watermark even when the delete's subject never
        // reached R, so the schedules agree exactly.
        prop_assert_eq!(
            rows_with_lsn(&batched, "S_t"),
            rows_with_lsn(&onebyone, "S_t")
        );
        if let Err(e) = split::verify_against_reference(&mb) {
            return Err(TestCaseError::fail(format!("batched diverged: {e}")));
        }
        if let Err(e) = split::verify_against_reference(&m1) {
            return Err(TestCaseError::fail(format!("baseline diverged: {e}")));
        }
    }
}
