//! Property-based tests of the transactional substrate: the engine is
//! compared against a trivial in-memory model, and restart recovery is
//! checked to reconstruct exactly the pre-crash committed state — for
//! *arbitrary* interleavings of committed and aborted transactions.

use morphdb::engine::recover_into;
use morphdb::txn::LockManagerConfig;
use morphdb::wal::LogManager;
use morphdb::{ColumnType, Database, Key, Lsn, Schema, Value};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("v", ColumnType::Int)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

/// One step of a generated history.
#[derive(Clone, Debug)]
enum Step {
    Insert { id: i64, v: i64 },
    Update { id: i64, v: i64 },
    Delete { id: i64 },
    MoveKey { id: i64, to: i64 },
}

fn step_strategy() -> impl Strategy<Value = Step> {
    prop_oneof![
        (0..12i64, any::<i64>()).prop_map(|(id, v)| Step::Insert { id, v }),
        (0..12i64, any::<i64>()).prop_map(|(id, v)| Step::Update { id, v }),
        (0..12i64).prop_map(|id| Step::Delete { id }),
        (0..12i64, 0..12i64).prop_map(|(id, to)| Step::MoveKey { id, to }),
    ]
}

/// A transaction: steps plus whether it commits.
fn txn_strategy() -> impl Strategy<Value = (Vec<Step>, bool)> {
    (prop::collection::vec(step_strategy(), 1..6), any::<bool>())
}

/// Apply one transaction to both engine and model; the model only
/// advances if the engine transaction commits.
fn run_txn(db: &Database, model: &mut BTreeMap<i64, i64>, steps: &[Step], commit: bool) {
    let txn = db.begin();
    let mut shadow = model.clone();
    let mut ok = true;
    for step in steps {
        let res = match step {
            Step::Insert { id, v } => db
                .insert(txn, "t", vec![Value::Int(*id), Value::Int(*v)])
                .map(|_| {
                    if shadow.insert(*id, *v).is_some() {
                        unreachable!("engine must have rejected duplicate")
                    }
                }),
            Step::Update { id, v } => db
                .update(txn, "t", &Key::single(*id), &[(1, Value::Int(*v))])
                .map(|()| {
                    shadow.insert(*id, *v);
                }),
            Step::Delete { id } => db.delete(txn, "t", &Key::single(*id)).map(|()| {
                shadow.remove(id);
            }),
            Step::MoveKey { id, to } => db
                .update(txn, "t", &Key::single(*id), &[(0, Value::Int(*to))])
                .map(|()| {
                    let v = shadow.remove(id).expect("engine found it");
                    shadow.insert(*to, v);
                }),
        };
        if res.is_err() {
            ok = false;
            break;
        }
    }
    if ok && commit {
        db.commit(txn).unwrap();
        *model = shadow;
    } else {
        db.abort(txn).unwrap();
    }
}

fn engine_state(db: &Database) -> BTreeMap<i64, i64> {
    db.catalog()
        .get("t")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(k, row)| {
            (
                k.0[0].as_int().unwrap(),
                row.values[1].as_int().unwrap_or(0),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine agrees with a BTreeMap model under arbitrary
    /// committed/aborted histories (aborts must be perfectly undone).
    #[test]
    fn engine_matches_model(txns in prop::collection::vec(txn_strategy(), 1..20)) {
        let db = Database::new();
        db.create_table("t", schema()).unwrap();
        let mut model = BTreeMap::new();
        for (steps, commit) in &txns {
            run_txn(&db, &mut model, steps, *commit);
        }
        prop_assert_eq!(engine_state(&db), model);
    }

    /// Replaying the log into a fresh database reconstructs exactly the
    /// same state — with a loser transaction still open at the "crash".
    #[test]
    fn recovery_rebuilds_state(
        txns in prop::collection::vec(txn_strategy(), 1..12),
        loser_steps in prop::collection::vec(step_strategy(), 0..5),
    ) {
        let db = Database::new();
        let t = db.create_table("t", schema()).unwrap();
        let mut model = BTreeMap::new();
        for (steps, commit) in &txns {
            run_txn(&db, &mut model, steps, *commit);
        }
        // A transaction left in flight at the crash.
        let loser = db.begin();
        for step in &loser_steps {
            let _ = match step {
                Step::Insert { id, v } => db
                    .insert(loser, "t", vec![Value::Int(*id), Value::Int(*v)])
                    .map(|_| ()),
                Step::Update { id, v } => {
                    db.update(loser, "t", &Key::single(*id), &[(1, Value::Int(*v))])
                }
                Step::Delete { id } => db.delete(loser, "t", &Key::single(*id)),
                Step::MoveKey { id, to } => {
                    db.update(loser, "t", &Key::single(*id), &[(0, Value::Int(*to))])
                }
            };
        }

        // Crash: replay the log into a fresh engine.
        let records: Vec<_> = db
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();
        let db2 = Database::with_log(
            Arc::new(LogManager::new()),
            LockManagerConfig::default(),
        );
        db2.catalog()
            .create_table_with_id(t.id(), "t", schema())
            .unwrap();
        let report = recover_into(&db2, &records).unwrap();
        prop_assert!(report.losers.len() <= 1);
        prop_assert_eq!(engine_state(&db2), model);
    }
}
