//! The framework's core correctness property, tested through the real
//! engine and log:
//!
//! > Start a fuzzy copy at an *arbitrary* point in a stream of
//! > transactions — including transactions that later abort (their
//! > CLRs must wash out through the same rules) — keep the stream
//! > going, then drain the log. The transformed tables must equal the
//! > operator applied to the final source state.
//!
//! Unlike the unit tests inside `morph-core` (which drive the rules
//! directly), everything here goes through `Database` transactions, so
//! the exact log the propagator sees — Begin/Op/Commit/Abort/CLR
//! interleavings, fuzzy-mark placement, the §3.2 start-LSN contract —
//! is the production one.

use morphdb::core::foj::{self, FojMapping};
use morphdb::core::propagate::Propagator;
use morphdb::core::split::{self, SplitMapping};
use morphdb::core::{FojSpec, SplitSpec};
use morphdb::{ColumnType, Database, DbError, Key, Schema, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

/// A random mutation step against the FOJ sources, executed inside its
/// own transaction which randomly commits or aborts.
fn random_foj_txn(db: &Database, rng: &mut StdRng, step: u64) {
    let txn = db.begin();
    let ops = rng.gen_range(1..4);
    let mut ok = true;
    for _ in 0..ops {
        let r: Result<(), DbError> = match rng.gen_range(0..6) {
            0 => {
                let a = rng.gen_range(0..30i64);
                db.insert(
                    txn,
                    "R",
                    vec![
                        Value::Int(a),
                        Value::str(format!("b{step}")),
                        Value::Int(rng.gen_range(0..6)),
                    ],
                )
                .map(|_| ())
            }
            1 => {
                let c = rng.gen_range(0..6i64);
                db.insert(
                    txn,
                    "S",
                    vec![Value::Int(c), Value::str(format!("d{step}"))],
                )
                .map(|_| ())
            }
            2 => db.delete(txn, "R", &Key::single(rng.gen_range(0..30i64))),
            3 => db.delete(txn, "S", &Key::single(rng.gen_range(0..6i64))),
            4 => {
                // R update: non-join payload or join move or pk move.
                let a = rng.gen_range(0..30i64);
                let cols = match rng.gen_range(0..3) {
                    0 => vec![(1, Value::str(format!("b{step}")))],
                    1 => vec![(2, Value::Int(rng.gen_range(0..6)))],
                    _ => vec![(0, Value::Int(rng.gen_range(0..30)))],
                };
                db.update(txn, "R", &Key::single(a), &cols)
            }
            _ => {
                // S update: payload or join(=pk) move.
                let c = rng.gen_range(0..6i64);
                let cols = if rng.gen_bool(0.5) {
                    vec![(1, Value::str(format!("d{step}")))]
                } else {
                    vec![(0, Value::Int(rng.gen_range(0..6)))]
                };
                db.update(txn, "S", &Key::single(c), &cols)
            }
        };
        if r.is_err() {
            ok = false;
            break;
        }
    }
    if !ok || rng.gen_bool(0.2) {
        let _ = db.abort(txn); // aborts produce CLRs the rules must handle
    } else {
        let _ = db.commit(txn);
    }
}

fn foj_sources(db: &Database) {
    let r = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .primary_key(&["a"])
        .build()
        .unwrap();
    let s = Schema::builder()
        .column("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["c"])
        .build()
        .unwrap();
    db.create_table("R", r).unwrap();
    db.create_table("S", s).unwrap();
}

#[test]
fn foj_fuzzy_copy_plus_log_drain_equals_reference() {
    for seed in 0..20u64 {
        let db = Arc::new(Database::new());
        foj_sources(&db);
        let mut rng = StdRng::seed_from_u64(seed * 101 + 7);

        // Phase 1: history before the transformation starts.
        let pre_steps = rng.gen_range(0..60);
        for step in 0..pre_steps {
            random_foj_txn(&db, &mut rng, step);
        }

        // Preparation + fuzzy mark + fuzzy population — exactly the
        // framework sequence.
        let mapping = FojMapping::prepare(&db, &FojSpec::new("R", "S", "T", "c", "c")).unwrap();
        let (_, start_lsn, _) = db.write_fuzzy_mark();
        let mut m = mapping;
        let mut prop = Propagator::new(&db, start_lsn, 1.0);
        m.populate(4).unwrap();

        // Phase 2: more history while the copy exists.
        for step in 0..rng.gen_range(10..120) {
            random_foj_txn(&db, &mut rng, 10_000 + step);
            // Occasionally interleave partial propagation.
            if rng.gen_bool(0.2) {
                let abort = AtomicBool::new(false);
                let _ = prop.iterate(&db, &mut m, 8, 0, &abort).unwrap();
            }
        }

        // Phase 3: drain completely (no active txns remain).
        prop.drain_all(&db, &mut m).unwrap();

        if let Err(e) = foj::verify_against_reference(&m) {
            panic!("seed {seed}: T diverged from reference FOJ: {e}");
        }
    }
}

fn split_source(db: &Database) {
    let t = Schema::builder()
        .column("a", ColumnType::Int)
        .nullable("b", ColumnType::Str)
        .nullable("c", ColumnType::Int)
        .nullable("d", ColumnType::Str)
        .primary_key(&["a"])
        .build()
        .unwrap();
    db.create_table("T", t).unwrap();
}

/// Split-side random transactions. The functional dependency c → d is
/// maintained per-row (d := f(c)) so consistent-mode semantics hold.
fn random_split_txn(db: &Database, rng: &mut StdRng, step: u64) {
    let dep = |c: i64| format!("dep-{c}");
    let txn = db.begin();
    let ops = rng.gen_range(1..4);
    let mut ok = true;
    for _ in 0..ops {
        let r: Result<(), DbError> = match rng.gen_range(0..4) {
            0 => {
                let a = rng.gen_range(0..30i64);
                let c = rng.gen_range(0..6i64);
                db.insert(
                    txn,
                    "T",
                    vec![
                        Value::Int(a),
                        Value::str(format!("b{step}")),
                        Value::Int(c),
                        Value::str(dep(c)),
                    ],
                )
                .map(|_| ())
            }
            1 => db.delete(txn, "T", &Key::single(rng.gen_range(0..30i64))),
            2 => {
                // Move a row to another split value (updating the
                // dependent with it, as a consistent application would).
                let a = rng.gen_range(0..30i64);
                let c = rng.gen_range(0..6i64);
                db.update(
                    txn,
                    "T",
                    &Key::single(a),
                    &[(2, Value::Int(c)), (3, Value::str(dep(c)))],
                )
            }
            _ => {
                let a = rng.gen_range(0..30i64);
                db.update(
                    txn,
                    "T",
                    &Key::single(a),
                    &[(1, Value::str(format!("b{step}")))],
                )
            }
        };
        if r.is_err() {
            ok = false;
            break;
        }
    }
    if !ok || rng.gen_bool(0.2) {
        let _ = db.abort(txn);
    } else {
        let _ = db.commit(txn);
    }
}

#[test]
fn split_fuzzy_copy_plus_log_drain_equals_reference() {
    for seed in 0..20u64 {
        let db = Arc::new(Database::new());
        split_source(&db);
        let mut rng = StdRng::seed_from_u64(seed * 313 + 11);

        for step in 0..rng.gen_range(0..60) {
            random_split_txn(&db, &mut rng, step);
        }

        let spec = SplitSpec::new("T", "R_t", "S_t", &["a", "b", "c"], "c", &["d"]);
        let mapping = SplitMapping::prepare(&db, &spec).unwrap();
        let (_, start_lsn, _) = db.write_fuzzy_mark();
        let mut m = mapping;
        let mut prop = Propagator::new(&db, start_lsn, 1.0);
        m.populate(4).unwrap();

        for step in 0..rng.gen_range(10..120) {
            random_split_txn(&db, &mut rng, 10_000 + step);
            if rng.gen_bool(0.2) {
                let abort = AtomicBool::new(false);
                let _ = prop.iterate(&db, &mut m, 8, 0, &abort).unwrap();
            }
        }
        prop.drain_all(&db, &mut m).unwrap();

        if let Err(e) = split::verify_against_reference(&m) {
            panic!("seed {seed}: split targets diverged: {e}");
        }
    }
}

#[test]
fn split_rename_in_place_equivalence() {
    for seed in 0..8u64 {
        let db = Arc::new(Database::new());
        split_source(&db);
        let mut rng = StdRng::seed_from_u64(seed + 999);
        for step in 0..30 {
            random_split_txn(&db, &mut rng, step);
        }
        let spec =
            SplitSpec::new("T", "R_t", "S_t", &["a", "b", "c"], "c", &["d"]).rename_in_place();
        let mapping = SplitMapping::prepare(&db, &spec).unwrap();
        let (_, start_lsn, _) = db.write_fuzzy_mark();
        let mut m = mapping;
        let mut prop = Propagator::new(&db, start_lsn, 1.0);
        m.populate(4).unwrap();
        for step in 0..60 {
            random_split_txn(&db, &mut rng, 10_000 + step);
        }
        prop.drain_all(&db, &mut m).unwrap();
        if let Err(e) = split::verify_against_reference(&m) {
            panic!("seed {seed}: rename-in-place split diverged: {e}");
        }
    }
}
