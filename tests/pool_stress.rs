//! Pool under fire: a declarative migration running the persistent
//! apply pool while `workload::spawn_updaters` writers hammer the
//! source, paused and resumed mid-propagation by the orchestrator.
//!
//! What must hold:
//!
//! * **The pause fence is absolute.** A paused migration parks at a
//!   propagation-iteration boundary; every pool lane retires at the
//!   epoch fence before the park, so no lane may write a target row
//!   while the job is parked — even though the writers keep committing
//!   source updates the whole time (pausing a migration must never
//!   block clients).
//! * **The pool parks and unparks cleanly.** Repeated pause/resume
//!   cycles neither wedge the workers nor lose epochs.
//! * **Final targets ≡ uninterrupted reference.** After the writers
//!   stop, the resumed migration must converge to exactly the targets
//!   an uninterrupted serial run produces from the same final source
//!   state (values, counters, presence — LSNs differ across log
//!   histories and are compared in `parallel_equivalence.rs`, where
//!   both pipelines share one).

use morphdb::core::{ParallelConfig, ProgressPhase, SplitSpec, TransformOptions, Transformer};
use morphdb::orchestrator::{MigrationHandle, Orchestrator};
use morphdb::workload::{spawn_updaters, UpdateTarget};
use morphdb::{ColumnType, Database, Schema, Value};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn grouped_schema() -> Schema {
    Schema::builder()
        .column("k", ColumnType::Int)
        .nullable("payload", ColumnType::Str)
        .nullable("grp", ColumnType::Int)
        .nullable("dep", ColumnType::Str)
        .primary_key(&["k"])
        .build()
        .unwrap()
}

fn seed_grouped(db: &Database, table: &str, rows: i64, groups: i64) {
    let txn = db.begin();
    for i in 0..rows {
        let g = i % groups;
        db.insert(
            txn,
            table,
            vec![
                Value::Int(i),
                Value::str("p"),
                Value::Int(g),
                Value::str(format!("dep-{g}")),
            ],
        )
        .unwrap();
    }
    db.commit(txn).unwrap();
}

/// Rows of `name` without LSNs (cross-database comparable).
fn rows_sans_lsn(db: &Database, name: &str) -> Vec<(morphdb::Key, Vec<Value>, u32, String)> {
    let t = db.catalog().get(name).unwrap();
    let mut rows: Vec<_> = t
        .snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values, r.counter, format!("{:?}", r.presence)))
        .collect();
    rows.sort_by(|a, b| a.0.cmp(&b.0));
    rows
}

/// Pool configuration every test here runs: four lanes, every
/// lane-classified run forced through a real epoch.
fn pooled() -> ParallelConfig {
    ParallelConfig::new(2, 4).with_min_apply_segment(1).exact()
}

const SPLIT_TEXT: &str =
    "ALTER TABLE W SPLIT INTO W_base (k, payload, grp) AND W_groups (grp -> dep)";

/// Block until the migration is parked in the propagation phase: the
/// phase marker says `Propagating` and two target snapshots taken
/// across a writer-visible window are identical.
fn await_parked(db: &Database, handle: &MigrationHandle) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(
            Instant::now() < deadline,
            "migration never parked in Propagating; phase now {:?}",
            handle.progress().phase()
        );
        if handle.progress().phase() != ProgressPhase::Propagating {
            std::thread::sleep(Duration::from_millis(1));
            continue;
        }
        let before = rows_sans_lsn(db, "W_base");
        std::thread::sleep(Duration::from_millis(40));
        if rows_sans_lsn(db, "W_base") == before {
            return;
        }
    }
}

/// Pause fence + uninterrupted reference, in one scripted run:
/// pause lands mid-propagation with a writer-generated backlog, the
/// parked pool provably applies nothing while clients keep committing,
/// and after resume the targets equal a serial from-scratch run over
/// the identical frozen source.
#[test]
fn paused_pool_migration_matches_uninterrupted_reference() {
    let db = Arc::new(Database::new());
    db.create_table("W", grouped_schema()).unwrap();
    seed_grouped(&db, "W", 2000, 20);

    let writers = spawn_updaters(
        &db,
        vec![UpdateTarget::new("W", 2000, 1)],
        2,
        Duration::from_micros(100),
    );

    let orch = Orchestrator::new(Arc::clone(&db));
    let handle = orch
        .submit_text(
            SPLIT_TEXT,
            TransformOptions::default()
                .deadline(Duration::from_secs(120))
                .retain_sources()
                .parallel(pooled()),
        )
        .unwrap();
    // Requested before the first propagation iteration: the job
    // populates, enters `Propagating`, and parks at the first batch
    // boundary — guaranteed mid-propagation, with the updates the
    // writers committed during population still undrained behind it.
    handle.pause();
    await_parked(&db, &handle);

    // The fence: writers commit on, the parked pool applies nothing.
    let committed_before = writers.committed();
    let base_before = rows_sans_lsn(&db, "W_base");
    let groups_before = rows_sans_lsn(&db, "W_groups");
    std::thread::sleep(Duration::from_millis(150));
    assert_eq!(
        rows_sans_lsn(&db, "W_base"),
        base_before,
        "a pool lane applied a record past the pause fence"
    );
    assert_eq!(
        rows_sans_lsn(&db, "W_groups"),
        groups_before,
        "a pool lane applied a record past the pause fence (S side)"
    );
    assert!(
        writers.committed() > committed_before,
        "writers must keep committing while the migration is parked"
    );

    // Freeze the source while still parked, then let the pool drain
    // the full backlog.
    let committed = writers.stop();
    assert!(committed > 0, "the stress produced no source traffic");
    let source_rows = rows_sans_lsn(&db, "W");
    handle.resume();
    let progress = handle.progress();
    let reports = handle.join().expect("paused migration must converge");
    assert_eq!(reports.len(), 1);
    assert_eq!(progress.phase(), ProgressPhase::CutOver);
    assert_eq!(
        rows_sans_lsn(&db, "W"),
        source_rows,
        "retained source changed after the writers stopped"
    );

    // Uninterrupted reference: the same split, serial and unpaused,
    // over a fresh database seeded with the frozen source rows.
    let reference = Arc::new(Database::new());
    reference.create_table("W", grouped_schema()).unwrap();
    let txn = reference.begin();
    for (_, values, _, _) in &source_rows {
        reference.insert(txn, "W", values.clone()).unwrap();
    }
    reference.commit(txn).unwrap();
    Transformer::run_split(
        &reference,
        SplitSpec::new(
            "W",
            "W_base",
            "W_groups",
            &["k", "payload", "grp"],
            "grp",
            &["dep"],
        ),
        TransformOptions::default().retain_sources(),
    )
    .expect("reference split");

    assert_eq!(
        rows_sans_lsn(&db, "W_base"),
        rows_sans_lsn(&reference, "W_base"),
        "paused+pooled R side diverged from the uninterrupted reference"
    );
    assert_eq!(
        rows_sans_lsn(&db, "W_groups"),
        rows_sans_lsn(&reference, "W_groups"),
        "paused+pooled S side diverged from the uninterrupted reference"
    );
}

/// Unpark into live traffic: where the test above freezes the source
/// before resuming, this one resumes with the writers still hammering
/// the table — the woken pool must drain the parked backlog, converge
/// against the live log tail, sync, and cut over, all while updates
/// keep landing. Exact payloads are then unknowable (writers race the
/// cutover), so the oracle is structural: the writers never insert or
/// delete, so row counts, split counters and the grp → dep functional
/// dependency survive any interleaving.
#[test]
fn pool_unparks_into_live_traffic_and_converges() {
    let db = Arc::new(Database::new());
    db.create_table("W", grouped_schema()).unwrap();
    seed_grouped(&db, "W", 800, 16);

    let writers = spawn_updaters(
        &db,
        vec![UpdateTarget::new("W", 800, 1)],
        2,
        Duration::from_micros(25),
    );

    let orch = Orchestrator::new(Arc::clone(&db));
    let handle = orch
        .submit_text(
            SPLIT_TEXT,
            TransformOptions::default()
                .deadline(Duration::from_secs(120))
                .retain_sources()
                .parallel(pooled()),
        )
        .unwrap();
    handle.pause();
    await_parked(&db, &handle);

    // Fence under fire, as above — then let go without stopping the
    // writers. The parked window grew the backlog the woken pool now
    // has to win against.
    let before = rows_sans_lsn(&db, "W_base");
    let committed_before = writers.committed();
    std::thread::sleep(Duration::from_millis(100));
    assert_eq!(
        rows_sans_lsn(&db, "W_base"),
        before,
        "lane applied past the pause fence"
    );
    assert!(writers.committed() > committed_before);

    handle.resume();
    let progress = handle.progress();
    let reports = handle.join().expect("resumed migration must converge");
    let committed = writers.stop();
    assert!(committed > 0);
    assert_eq!(reports.len(), 1);
    assert_eq!(progress.phase(), ProgressPhase::CutOver);

    let source_rows = rows_sans_lsn(&db, "W");
    let base = rows_sans_lsn(&db, "W_base");
    assert_eq!(base.len(), source_rows.len());
    for ((bk, bv, _, _), (sk, sv, _, _)) in base.iter().zip(&source_rows) {
        assert_eq!(bk, sk);
        // Key and split-attribute columns are writer-invariant; only
        // the payload column raced the cutover.
        assert_eq!(bv[0], sv[0]);
        assert_eq!(bv[2], sv[2]);
    }
    let groups = rows_sans_lsn(&db, "W_groups");
    assert_eq!(groups.len(), 16);
    let counter_sum: u32 = groups.iter().map(|(_, _, c, _)| *c).sum();
    assert_eq!(
        counter_sum,
        source_rows.len() as u32,
        "split S counters must add up to the source row count"
    );
    for (_, values, _, _) in &groups {
        let Value::Int(g) = values[0] else {
            panic!("group key must be an Int");
        };
        assert_eq!(
            values[1],
            Value::str(format!("dep-{g}")),
            "functional dependency grp → dep broken in W_groups"
        );
    }
}
