//! Recovery idempotence, the property Theorem 1 leans on: replaying a
//! log is a pure function of the log. Two consequences are checked for
//! arbitrary generated histories:
//!
//! 1. **Recover–re-log–recover converges.** Recovering a torn log
//!    appends CLRs and `AbortEnd`s for loser transactions; recovering
//!    that *recovered* log must reproduce the identical table state
//!    with zero further undo work. (This is how a system survives a
//!    crash *during* recovery.)
//! 2. **Every record prefix is a consistent state.** A crash can cut
//!    the durable log after any record; recovery of each prefix must
//!    yield exactly the effects of the transactions that committed
//!    within that prefix — in-flight and aborted ones fully invisible.

use morphdb::engine::recover_into;
use morphdb::txn::LockManagerConfig;
use morphdb::wal::{LogManager, LogRecord};
use morphdb::{ColumnType, Database, Key, Lsn, Schema, Value};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;
use std::sync::Arc;

fn schema() -> Schema {
    Schema::builder()
        .column("id", ColumnType::Int)
        .nullable("v", ColumnType::Str)
        .primary_key(&["id"])
        .build()
        .unwrap()
}

/// Generate a history of small transactions — committed, deliberately
/// aborted (logging CLRs), and left in flight at the end — and return
/// the log plus the table id. Key movement is excluded so the shadow
/// model below can replay ops positionally.
fn generate_history(seed: u64) -> (Vec<LogRecord>, morphdb::TableId) {
    let db = Database::new();
    let table = db.create_table("t", schema()).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<i64> = Vec::new();
    let mut next_id = 0i64;
    let n_txns = rng.gen_range(3..10usize);
    for t in 0..n_txns {
        let txn = db.begin();
        for _ in 0..rng.gen_range(1..4usize) {
            let roll = rng.gen_range(0u32..100);
            if roll < 40 || live.is_empty() {
                let id = next_id;
                next_id += 1;
                db.insert(txn, "t", vec![Value::Int(id), Value::str(format!("i{id}"))])
                    .unwrap();
                live.push(id);
            } else if roll < 70 {
                let id = live[rng.gen_range(0..live.len())];
                db.update(
                    txn,
                    "t",
                    &Key::single(id),
                    &[(1, Value::str(format!("u{}", rng.gen_range(0..100u32))))],
                )
                .unwrap();
            } else {
                let id = live.swap_remove(rng.gen_range(0..live.len()));
                db.delete(txn, "t", &Key::single(id)).unwrap();
            }
        }
        if t + 1 == n_txns && rng.gen_bool(0.5) {
            // Leave the last transaction in flight: a loser even for
            // the full log.
            break;
        }
        if rng.gen_bool(0.2) {
            db.abort(txn).unwrap(); // logs CLRs + AbortEnd
                                    // The model below replays committed txns only, so rebuild
                                    // `live` from actual table state after a rollback.
            live = table
                .snapshot()
                .iter()
                .map(|(k, _)| match &k.0[0] {
                    Value::Int(i) => *i,
                    other => panic!("unexpected key {other:?}"),
                })
                .collect();
        } else {
            db.commit(txn).unwrap();
        }
    }
    let records = db
        .log()
        .read_range(Lsn(1), usize::MAX)
        .into_iter()
        .map(|(_, r)| (*r).clone())
        .collect();
    (records, table.id())
}

/// Shadow interpreter: the state a prefix *should* recover to — the
/// ops of transactions whose `Commit` lies inside the prefix, applied
/// in log order.
fn expected_state(records: &[LogRecord]) -> BTreeMap<Key, Vec<Value>> {
    let committed: std::collections::HashSet<_> = records
        .iter()
        .filter_map(|r| match r {
            LogRecord::Commit { txn } => Some(*txn),
            _ => None,
        })
        .collect();
    let mut state = BTreeMap::new();
    for rec in records {
        let LogRecord::Op { txn, op } = rec else {
            continue;
        };
        if !committed.contains(txn) {
            continue;
        }
        match op {
            morphdb::wal::LogOp::Insert { row, .. } => {
                state.insert(Key(vec![row[0].clone()]), row.clone());
            }
            morphdb::wal::LogOp::Delete { key, .. } => {
                state.remove(key);
            }
            morphdb::wal::LogOp::Update { key, new, .. } => {
                if let Some(row) = state.get_mut(key) {
                    for (i, v) in new {
                        row[*i] = v.clone();
                    }
                }
            }
        }
    }
    state
}

fn recover_fresh(
    records: &[LogRecord],
    id: morphdb::TableId,
) -> (Database, morphdb::engine::RecoveryReport) {
    let db = Database::with_log(
        Arc::new(LogManager::with_records(records.to_vec())),
        LockManagerConfig::default(),
    );
    db.catalog()
        .create_table_with_id(id, "t", schema())
        .unwrap();
    let report = recover_into(&db, records).unwrap();
    (db, report)
}

fn state_of(db: &Database) -> BTreeMap<Key, Vec<Value>> {
    db.catalog()
        .get("t")
        .unwrap()
        .snapshot()
        .into_iter()
        .map(|(k, r)| (k, r.values))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Recover, re-log, recover again: same state, no second undo.
    #[test]
    fn recover_relog_recover_is_idempotent(seed in any::<u64>()) {
        let (records, id) = generate_history(seed);
        let (db_once, _report) = recover_fresh(&records, id);

        // The recovered log: original records plus the CLRs/AbortEnds
        // recovery appended for losers.
        let relogged: Vec<LogRecord> = db_once
            .log()
            .read_range(Lsn(1), usize::MAX)
            .into_iter()
            .map(|(_, r)| (*r).clone())
            .collect();
        let (db_twice, report2) = recover_fresh(&relogged, id);

        prop_assert_eq!(state_of(&db_once), state_of(&db_twice));
        // Second recovery finds every transaction closed: nothing to undo.
        prop_assert!(report2.losers.is_empty(), "losers: {:?}", report2.losers);
        prop_assert_eq!(report2.clrs_written, 0);
    }

    /// Every record prefix recovers to exactly the committed effects
    /// within that prefix.
    #[test]
    fn every_record_prefix_recovers_consistently(seed in any::<u64>()) {
        let (records, id) = generate_history(seed);
        for cut in 0..=records.len() {
            let prefix = &records[..cut];
            let (db, _report) = recover_fresh(prefix, id);
            let got = state_of(&db);
            let want = expected_state(prefix);
            prop_assert!(got == want, "prefix of {cut} records diverged: got {got:?}, want {want:?}");
        }
    }

    /// MVCC GC never reclaims a version the oldest live snapshot can
    /// still see: for an arbitrary history with a snapshot pinned
    /// somewhere in the middle, every read through that snapshot is
    /// identical before and after a GC sweep. Once the snapshot is
    /// dropped, a second sweep reclaims the whole archive.
    #[test]
    fn gc_never_reclaims_versions_visible_to_a_live_snapshot(seed in any::<u64>()) {
        let db = Database::new();
        let table = db.create_table("t", schema()).unwrap();
        db.enable_mvcc();
        let mut rng = StdRng::seed_from_u64(seed);

        let txn = db.begin();
        for id in 0..6i64 {
            db.insert(txn, "t", vec![Value::Int(id), Value::str("seed")]).unwrap();
        }
        db.commit(txn).unwrap();

        let churn = |rng: &mut StdRng, rounds: usize| {
            for _ in 0..rounds {
                let txn = db.begin();
                for id in 0..6i64 {
                    if rng.gen_bool(0.7) {
                        db.update(txn, "t", &Key::single(id),
                            &[(1, Value::str(format!("v{}", rng.gen_range(0..100u32))))],
                        ).unwrap();
                    }
                }
                db.commit(txn).unwrap();
            }
        };

        let rounds = rng.gen_range(1..4usize);
        churn(&mut rng, rounds);
        let snap = db.begin_snapshot().unwrap();
        let before: Vec<_> = (0..6i64)
            .map(|id| db.snapshot_read(&snap, "t", &Key::single(id)).unwrap())
            .collect();
        // Overwrite everything the snapshot is looking at, then sweep.
        let rounds = rng.gen_range(2..5usize);
        churn(&mut rng, rounds);
        db.mvcc_gc().unwrap();
        let after: Vec<_> = (0..6i64)
            .map(|id| db.snapshot_read(&snap, "t", &Key::single(id)).unwrap())
            .collect();
        prop_assert!(before == after,
            "GC changed a live snapshot's view: before {before:?}, after {after:?}");

        drop(snap);
        db.mvcc_gc().unwrap();
        prop_assert_eq!(table.version_count(), 0);
    }
}
